//! The whole-workspace lint driver: file discovery, crate-dependency
//! parsing, the L1–L6 per-file passes, the L7–L10 reachability passes,
//! marker suppression, and stale-marker detection (M2).

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::graph::Workspace;
use crate::lints::{self, Violation};
use crate::scan::SourceFile;

/// Crates the call graph covers. Excluded on purpose: `simnet` (seeded RNG
/// is its whole job), `bench` (timing harness), `compat` (out-of-workspace
/// shims), `xtask` (this tool).
pub const GRAPH_CRATES: &[&str] = &[
    "analytics",
    "baselines",
    "core",
    "dns",
    "flow",
    "net",
    "orgdb",
    "resolver",
    "telemetry",
];

/// Hot-path crates: per-packet code where a panic or a SipHash map is a
/// correctness/performance bug (L1, L2).
const HOT_CRATES: &[&str] = &["net", "dns", "flow", "resolver", "telemetry"];
/// Crates whose hot paths carry metric updates and must use the `tm_*!`
/// macros (L5). The `telemetry` crate itself is exempt: it *defines* the
/// recorder functions the macros expand to.
const L5_EXEMPT_CRATES: &[&str] = &["telemetry"];
/// Extra files outside the hot crates whose metric updates L5 checks.
const L5_EXTRA_FILES: &[&str] = &["crates/core/src/sniffer.rs"];
/// Crates holding locks whose guard discipline L3 checks.
const LOCK_CRATES: &[&str] = &["resolver"];
/// Crates whose public API must cite the paper (L4).
const DOC_CRATES: &[&str] = &["resolver", "dns"];
/// Individual per-packet files in crates that are otherwise not hot
/// (the `core` crate also holds reporting/export code where a panic is
/// acceptable). These get the hot-path treatment (L1, L2) plus the guard
/// discipline check (L3) — the pipeline holds ring locks and sends across
/// channels, the classic place to deadlock a sniffer.
const HOT_FILES: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/ring.rs",
];

/// Where the `metrics!` catalog lives (L9).
const METRIC_CATALOG: &str = "crates/telemetry/src/metric.rs";
/// Where the `trace_events!` catalog lives (L10).
const TRACE_CATALOG: &str = "crates/telemetry/src/trace.rs";

/// Result of a full lint run.
pub struct LintOutcome {
    /// Active (post-suppression) findings, sorted by path then line.
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
}

/// Parse each graph crate's `Cargo.toml` for its in-workspace dependencies
/// (`dnhunter-*` / `dnhunter` lines), by crate dir name.
pub fn crate_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    for krate in GRAPH_CRATES {
        let manifest = root.join("crates").join(krate).join("Cargo.toml");
        let mut deps = BTreeSet::new();
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            for line in text.lines() {
                let line = line.trim();
                let Some(name) = line
                    .split(['=', '.', ' '])
                    .next()
                    .map(str::trim)
                    .filter(|n| n.starts_with("dnhunter"))
                else {
                    continue;
                };
                let underscored = name.replace('-', "_");
                if let Some(dir) = crate::model::crate_dir_of_use(&underscored) {
                    if dir != *krate {
                        deps.insert(dir.to_string());
                    }
                }
            }
        }
        out.insert(krate.to_string(), deps);
    }
    out
}

/// Read and parse every `.rs` file of the graph crates, with paths
/// relative to `root`.
fn load_sources(root: &Path) -> Result<Vec<(String, SourceFile)>, String> {
    let mut sources = Vec::new();
    for krate in GRAPH_CRATES {
        let src = root.join("crates").join(krate).join("src");
        for path in crate::rust_files(&src) {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            sources.push((krate.to_string(), SourceFile::parse(rel, &text)));
        }
    }
    Ok(sources)
}

/// Run every lint over the workspace at `root`.
pub fn run(root: &Path) -> Result<LintOutcome, String> {
    let deps = crate_deps(root);
    let sources = load_sources(root)?;
    let ws = Workspace::build(sources, &deps);
    let files_scanned = ws.files.len();

    // Raw findings, grouped per file for suppression.
    let mut per_file: Vec<Vec<Violation>> = (0..ws.files.len()).map(|_| Vec::new()).collect();
    for (fi, file) in ws.files.iter().enumerate() {
        let krate = file.krate.as_str();
        let sf = &file.source;
        let rel = sf.path.to_string_lossy().replace('\\', "/");
        let hot = HOT_CRATES.contains(&krate) || HOT_FILES.iter().any(|h| rel == *h);
        if hot {
            per_file[fi].extend(lints::l1_no_panics(sf));
            per_file[fi].extend(lints::l2_no_siphash_maps(sf));
            if !L5_EXEMPT_CRATES.contains(&krate) {
                per_file[fi].extend(lints::l5_telemetry_macros(sf));
            }
        }
        if L5_EXTRA_FILES.iter().any(|h| rel == *h) {
            per_file[fi].extend(lints::l5_telemetry_macros(sf));
        }
        if LOCK_CRATES.contains(&krate) || HOT_FILES.iter().any(|h| rel == *h) {
            per_file[fi].extend(lints::l3_no_guard_across_shards(sf));
        }
        if DOC_CRATES.contains(&krate) {
            per_file[fi].extend(lints::l4_docs_cite_paper(sf));
        }
        // L11 is opt-in via the `retract_state(...)` marker, so it runs on
        // every file; unmarked files produce no findings.
        per_file[fi].extend(lints::l11_retraction_coverage(sf));
    }
    for v in crate::reach::l7_determinism(&ws)
        .into_iter()
        .chain(crate::reach::l8_bounded_alloc(&ws))
        .chain(crate::reach::l9_metric_catalog(
            &ws,
            &PathBuf::from(METRIC_CATALOG),
        ))
        .chain(crate::reach::l10_trace_catalog(
            &ws,
            &PathBuf::from(TRACE_CATALOG),
        ))
    {
        match ws.files.iter().position(|f| f.source.path == v.path) {
            Some(fi) => per_file[fi].push(v),
            None => per_file[0].push(v), // catalog-missing sentinel
        }
    }

    // Suppression + marker hygiene (M1 first, then M2 on the leftovers).
    let mut violations: Vec<Violation> = Vec::new();
    for (fi, raw) in per_file.into_iter().enumerate() {
        let sf = &ws.files[fi].source;
        let (active, used) = lints::suppress(sf, raw);
        violations.extend(active);
        violations.extend(lints::check_markers(sf));
        violations.extend(lints::m2_stale_markers(sf, &used));
    }
    violations.extend(lints::l6_proptest_corpora(root));

    violations.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(LintOutcome {
        violations,
        files_scanned,
    })
}
