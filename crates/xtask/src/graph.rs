//! Approximate cross-file call graph + reachability over the item model.
//!
//! Name-based edge resolution (no types, no trait solving): a call token
//! links to every workspace function it *could* denote, filtered by crate
//! dependency edges. This **over-approximates** (a `.merge(` call links to
//! every `merge` method in scope, dynamic dispatch collapses to all
//! implementors) and **under-approximates** (calls through std adapters
//! like `map(f)` where `f` is passed by name, macro-generated code, and
//! callee names that only appear behind `#[cfg]`s we don't evaluate).
//! Over-approximation is the safe direction for L7/L8 — extra reachability
//! can only add findings, which an audited marker then documents; the
//! under-approximations are listed in DESIGN.md §8 so nobody mistakes the
//! graph for ground truth.

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{Call, CallKind, FnItem, ModelFile, RootClass};
use crate::scan::SourceFile;

/// Bit flags for per-line reachability classes.
pub const REACH_DETERMINISM: u8 = 1;
pub const REACH_INGEST: u8 = 2;

/// The whole analyzed workspace: files, functions, edges, reachability.
pub struct Workspace {
    pub files: Vec<ModelFile>,
    pub fns: Vec<FnItem>,
    /// Adjacency: caller fn index → callee fn indices (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
    /// Per-fn reachability flags (`REACH_*` bits).
    pub reach: Vec<u8>,
    /// Per-file, per-line reachability flags projected from fn spans.
    pub line_reach: Vec<Vec<u8>>,
    /// Per-file, per-line owning fn (innermost span), if any.
    pub line_fn: Vec<Vec<Option<usize>>>,
}

impl Workspace {
    /// Build the model from parsed files. `crate_deps` maps a crate dir
    /// name to the workspace crates it may call into (its direct
    /// dependencies; the crate itself is implicit).
    pub fn build(
        sources: Vec<(String, SourceFile)>,
        crate_deps: &BTreeMap<String, BTreeSet<String>>,
    ) -> Workspace {
        let mut fns: Vec<FnItem> = Vec::new();
        let mut files: Vec<ModelFile> = Vec::new();
        for (idx, (krate, sf)) in sources.into_iter().enumerate() {
            files.push(crate::model::lift(sf, &krate, idx, &mut fns));
        }

        // Name indexes.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if f.test {
                continue; // test helpers never carry invariant obligations
            }
            match &f.impl_type {
                Some(ty) => {
                    methods.entry(&f.name).or_default().push(i);
                    by_type.entry((ty.as_str(), &f.name)).or_default().push(i);
                }
                None => free.entry(&f.name).or_default().push(i),
            }
        }
        // File-stem index for `module::func` qualified calls.
        let mut by_stem: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if f.test {
                continue;
            }
            let stem = files[f.file]
                .source
                .path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("");
            by_stem.entry((stem, &f.name)).or_default().push(i);
        }

        let in_scope = |caller: &FnItem, callee: &FnItem| -> bool {
            caller.krate == callee.krate
                || crate_deps
                    .get(&caller.krate)
                    .is_some_and(|deps| deps.contains(&callee.krate))
        };

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, f) in fns.iter().enumerate() {
            let mut out: Vec<usize> = Vec::new();
            for Call { name, kind } in &f.calls {
                let candidates: Vec<usize> = match kind {
                    CallKind::Free => free.get(name.as_str()).cloned().unwrap_or_default(),
                    CallKind::Method => methods.get(name.as_str()).cloned().unwrap_or_default(),
                    CallKind::Qualified(q) => {
                        let mut c = by_type
                            .get(&(q.as_str(), name.as_str()))
                            .cloned()
                            .unwrap_or_default();
                        if c.is_empty() {
                            // Module-qualified (`codec::decode`) or crate-
                            // qualified (`dnhunter_dns::...::decode`).
                            c = by_stem
                                .get(&(q.as_str(), name.as_str()))
                                .cloned()
                                .unwrap_or_default();
                        }
                        if c.is_empty() {
                            if let Some(dir) = crate::model::crate_dir_of_use(q) {
                                c = free
                                    .get(name.as_str())
                                    .map(|v| {
                                        v.iter().copied().filter(|&t| fns[t].krate == dir).collect()
                                    })
                                    .unwrap_or_default();
                            }
                        }
                        c
                    }
                };
                for t in candidates {
                    if t != i && in_scope(f, &fns[t]) {
                        out.push(t);
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            edges[i] = out;
        }

        let mut ws = Workspace {
            files,
            fns,
            edges,
            reach: Vec::new(),
            line_reach: Vec::new(),
            line_fn: Vec::new(),
        };
        ws.compute_reachability();
        ws
    }

    /// BFS per root class over the call graph, then project fn flags onto
    /// file lines.
    fn compute_reachability(&mut self) {
        let mut reach = vec![0u8; self.fns.len()];
        for (class, bit) in [
            (RootClass::Determinism, REACH_DETERMINISM),
            (RootClass::Ingest, REACH_INGEST),
        ] {
            let mut queue: Vec<usize> = self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.test && f.roots.contains(&class))
                .map(|(i, _)| i)
                .collect();
            for &r in &queue {
                reach[r] |= bit;
            }
            while let Some(cur) = queue.pop() {
                for &next in &self.edges[cur] {
                    if reach[next] & bit == 0 {
                        reach[next] |= bit;
                        queue.push(next);
                    }
                }
            }
        }
        self.reach = reach;

        self.line_reach = Vec::with_capacity(self.files.len());
        self.line_fn = Vec::with_capacity(self.files.len());
        for (fi, file) in self.files.iter().enumerate() {
            let n = file.source.lines.len();
            let mut lr = vec![0u8; n];
            let mut lf: Vec<Option<usize>> = vec![None; n];
            for &f in &file.fns {
                let item = &self.fns[f];
                debug_assert_eq!(item.file, fi);
                for line in item.start..=item.end.min(n.saturating_sub(1)) {
                    lr[line] |= self.reach[f];
                    // Innermost span wins: later items start later.
                    match lf[line] {
                        Some(prev) if self.fns[prev].start >= item.start => {}
                        _ => lf[line] = Some(f),
                    }
                }
            }
            self.line_reach.push(lr);
            self.line_fn.push(lf);
        }
    }

    /// Roots of a class, for diagnostics.
    pub fn roots(&self, class: RootClass) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.roots.contains(&class))
            .map(|(i, _)| i)
            .collect()
    }

    /// A human-readable `crate::Type::name` label for diagnostics.
    pub fn fn_label(&self, idx: usize) -> String {
        let f = &self.fns[idx];
        match &f.impl_type {
            Some(ty) => format!("{}::{}::{}", f.krate, ty, f.name),
            None => format!("{}::{}", f.krate, f.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws(files: Vec<(&str, &str, &str)>) -> Workspace {
        let sources = files
            .into_iter()
            .map(|(krate, name, src)| {
                (
                    krate.to_string(),
                    SourceFile::parse(PathBuf::from(name), src),
                )
            })
            .collect();
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        deps.insert("core".into(), ["dns".to_string()].into_iter().collect());
        Workspace::build(sources, &deps)
    }

    #[test]
    fn cross_file_reachability_through_method_calls() {
        let w = ws(vec![
            (
                "core",
                "render.rs",
                "// lint_root(determinism): output path\nfn render_all(s: &S) {\n    s.collect_rows();\n}\n",
            ),
            (
                "core",
                "state.rs",
                "impl S {\n    fn collect_rows(&self) {\n        helper();\n    }\n}\nfn helper() {}\nfn unrelated() {}\n",
            ),
        ]);
        let names: Vec<(String, u8)> = w
            .fns
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), w.reach[i]))
            .collect();
        let get = |n: &str| names.iter().find(|(x, _)| x == n).unwrap().1;
        assert_eq!(get("render_all") & REACH_DETERMINISM, REACH_DETERMINISM);
        assert_eq!(get("collect_rows") & REACH_DETERMINISM, REACH_DETERMINISM);
        assert_eq!(get("helper") & REACH_DETERMINISM, REACH_DETERMINISM);
        assert_eq!(get("unrelated"), 0);
    }

    #[test]
    fn crate_dependency_filter_blocks_reverse_edges() {
        // dns does not depend on core, so a dns fn calling `assemble(` must
        // not link to core's `assemble`.
        let w = ws(vec![
            (
                "dns",
                "codec.rs",
                "fn decode(buf: &[u8]) {\n    assemble(buf);\n}\n",
            ),
            ("core", "report.rs", "fn assemble(x: &[u8]) {}\n"),
        ]);
        let decode = w.fns.iter().position(|f| f.name == "decode").unwrap();
        assert!(w.edges[decode].is_empty());
        // core → dns is declared, so the reverse direction links.
        let w2 = ws(vec![
            (
                "core",
                "driver.rs",
                "fn drive(buf: &[u8]) {\n    decode(buf);\n}\n",
            ),
            ("dns", "codec.rs", "fn decode(buf: &[u8]) {}\n"),
        ]);
        let drive = w2.fns.iter().position(|f| f.name == "drive").unwrap();
        assert_eq!(w2.edges[drive].len(), 1);
    }

    #[test]
    fn name_rule_roots_seed_reachability() {
        let w = ws(vec![(
            "core",
            "stream.rs",
            "impl A {\n    fn merge(&mut self, o: A) {\n        self.apply_part(o);\n    }\n    fn apply_part(&mut self, o: A) {}\n}\n",
        )]);
        let apply = w.fns.iter().position(|f| f.name == "apply_part").unwrap();
        assert_eq!(w.reach[apply] & REACH_DETERMINISM, REACH_DETERMINISM);
    }

    #[test]
    fn test_fns_are_excluded_from_graph_targets() {
        let w = ws(vec![(
            "core",
            "a.rs",
            "// lint_root(determinism): x\nfn render_x() {\n    helper();\n}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        )]);
        let render = w.fns.iter().position(|f| f.name == "render_x").unwrap();
        assert!(w.edges[render].is_empty());
    }

    #[test]
    fn line_reachability_projects_fn_spans() {
        let w = ws(vec![(
            "core",
            "a.rs",
            "fn fold(x: u8) {\n    deep(x);\n}\nfn deep(x: u8) {\n    let y = x;\n}\nfn cold() {}\n",
        )]);
        let lr = &w.line_reach[0];
        assert_eq!(lr[1] & REACH_DETERMINISM, REACH_DETERMINISM); // fold body
        assert_eq!(lr[4] & REACH_DETERMINISM, REACH_DETERMINISM); // deep body
        assert_eq!(lr[6], 0); // cold
    }
}
