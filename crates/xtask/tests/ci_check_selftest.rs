//! Self-tests for `cargo xtask ci-check` against the fixture trees under
//! `tests/fixtures/ci_check/`: a clean workspace, a workspace whose CI
//! lost a test step, and workflows invoking targets that no longer exist.
//! The last test runs the check against this repository itself — the same
//! gate CI's lint job applies.

use std::path::PathBuf;

use xtask::ci_check;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ci_check")
        .join(name)
}

#[test]
fn clean_fixture_produces_no_findings() {
    let findings = ci_check::check(&fixture("good")).expect("check runs");
    assert!(
        findings.is_empty(),
        "clean fixture flagged:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn a_deleted_ci_step_is_flagged_as_uncovered() {
    let findings = ci_check::check(&fixture("missing_step")).expect("check runs");
    assert_eq!(
        findings.len(),
        1,
        "exactly the uncovered test: {findings:?}"
    );
    let f = &findings[0];
    assert!(
        f.message.contains("`alpha`") && f.message.contains("not exercised"),
        "unexpected message: {f}"
    );
    assert_eq!(f.file, PathBuf::from("tests").join("alpha.rs"));
}

#[test]
fn stale_workflow_targets_are_flagged() {
    let findings = ci_check::check(&fixture("stale_target")).expect("check runs");
    let messages: Vec<String> = findings.iter().map(ToString::to_string).collect();
    let has = |needle: &str| messages.iter().any(|m| m.contains(needle));
    assert!(has("--test gamma"), "missing gamma finding: {messages:?}");
    assert!(has("--bin vanished"), "missing bin finding: {messages:?}");
    assert!(has("package `ghost`"), "missing pkg finding: {messages:?}");
    // `--test anything` under the ghost package is also stale.
    assert_eq!(findings.len(), 4, "{messages:?}");
    // Findings carry workflow positions so CI output is clickable.
    assert!(findings
        .iter()
        .all(|f| f.line > 0 && f.file.ends_with(".github/workflows/ci.yml")));
}

#[test]
fn the_workspace_itself_passes() {
    let findings = ci_check::check(&xtask::workspace_root()).expect("check runs");
    assert!(
        findings.is_empty(),
        "ci-check findings in this repository:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
