//! Fixture-based self-tests for every lint L1–L11.
//!
//! Each lint has a corpus under `tests/fixtures/l<N>/` with at least two
//! `bad_*` cases (must each produce ≥1 finding, all carrying that lint's
//! code) and two `clean_*` cases (must produce none). The harness runs the
//! same suppression (`allow_lint` markers) and stale-marker (M2) passes as
//! the real driver, so a clean fixture may also demonstrate an audited
//! marker — and a *stale* marker in a fixture fails the clean check.
//!
//! Case shapes:
//! * L1–L5: one `.rs` file per case, linted in isolation.
//! * L6: a miniature workspace tree per case; `gitignore` files are named
//!   without the leading dot in the fixture (so the real repo lint never
//!   sees them) and renamed during the copy into a temp dir.
//! * L7–L10: a directory of `<crate>__<file>.rs` sources built into a
//!   [`Workspace`]; every fixture crate may call into every other, since
//!   the dependency-edge filter has its own unit tests in `graph.rs`.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use xtask::graph::Workspace;
use xtask::lints::{self, Violation};
use xtask::reach;
use xtask::scan::SourceFile;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Walk one lint's fixture dir, run `run` on each case, and enforce the
/// bad/clean contract plus the ≥2-of-each floor.
fn check_fixtures(lint: &'static str, run: impl Fn(&Path) -> Vec<Violation>) {
    let dir = fixtures_dir().join(lint.to_ascii_lowercase());
    let mut cases: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing fixture dir {}: {e}", dir.display()))
        .flatten()
        .map(|e| e.path())
        .collect();
    cases.sort();
    let (mut bad, mut clean) = (0usize, 0usize);
    for case in cases {
        let name = case
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let findings = run(&case);
        if name.starts_with("bad") {
            bad += 1;
            assert!(
                !findings.is_empty(),
                "{lint} fixture `{name}` should produce at least one finding"
            );
            for f in &findings {
                assert_eq!(
                    f.lint, lint,
                    "{lint} fixture `{name}` produced a foreign finding: {f:?}"
                );
            }
        } else if name.starts_with("clean") {
            clean += 1;
            assert!(
                findings.is_empty(),
                "{lint} fixture `{name}` should be clean, got {findings:#?}"
            );
        } else {
            panic!("fixture `{name}` must be named bad_* or clean_*");
        }
    }
    assert!(bad >= 2, "{lint}: need >=2 bad fixtures, found {bad}");
    assert!(clean >= 2, "{lint}: need >=2 clean fixtures, found {clean}");
}

/// Lint one fixture file with a per-file lint, then apply the marker
/// suppression and stale-marker passes exactly as the driver does.
fn per_file(run: fn(&SourceFile) -> Vec<Violation>) -> impl Fn(&Path) -> Vec<Violation> {
    move |path| {
        let text = fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let rel = PathBuf::from(path.file_name().expect("fixture file name"));
        let sf = SourceFile::parse(rel, &text);
        let raw = run(&sf);
        let (mut out, used) = lints::suppress(&sf, raw);
        out.extend(lints::m2_stale_markers(&sf, &used));
        out
    }
}

/// Build a [`Workspace`] from a directory of `<crate>__<file>.rs` sources.
fn build_case(dir: &Path) -> Workspace {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    let mut sources = Vec::new();
    let mut crates: BTreeSet<String> = BTreeSet::new();
    for p in entries {
        let stem = p
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let Some((krate, name)) = stem.split_once("__") else {
            panic!(
                "fixture file {} must be named <crate>__<file>.rs",
                p.display()
            );
        };
        crates.insert(krate.to_string());
        let text =
            fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()));
        sources.push((
            krate.to_string(),
            SourceFile::parse(
                PathBuf::from(format!("crates/{krate}/src/{name}.rs")),
                &text,
            ),
        ));
    }
    let deps: BTreeMap<String, BTreeSet<String>> = crates
        .iter()
        .map(|k| {
            (
                k.clone(),
                crates.iter().filter(|o| *o != k).cloned().collect(),
            )
        })
        .collect();
    Workspace::build(sources, &deps)
}

/// Run one reachability lint over a directory case, with the same
/// per-file suppression + M2 pass as the driver.
fn reach_case(lint: &'static str) -> impl Fn(&Path) -> Vec<Violation> {
    move |dir| {
        let ws = build_case(dir);
        let raw = match lint {
            "L7" => reach::l7_determinism(&ws),
            "L8" => reach::l8_bounded_alloc(&ws),
            "L9" => reach::l9_metric_catalog(&ws, &PathBuf::from("crates/telemetry/src/metric.rs")),
            "L10" => reach::l10_trace_catalog(&ws, &PathBuf::from("crates/telemetry/src/trace.rs")),
            other => panic!("not a reachability lint: {other}"),
        };
        let mut buckets: BTreeMap<PathBuf, Vec<Violation>> = BTreeMap::new();
        for v in raw {
            buckets.entry(v.path.clone()).or_default().push(v);
        }
        let mut out = Vec::new();
        for f in &ws.files {
            let raw_f = buckets.remove(&f.source.path).unwrap_or_default();
            let (active, used) = lints::suppress(&f.source, raw_f);
            out.extend(active);
            out.extend(lints::m2_stale_markers(&f.source, &used));
        }
        // Findings addressed to paths outside the workspace (e.g. a
        // missing-catalog sentinel) pass through unsuppressed.
        out.extend(buckets.into_values().flatten());
        out
    }
}

/// Copy a fixture tree into `dst`, renaming `gitignore` → `.gitignore` so
/// the L6 gitignore scan sees what a real workspace would contain.
fn copy_tree(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap_or_else(|e| panic!("mkdir {}: {e}", dst.display()));
    for entry in fs::read_dir(src).unwrap().flatten() {
        let from = entry.path();
        let name = entry.file_name();
        let name = if name == "gitignore" {
            ".gitignore".into()
        } else {
            name
        };
        let to = dst.join(&name);
        if from.is_dir() {
            copy_tree(&from, &to);
        } else {
            fs::copy(&from, &to)
                .unwrap_or_else(|e| panic!("copy {} -> {}: {e}", from.display(), to.display()));
        }
    }
}

/// L6 inspects the filesystem, so each case is staged in a temp dir.
fn l6_case(case: &Path) -> Vec<Violation> {
    let name = case
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let tmp =
        std::env::temp_dir().join(format!("xtask-lint-selftest-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&tmp);
    copy_tree(case, &tmp);
    let out = lints::l6_proptest_corpora(&tmp);
    let _ = fs::remove_dir_all(&tmp);
    out
}

#[test]
fn l1_fixture_corpus() {
    check_fixtures("L1", per_file(lints::l1_no_panics));
}

#[test]
fn l2_fixture_corpus() {
    check_fixtures("L2", per_file(lints::l2_no_siphash_maps));
}

#[test]
fn l3_fixture_corpus() {
    check_fixtures("L3", per_file(lints::l3_no_guard_across_shards));
}

#[test]
fn l4_fixture_corpus() {
    check_fixtures("L4", per_file(lints::l4_docs_cite_paper));
}

#[test]
fn l5_fixture_corpus() {
    check_fixtures("L5", per_file(lints::l5_telemetry_macros));
}

#[test]
fn l6_fixture_corpus() {
    check_fixtures("L6", l6_case);
}

#[test]
fn l7_fixture_corpus() {
    check_fixtures("L7", reach_case("L7"));
}

#[test]
fn l8_fixture_corpus() {
    check_fixtures("L8", reach_case("L8"));
}

#[test]
fn l9_fixture_corpus() {
    check_fixtures("L9", reach_case("L9"));
}

#[test]
fn l10_fixture_corpus() {
    check_fixtures("L10", reach_case("L10"));
}

#[test]
fn l11_fixture_corpus() {
    check_fixtures("L11", per_file(lints::l11_retraction_coverage));
}

/// Smoke: the full driver parses the real workspace without erroring.
/// (Whether the workspace is *clean* is CI's lint step, not a unit test —
/// an in-progress tree with a marker-pending finding should not also fail
/// the test suite.)
#[test]
fn runner_handles_the_real_workspace() {
    let outcome = xtask::runner::run(&xtask::workspace_root()).expect("lint driver runs");
    assert!(
        outcome.files_scanned > 50,
        "expected the real workspace, scanned only {} files",
        outcome.files_scanned
    );
}
