//! Property tests (fixture) with no committed corpus.
