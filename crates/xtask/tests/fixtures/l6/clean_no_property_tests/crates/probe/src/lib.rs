//! No property tests here, so no corpus obligation.
