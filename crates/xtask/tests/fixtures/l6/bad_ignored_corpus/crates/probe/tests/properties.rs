//! Property tests (fixture) whose corpus a gitignore hides.
