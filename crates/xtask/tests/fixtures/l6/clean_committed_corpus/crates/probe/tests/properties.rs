//! Property tests (fixture) with their corpus committed.
