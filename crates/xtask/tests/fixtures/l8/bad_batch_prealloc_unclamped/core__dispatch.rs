//! Fixture: a dispatch batch pre-sized straight from frame-derived counts.

// lint_root(ingest): batches parsed segments for the worker rings
pub fn seal_batch(seg_count: usize, bytes_len: usize) -> (Vec<u64>, Vec<u8>) {
    let items: Vec<u64> = Vec::with_capacity(seg_count);
    let mut bytes: Vec<u8> = Vec::new();
    bytes.reserve(bytes_len);
    (items, bytes)
}
