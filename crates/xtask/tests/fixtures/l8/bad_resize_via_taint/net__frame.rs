//! Fixture: payload copy sized by a header field, through a taint chain.

// lint_root(ingest): parses raw frames
pub fn copy_payload(hdr_len: u16, body: &[u8]) -> Vec<u8> {
    let want = hdr_len as usize + 4;
    let mut out: Vec<u8> = Vec::new();
    out.resize(want, 0);
    out
}
