//! Fixture: the same preallocation, clamped by a named cap constant.

const MAX_SECTION_PREALLOC: usize = 256;

// lint_root(ingest): decodes attacker-controlled counts
pub fn decode_sections(buf: &[u8], qdcount: u16) -> Vec<Question> {
    let out = Vec::with_capacity((qdcount as usize).min(MAX_SECTION_PREALLOC));
    out
}
