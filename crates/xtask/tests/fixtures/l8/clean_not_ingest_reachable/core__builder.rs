//! Fixture: offline table builder, never reached from ingest.

pub fn build_table(rows: u16) -> Vec<u64> {
    let n = rows as usize;
    let out = Vec::with_capacity(n);
    out
}
