//! Fixture: a recycled arena regrown to whatever size the wire claims.

// lint_root(ingest): refills a recycled arena with wire payload bytes
pub fn refill_arena(payload: &[u8]) -> Vec<u8> {
    let need = payload.len();
    let mut arena: Vec<u8> = Vec::new();
    arena.resize(need, 0);
    arena
}
