//! Fixture: batch preallocation pinned by the ring's named capacities.

const BATCH_ITEMS: usize = 128;
const BATCH_BYTES: usize = 128 * 1024;

// lint_root(ingest): batches parsed segments for the worker rings
pub fn seal_batch(seg_count: usize, bytes_len: usize) -> (Vec<u64>, Vec<u8>) {
    let items: Vec<u64> = Vec::with_capacity(seg_count.min(BATCH_ITEMS));
    let mut bytes: Vec<u8> = Vec::new();
    bytes.reserve(bytes_len.min(BATCH_BYTES));
    (items, bytes)
}
