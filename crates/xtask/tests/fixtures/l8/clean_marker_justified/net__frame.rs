//! Fixture: an audited `allow_lint` marker justifies the allocation.

// lint_root(ingest): parses raw frames
pub fn copy_payload(hdr_len: u16) -> Vec<u8> {
    // allow_lint(L8): hdr_len is checked against MAX_FRAME by parse_header
    let out = Vec::with_capacity(hdr_len as usize);
    out
}
