//! Fixture: arena head-prefix copy clamped to the DPI snapshot cap.

const DPI_SNAP: usize = 1024;

// lint_root(ingest): copies a payload prefix into the shared arena
pub fn push_head(payload: &[u8]) -> Vec<u8> {
    let take = payload.len();
    let mut head: Vec<u8> = Vec::new();
    head.resize(take.min(DPI_SNAP), 0);
    head
}
