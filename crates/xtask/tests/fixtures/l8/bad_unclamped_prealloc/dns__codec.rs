//! Fixture: section preallocation sized straight from a wire count.

// lint_root(ingest): decodes attacker-controlled counts
pub fn decode_sections(buf: &[u8], qdcount: u16) -> Vec<Question> {
    let n = qdcount as usize;
    let out = Vec::with_capacity(n);
    out
}
