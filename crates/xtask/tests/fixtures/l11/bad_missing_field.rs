//! A marked struct whose inverse forgets one field: `labels` accumulates
//! on merge but is never subtracted, so retraction silently leaks it.

// retract_state(unmerge)
struct State {
    flows: u64,
    labels: u64,
}

impl State {
    fn unmerge(&mut self, other: &State) -> Result<(), ()> {
        self.flows = self.flows.checked_sub(other.flows).ok_or(())?;
        Ok(())
    }
}
