//! A waiver without a reason: `not_retracted:` must say *why* the field is
//! safe to leave out of the inverse.

// retract_state(unmerge)
struct State {
    origin: Option<u64>, // not_retracted:
    flows: u64,
}

impl State {
    fn unmerge(&mut self, other: &State) -> Result<(), ()> {
        self.flows = self.flows.checked_sub(other.flows).ok_or(())?;
        Ok(())
    }
}
