//! A marker naming a function the file never defines: the declared inverse
//! does not exist.

// retract_state(retract_all)
struct State {
    flows: u64,
}

impl State {
    fn unmerge(&mut self, other: &State) -> Result<(), ()> {
        self.flows = self.flows.checked_sub(other.flows).ok_or(())?;
        Ok(())
    }
}
