//! Run anchors may skip retraction when the waiver explains why.

// retract_state(unmerge)
struct State {
    trace_start: Option<u64>, // not_retracted: monotone run anchor, views re-anchor it
    flows: u64,
}

impl State {
    fn unmerge(&mut self, other: &State) -> Result<(), ()> {
        self.flows = self.flows.checked_sub(other.flows).ok_or(())?;
        Ok(())
    }
}

/// An unmarked struct is not L11's business, whatever its fields do.
struct Unmarked {
    uncovered: u64,
}
