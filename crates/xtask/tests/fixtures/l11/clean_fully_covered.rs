//! Every field of the marked struct is subtracted by the inverse.

use std::collections::BTreeMap;

// retract_state(unmerge)
#[derive(Debug, Clone)]
pub struct State {
    pub flows: u64,
    labels: u64,
    servers: BTreeMap<u32, u64>,
}

impl State {
    fn unmerge(&mut self, other: &State) -> Result<(), ()> {
        self.flows = self.flows.checked_sub(other.flows).ok_or(())?;
        self.labels = self.labels.checked_sub(other.labels).ok_or(())?;
        for (k, v) in &other.servers {
            let slot = self.servers.get_mut(k).ok_or(())?;
            *slot = slot.checked_sub(*v).ok_or(())?;
            if *slot == 0 {
                self.servers.remove(k);
            }
        }
        Ok(())
    }
}
