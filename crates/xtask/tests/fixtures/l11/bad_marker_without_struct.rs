//! A dangling marker: `retract_state` must annotate a struct declaration,
//! not a function or a free-floating comment.

// retract_state(unmerge)
fn unmerge(a: u64, b: u64) -> Option<u64> {
    a.checked_sub(b)
}
