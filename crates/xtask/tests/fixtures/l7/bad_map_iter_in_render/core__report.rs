//! Fixture: a render path iterating a default-hasher map.

pub struct Report {
    counts: HashMap<u64, u64>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.counts.iter() {
            out.push_str(&format!("{k} {v}\n"));
        }
        out
    }
}
