//! Fixture: map iteration outside the deterministic surface is fine.

pub struct Cache {
    slots: HashMap<u32, u32>,
}

impl Cache {
    pub fn debug_dump(&self) {
        for (k, v) in self.slots.iter() {
            eprintln!("{k} {v}");
        }
    }
}
