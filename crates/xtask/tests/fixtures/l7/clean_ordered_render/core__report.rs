//! Fixture: ordered iteration renders deterministically.

pub struct Report {
    counts: BTreeMap<u64, u64>,
}

impl Report {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.counts.iter() {
            out.push_str(&format!("{k} {v}\n"));
        }
        out
    }
}
