//! Fixture: a wall-clock read inside the deterministic merge.

impl Shard {
    pub fn merge_from(&mut self, other: &Shard) {
        let stamp = SystemTime::now();
        self.total += other.total;
    }
}
