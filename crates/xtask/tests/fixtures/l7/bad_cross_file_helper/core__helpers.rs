//! Fixture: row emission helper reached from `render_csv`.

pub fn emit_rows(db: &Db) -> String {
    let mut index = HashMap::new();
    let mut out = String::new();
    for (k, v) in &index {
        out.push_str(&format!("{k} {v}\n"));
    }
    out
}
