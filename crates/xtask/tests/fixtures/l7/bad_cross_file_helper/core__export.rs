//! Fixture: the exporter root; the violation lives in the helper file.

pub fn render_csv(db: &Db) -> String {
    emit_rows(db)
}
