//! Implements the label propagation of paper §4.2.

/// Does something useful.
pub fn propagate() {}
