//! Implements the DNS response parsing of RFC 1035 §4.1.

/// Decodes the resource-record count fields (RFC 1035 §4.1.1).
pub fn record_counts() {}

/// Private helpers need no citation.
fn helper() {}
