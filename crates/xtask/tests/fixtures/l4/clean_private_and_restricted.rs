//! Scratch internals for the Fig. 7 aggregation.

fn accumulate() {}

pub(crate) fn drain() {}
