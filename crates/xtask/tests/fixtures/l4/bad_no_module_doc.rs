/// Cited helper for §4.2 flow tagging.
pub fn tag_flow() {}
