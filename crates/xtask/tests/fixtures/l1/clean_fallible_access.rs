//! Fixture: fallible access through `first`/`get`.

pub fn parse_len(b: &[u8]) -> Option<usize> {
    let n = *b.first()?;
    b.get(1).map(|_| n as usize)
}
