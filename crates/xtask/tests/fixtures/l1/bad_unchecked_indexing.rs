//! Fixture: unchecked subscripts on wire bytes.

pub fn first_two(b: &[u8]) -> (u8, u8) {
    (b[0], b[1])
}
