//! Fixture: panicking calls in per-packet code.

pub fn parse_len(b: &[u8]) -> usize {
    let n = b.first().unwrap();
    *n as usize
}

fn guard(v: &[u8]) {
    if v.is_empty() {
        panic!("empty frame");
    }
}
