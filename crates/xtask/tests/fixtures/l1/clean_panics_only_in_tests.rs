//! Fixture: panics confined to test code are fine.

pub fn add(a: u8, b: u8) -> u8 {
    a.wrapping_add(b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn adds() {
        assert_eq!(super::add(1, 2), 3);
        let v = vec![1u8];
        let _ = v[0];
    }
}
