//! Fixture: a guard held across a (possibly blocking) channel send.

impl Table {
    fn flush(&self) {
        let stats = self.stats.lock();
        self.tx.send(stats.snapshot());
    }
}
