//! Fixture: a second lock acquired while a guard is live.

impl Table {
    fn rebalance(&self) {
        let guard = self.primary.lock();
        let spill = self.spill.lock();
        drop(spill);
        drop(guard);
    }
}
