//! Fixture: chained locking drops its temporary guard at the semicolon.

impl Table {
    fn bump(&self) {
        self.shard.lock().insert(1, 2);
        let n = *self.stats.lock().get();
    }
}
