//! Fixture: the first guard is scoped out before the second acquisition.

impl Table {
    fn rebalance(&self) {
        {
            let guard = self.primary.lock();
            guard.touch();
        }
        let spill = self.spill.lock();
        spill.touch();
    }
}
