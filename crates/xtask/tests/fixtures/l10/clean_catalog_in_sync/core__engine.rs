//! Fixture: every site cataloged, every catalog row recorded.

pub fn process(seq: u64, ts: u64, key: u64) {
    tm_trace!(Te::FrameParse, seq, ts, 1, 64);
    tm_trace!(Te::FlowOpen, seq, ts, key, 443);
}
