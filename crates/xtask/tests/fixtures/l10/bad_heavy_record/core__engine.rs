//! Fixture: a record site that allocates while building its arguments.

pub fn process(seq: u64, ts: u64, name: &str) {
    tm_trace!(Te::FrameParse, seq, ts, 1, 64);
    tm_trace!(Te::FlowOpen, seq, ts, name.to_string().len() as u64, 443);
}
