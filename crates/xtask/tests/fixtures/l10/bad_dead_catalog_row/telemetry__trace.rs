//! Fixture: a cataloged event no site ever records.

trace_events! {
    FrameParse => "frame_parse", Stable,
        Value("fault"), Value("wire_bytes"),
        "a frame failed to parse";
    GhostLane => "ghost_lane", Runtime,
        Value("a"), Value("b"),
        "promised by the catalog, recorded by nobody";
}
