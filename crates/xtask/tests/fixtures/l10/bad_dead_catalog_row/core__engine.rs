//! Fixture: records only one of the two cataloged events.

pub fn process(seq: u64, ts: u64) {
    tm_trace!(Te::FrameParse, seq, ts, 1, 64);
}
