//! Fixture trace-event catalog.

trace_events! {
    FrameParse => "frame_parse", Stable,
        Value("fault"), Value("wire_bytes"),
        "a frame failed to parse";
    FlowOpen => "flow_open", Stable,
        ServerKey("server"), Value("port"),
        "first segment of a flow";
}
