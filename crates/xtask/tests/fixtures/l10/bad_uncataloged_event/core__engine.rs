//! Fixture: a record site naming an event the catalog lacks.

pub fn process(seq: u64, ts: u64, key: u64) {
    tm_trace!(Te::FrameParse, seq, ts, 1, 64);
    tm_trace!(Te::FlowOpen, seq, ts, key, 443);
    tm_trace!(Te::Bogus, seq, ts, 0, 0);
}
