//! Fixture: a guarded multi-line record plus a wall-variant site.

pub fn process(seq: u64, ts: u64, items: u64, nanos: u64) {
    if trace_enabled() {
        tm_trace!(
            Te::FrameParse,
            seq,
            ts,
            1,
            64,
        );
    }
    tm_trace_wall!(Te::WorkerDrain, seq, items, nanos);
}
