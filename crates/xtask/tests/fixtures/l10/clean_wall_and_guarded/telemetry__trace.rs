//! Fixture trace-event catalog with a runtime (wall-stamped) event.

trace_events! {
    FrameParse => "frame_parse", Stable,
        Value("fault"), Value("wire_bytes"),
        "a frame failed to parse";
    WorkerDrain => "worker_drain", Runtime,
        Value("items"), Value("busy_nanos"),
        "one worker drain sweep";
}
