//! Fixture: every metric updated, every site cataloged, Stable in-flow.

// lint_root(ingest): per-frame driver
pub fn process(b: &[u8]) {
    tm_count!(Tm::Frames);
    tm_gauge!(Tm::QueueDepth, 1);
}
