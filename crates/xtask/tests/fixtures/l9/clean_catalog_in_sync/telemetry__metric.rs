//! Fixture metric catalog.

metrics! {
    Frames => "dnh_frames_total", Counter, Stable,
        "frames seen";
    QueueDepth => "dnh_queue_depth", Gauge, Runtime,
        "ring occupancy";
}
