//! Fixture: an update site naming a metric the catalog lacks.

// lint_root(ingest): per-frame driver
pub fn process(b: &[u8]) {
    tm_count!(Tm::Frames);
    tm_gauge!(Tm::QueueDepth, 1);
    tm_count!(Tm::Bogus);
}
