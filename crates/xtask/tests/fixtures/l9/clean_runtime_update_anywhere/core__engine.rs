//! Fixture: Runtime-class metrics may be updated from cold code.

// lint_root(ingest): per-frame driver
pub fn process(b: &[u8]) {
    tm_count!(Tm::Frames);
}

pub fn housekeeping() {
    tm_gauge!(Tm::QueueDepth, 1);
}
