//! Fixture: a Stable-class metric bumped from cold setup code.

// lint_root(ingest): per-frame driver
pub fn process(b: &[u8]) {
    tm_count!(Tm::Frames);
    tm_gauge!(Tm::QueueDepth, 1);
}

pub fn cli_banner() {
    tm_count!(Tm::Frames);
}
