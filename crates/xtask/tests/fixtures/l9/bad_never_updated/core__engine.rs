//! Fixture: the engine never updates the catalog's `Spare` entry.

// lint_root(ingest): per-frame driver
pub fn process(b: &[u8]) {
    tm_count!(Tm::Frames);
    tm_gauge!(Tm::QueueDepth, 1);
}
