//! Fixture metric catalog with an orphaned entry.

metrics! {
    Frames => "dnh_frames_total", Counter, Stable,
        "frames seen";
    Spare => "dnh_spare_total", Counter, Stable,
        "cataloged but never updated";
    QueueDepth => "dnh_queue_depth", Gauge, Runtime,
        "ring occupancy";
}
