//! Fixture: ordered maps have no hasher to get wrong.
use std::collections::BTreeMap;

pub fn index_frames() {
    let mut idx = BTreeMap::new();
    idx.insert(1u16, 2u16);
}
