//! Fixture: a two-parameter `HashMap<K, V>` defaults to SipHash.

pub struct FlowIndex {
    by_port: HashMap<u16, usize>,
}
