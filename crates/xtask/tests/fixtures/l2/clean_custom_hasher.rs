//! Fixture: an explicit hasher parameter passes.

pub struct FlowIndex {
    by_port: HashMap<u16, usize, FnvBuildHasher>,
    cache: FnvHashMap<u16, usize>,
}
