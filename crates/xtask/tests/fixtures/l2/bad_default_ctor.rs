//! Fixture: SipHash map construction in a per-packet path.
use std::collections::HashMap;

pub fn index_frames() {
    let mut idx = HashMap::new();
    idx.insert(1u16, 2u16);
}
