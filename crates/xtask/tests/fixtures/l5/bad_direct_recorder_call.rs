//! Fixture: a direct recorder call bypasses the `tm_*!` macros.

pub fn on_frame() {
    telemetry::counter_add(Tm::Frames, 1);
}
