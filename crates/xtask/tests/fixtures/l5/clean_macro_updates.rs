//! Fixture: the sanctioned macro spellings.

pub fn on_frame() {
    tm_count!(Tm::Frames);
    tm_observe!(Tm::ParseNanos, 17);
}
