//! Fixture: a local `observe` helper is not a telemetry recorder call.

pub fn on_sample(w: &mut Window) {
    w.observe(3);
    observe(7);
}
