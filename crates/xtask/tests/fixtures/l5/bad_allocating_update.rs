//! Fixture: an allocation inside a metric update line.

pub fn on_frame(name: &str) {
    tm_count!(Tm::Frames, name.to_string());
}
