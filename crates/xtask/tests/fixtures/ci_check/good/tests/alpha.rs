// ci-check fixture: covered by the blanket `cargo test --workspace`.
