// ci-check fixture: covered by the explicit `--test beta` step.
