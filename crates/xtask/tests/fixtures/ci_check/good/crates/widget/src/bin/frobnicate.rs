fn main() {}
