// ci-check fixture: covered by the blanket run.
