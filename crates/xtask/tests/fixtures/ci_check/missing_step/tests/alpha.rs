// ci-check fixture: MUST be flagged — no workflow step runs this test.
