// ci-check fixture: covered by the explicit step below.
