//! Classic libpcap container (the `0xa1b2c3d4` format, microsecond
//! timestamps, LINKTYPE_ETHERNET).
//!
//! The simulator writes synthetic traces in this format so that the sniffer
//! reads them exactly like a real capture file, and so that any generated
//! trace can be inspected with standard tools.

use std::io::{Read, Write};

use crate::error::{NetError, Result};

/// Magic for microsecond-resolution pcap, written in native order here and
/// accepted in either byte order when reading.
pub const MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Default snap length (we never truncate synthetic frames).
pub const SNAPLEN: u32 = 262_144;

/// One captured record: a timestamp and the raw frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Seconds since the Unix epoch.
    pub ts_sec: u32,
    /// Microseconds within the second.
    pub ts_usec: u32,
    /// Raw frame bytes (link layer onward).
    pub frame: Vec<u8>,
}

impl PcapRecord {
    /// Timestamp in whole microseconds since the epoch.
    pub fn timestamp_micros(&self) -> u64 {
        u64::from(self.ts_sec) * 1_000_000 + u64::from(self.ts_usec)
    }

    /// Build from a microsecond timestamp.
    pub fn from_micros(ts_micros: u64, frame: Vec<u8>) -> Self {
        PcapRecord {
            ts_sec: (ts_micros / 1_000_000) as u32,
            ts_usec: (ts_micros % 1_000_000) as u32,
            frame,
        }
    }
}

/// Streaming pcap writer over any [`Write`].
pub struct PcapWriter<W: Write> {
    inner: W,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut inner: W) -> Result<Self> {
        inner.write_all(&MAGIC.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&SNAPLEN.to_le_bytes())?;
        inner.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { inner, records: 0 })
    }

    /// Append one record.
    pub fn write_record(&mut self, rec: &PcapRecord) -> Result<()> {
        let len = rec.frame.len() as u32;
        self.inner.write_all(&rec.ts_sec.to_le_bytes())?;
        self.inner.write_all(&rec.ts_usec.to_le_bytes())?;
        self.inner.write_all(&len.to_le_bytes())?; // incl_len
        self.inner.write_all(&len.to_le_bytes())?; // orig_len
        self.inner.write_all(&rec.frame)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flush and hand back the underlying writer.
    pub fn into_inner(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming pcap reader over any [`Read`]. Handles both byte orders.
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
}

impl<R: Read> PcapReader<R> {
    /// Read and validate the global header.
    // allow_lint(L1): constant indices into the fixed [u8; 24] header array cannot be out of bounds
    pub fn new(mut inner: R) -> Result<Self> {
        let mut hdr = [0u8; 24];
        inner
            .read_exact(&mut hdr)
            .map_err(|e| NetError::BadPcap(format!("global header unreadable: {e}")))?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC => false,
            m if m == MAGIC.swap_bytes() => true,
            other => {
                return Err(NetError::BadPcap(format!(
                    "bad magic {other:#010x} (nanosecond pcap and pcapng are not supported)"
                )))
            }
        };
        let linktype_bytes = [hdr[20], hdr[21], hdr[22], hdr[23]];
        let linktype = if swapped {
            u32::from_be_bytes(linktype_bytes)
        } else {
            u32::from_le_bytes(linktype_bytes)
        };
        if linktype != LINKTYPE_ETHERNET {
            return Err(NetError::BadPcap(format!(
                "unsupported linktype {linktype} (only Ethernet)"
            )));
        }
        Ok(PcapReader { inner, swapped })
    }

    fn read_u32(&self, b: [u8; 4]) -> u32 {
        if self.swapped {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }

    /// Read the next record; `Ok(None)` at clean end-of-file.
    // allow_lint(L1): constant indices into the fixed [u8; 16] record header cannot be out of bounds
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>> {
        let mut hdr = [0u8; 16];
        match self.inner.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(NetError::Io(e.to_string())),
        }
        let ts_sec = self.read_u32([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let ts_usec = self.read_u32([hdr[4], hdr[5], hdr[6], hdr[7]]);
        let incl_len = self.read_u32([hdr[8], hdr[9], hdr[10], hdr[11]]) as usize;
        if incl_len > SNAPLEN as usize {
            return Err(NetError::BadPcap(format!(
                "record claims {incl_len} bytes, above snaplen"
            )));
        }
        let mut frame = vec![0u8; incl_len];
        self.inner
            .read_exact(&mut frame)
            .map_err(|e| NetError::BadPcap(format!("record body truncated: {e}")))?;
        Ok(Some(PcapRecord {
            ts_sec,
            ts_usec,
            frame,
        }))
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<PcapRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_records() -> Vec<PcapRecord> {
        vec![
            PcapRecord::from_micros(1_300_000_000_000_123, vec![1, 2, 3, 4]),
            PcapRecord::from_micros(1_300_000_000_500_000, vec![0xde, 0xad]),
            PcapRecord::from_micros(1_300_000_001_000_001, vec![]),
        ]
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in sample_records() {
            w.write_record(&r).unwrap();
        }
        assert_eq!(w.records_written(), 3);
        let bytes = w.into_inner().unwrap();
        let r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let got: Vec<PcapRecord> = r.map(|x| x.unwrap()).collect();
        assert_eq!(got, sample_records());
    }

    #[test]
    fn timestamp_micros_roundtrip() {
        let r = PcapRecord::from_micros(987_654_321_123_456, vec![]);
        assert_eq!(r.timestamp_micros(), 987_654_321_123_456);
    }

    #[test]
    fn rejects_bad_magic() {
        let bytes = vec![0u8; 24];
        assert!(matches!(
            PcapReader::new(Cursor::new(bytes)),
            Err(NetError::BadPcap(_))
        ));
    }

    #[test]
    fn rejects_wrong_linktype() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let mut bytes = w.into_inner().unwrap();
        bytes[20] = 101; // LINKTYPE_RAW
        assert!(PcapReader::new(Cursor::new(bytes)).is_err());
        w = PcapWriter::new(Vec::new()).unwrap();
        drop(w);
    }

    #[test]
    fn truncated_record_body_is_an_error() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&PcapRecord::from_micros(1, vec![9; 100]))
            .unwrap();
        let mut bytes = w.into_inner().unwrap();
        bytes.truncate(bytes.len() - 10);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert!(r.next_record().is_err());
    }

    #[test]
    fn big_endian_capture_is_readable() {
        // Hand-build a big-endian pcap with one 2-byte record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0i32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&SNAPLEN.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&8u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&2u32.to_be_bytes()); // incl_len
        bytes.extend_from_slice(&2u32.to_be_bytes()); // orig_len
        bytes.extend_from_slice(&[0xaa, 0xbb]);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_sec, 7);
        assert_eq!(rec.ts_usec, 8);
        assert_eq!(rec.frame, vec![0xaa, 0xbb]);
        assert!(r.next_record().unwrap().is_none());
    }
}
