//! Composite packet parsing and building.
//!
//! [`Packet::parse`] walks a raw Ethernet frame through IP and transport
//! layers in one call; builder helpers synthesize complete, checksummed
//! frames for the traffic simulator.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use crate::error::{NetError, Result};
use crate::ethernet::{EtherType, EthernetHeader};
use crate::ipv4::Ipv4Header;
use crate::ipv6::Ipv6Header;
use crate::mac::MacAddr;
use crate::proto::IpProtocol;
use crate::tcp::{TcpFlags, TcpHeader};
use crate::udp::UdpHeader;

/// Either IP version's header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpHeader {
    V4(Ipv4Header),
    V6(Ipv6Header),
}

impl IpHeader {
    /// Source address, version-erased.
    pub fn src(&self) -> IpAddr {
        match self {
            IpHeader::V4(h) => IpAddr::V4(h.src),
            IpHeader::V6(h) => IpAddr::V6(h.src),
        }
    }

    /// Destination address, version-erased.
    pub fn dst(&self) -> IpAddr {
        match self {
            IpHeader::V4(h) => IpAddr::V4(h.dst),
            IpHeader::V6(h) => IpAddr::V6(h.dst),
        }
    }

    /// Transport protocol carried.
    pub fn protocol(&self) -> IpProtocol {
        match self {
            IpHeader::V4(h) => h.protocol,
            IpHeader::V6(h) => h.next_header,
        }
    }
}

/// Parsed transport header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportHeader {
    Tcp(TcpHeader),
    Udp(UdpHeader),
    /// Protocol the sniffer doesn't reconstruct (ICMP, GRE, …).
    Opaque(IpProtocol),
}

impl TransportHeader {
    /// Source port if the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match self {
            TransportHeader::Tcp(h) => Some(h.src_port),
            TransportHeader::Udp(h) => Some(h.src_port),
            TransportHeader::Opaque(_) => None,
        }
    }

    /// Destination port if the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            TransportHeader::Tcp(h) => Some(h.dst_port),
            TransportHeader::Udp(h) => Some(h.dst_port),
            TransportHeader::Opaque(_) => None,
        }
    }
}

/// A fully parsed frame: link + IP + transport headers plus the transport
/// payload copied out of the frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub ethernet: EthernetHeader,
    /// 802.1Q VLAN id, when the frame was tagged.
    pub vlan: Option<u16>,
    pub ip: IpHeader,
    pub transport: TransportHeader,
    /// Application-layer bytes (after the transport header).
    pub payload: Vec<u8>,
}

/// A parsed frame whose payload *borrows* the input buffer.
///
/// This is the allocation-free stage [`Packet::parse`] is built on. The
/// parallel-ingest dispatcher uses it directly: routing a frame to a shard
/// worker needs the addresses, ports and flags, but not an owned payload,
/// and must not pay a heap allocation per packet. Because [`Packet::parse`]
/// is `PacketView::parse` + one copy, both accept and reject exactly the
/// same frames by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketView<'a> {
    pub ethernet: EthernetHeader,
    /// 802.1Q VLAN id, when the frame was tagged.
    pub vlan: Option<u16>,
    pub ip: IpHeader,
    pub transport: TransportHeader,
    /// Application-layer bytes (after the transport header), borrowed.
    pub payload: &'a [u8],
}

impl<'a> PacketView<'a> {
    /// Parse a raw Ethernet frame down to the application payload without
    /// copying it out of `frame`.
    ///
    /// Non-IP frames and IP fragments beyond the first are rejected with
    /// [`NetError::Unsupported`]; the passive sniffer simply skips them, as
    /// the paper's tool does. A frame cut short of a header or of a length
    /// field's claim is [`NetError::Truncated`] — "snaplen cut us off" and
    /// "VLAN we don't speak" are different capture pathologies and are
    /// counted apart.
    ///
    /// Telemetry: accepted frames count into `dnh_net_parses_total`
    /// (runtime class — the two-stage pipeline parses DNS frames twice);
    /// rejects split by cause into `dnh_net_frames_truncated_total`,
    /// `dnh_net_checksum_errors_total`, and
    /// `dnh_net_frames_malformed_total` (all stable — a rejected frame is
    /// counted exactly once by every driver).
    // lint_root(ingest): first touch of attacker-controlled wire bytes (zero-copy header walk)
    pub fn parse(frame: &'a [u8]) -> Result<PacketView<'a>> {
        match Self::parse_inner(frame) {
            Ok(view) => {
                dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::NetParses);
                Ok(view)
            }
            Err(e) => {
                match &e {
                    NetError::Truncated { .. } => {
                        dnhunter_telemetry::tm_count!(
                            dnhunter_telemetry::Metric::NetFramesTruncated
                        )
                    }
                    NetError::BadChecksum { .. } => {
                        dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::NetChecksumErrors)
                    }
                    _ => dnhunter_telemetry::tm_count!(
                        dnhunter_telemetry::Metric::NetFramesMalformed
                    ),
                }
                Err(e)
            }
        }
    }

    // allow_lint(L1): every slice offset is validated first — the vlan `need` guard, and the layer parsers (Ipv4Header/Ipv6Header/TcpHeader/UdpHeader::parse) check their lengths before returning offsets
    fn parse_inner(frame: &'a [u8]) -> Result<PacketView<'a>> {
        let (mut eth, mut eth_len) = EthernetHeader::parse(frame)?;
        // 802.1Q VLAN tag: 2 bytes TCI + 2 bytes real EtherType.
        let mut vlan = None;
        if eth.ethertype == EtherType::Other(0x8100) {
            crate::error::need("vlan", frame, eth_len + 4)?;
            let tci = u16::from_be_bytes([frame[eth_len], frame[eth_len + 1]]);
            vlan = Some(tci & 0x0fff);
            eth.ethertype =
                EtherType::from(u16::from_be_bytes([frame[eth_len + 2], frame[eth_len + 3]]));
            eth_len += 4;
        }
        let rest = &frame[eth_len..];
        let (ip, ip_len, ip_payload_len) = match eth.ethertype {
            EtherType::Ipv4 => {
                let (h, len) = Ipv4Header::parse(rest)?;
                if h.is_fragment() && h.fragment_offset != 0 {
                    return Err(NetError::Unsupported {
                        layer: "ipv4",
                        detail: "non-first fragment".into(),
                    });
                }
                let payload_len = usize::from(h.total_len) - len;
                (IpHeader::V4(h), len, payload_len)
            }
            EtherType::Ipv6 => {
                let (h, len) = Ipv6Header::parse(rest)?;
                let payload_len = usize::from(h.payload_len);
                (IpHeader::V6(h), len, payload_len)
            }
            other => {
                return Err(NetError::Unsupported {
                    layer: "ethernet",
                    detail: format!("non-IP ethertype {:#06x}", other.value()),
                })
            }
        };
        let segment = &rest[ip_len..ip_len + ip_payload_len];
        let (transport, payload) = match ip.protocol() {
            IpProtocol::Tcp => {
                let (h, off) = TcpHeader::parse(segment)?;
                (TransportHeader::Tcp(h), &segment[off..])
            }
            IpProtocol::Udp => {
                let (h, off) = UdpHeader::parse(segment)?;
                let end = usize::from(h.length);
                (TransportHeader::Udp(h), &segment[off..end])
            }
            other => (TransportHeader::Opaque(other), segment),
        };
        Ok(PacketView {
            ethernet: eth,
            vlan,
            ip,
            transport,
            payload,
        })
    }

    /// [`PacketView::parse`] minus the telemetry: the flat parser's generic
    /// fallback ([`crate::seg::parse_flat`]) classifies and counts the
    /// outcome itself, exactly once per frame.
    pub(crate) fn parse_uncounted(frame: &'a [u8]) -> Result<PacketView<'a>> {
        Self::parse_inner(frame)
    }

    /// Copy the payload out, producing an owned [`Packet`].
    pub fn to_packet(&self) -> Packet {
        Packet {
            ethernet: self.ethernet,
            vlan: self.vlan,
            ip: self.ip.clone(),
            transport: self.transport.clone(),
            payload: self.payload.to_vec(),
        }
    }

    /// Client/server convenience accessors.
    pub fn src_ip(&self) -> IpAddr {
        self.ip.src()
    }
    pub fn dst_ip(&self) -> IpAddr {
        self.ip.dst()
    }
}

impl Packet {
    /// Parse a raw Ethernet frame down to the application payload.
    ///
    /// Equivalent to [`PacketView::parse`] followed by one payload copy —
    /// the two stages accept and reject identical frame sets.
    // lint_root(ingest): owned-packet parse entry over raw captured frames
    pub fn parse(frame: &[u8]) -> Result<Packet> {
        PacketView::parse(frame).map(|v| v.to_packet())
    }

    /// Client/server convenience accessors.
    pub fn src_ip(&self) -> IpAddr {
        self.ip.src()
    }
    pub fn dst_ip(&self) -> IpAddr {
        self.ip.dst()
    }
}

/// Build a complete Ethernet+IPv4+UDP frame carrying `payload`.
pub fn build_udp_v4(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Result<Vec<u8>> {
    let mut seg = Vec::with_capacity(8 + payload.len());
    UdpHeader::write_segment_v4(src_port, dst_port, payload, src, dst, &mut seg)?;
    let mut frame = Vec::with_capacity(14 + 20 + seg.len());
    EthernetHeader {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Ipv4,
    }
    .write(&mut frame);
    Ipv4Header::new(src, dst, IpProtocol::Udp).write(&mut frame, seg.len())?;
    frame.extend_from_slice(&seg);
    Ok(frame)
}

/// Build a complete Ethernet+IPv4+TCP frame carrying `payload`.
#[allow(clippy::too_many_arguments)]
pub fn build_tcp_v4(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    payload: &[u8],
) -> Result<Vec<u8>> {
    let tcp = TcpHeader::new(src_port, dst_port, seq, ack, flags);
    let mut seg = Vec::with_capacity(tcp.header_len() + payload.len());
    tcp.write_segment_v4(payload, src, dst, &mut seg)?;
    let mut frame = Vec::with_capacity(14 + 20 + seg.len());
    EthernetHeader {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Ipv4,
    }
    .write(&mut frame);
    Ipv4Header::new(src, dst, IpProtocol::Tcp).write(&mut frame, seg.len())?;
    frame.extend_from_slice(&seg);
    Ok(frame)
}

/// Build a complete Ethernet+IPv6+UDP frame carrying `payload`. The simulator
/// uses this to exercise the v6 code path of the sniffer.
// allow_lint(L1): seg holds 8 header bytes before the checksum is patched at 6..8
pub fn build_udp_v6(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Result<Vec<u8>> {
    use crate::checksum::pseudo_header_checksum_v6;
    let total = 8 + payload.len();
    let mut seg = Vec::with_capacity(total);
    seg.extend_from_slice(&src_port.to_be_bytes());
    seg.extend_from_slice(&dst_port.to_be_bytes());
    seg.extend_from_slice(&(total as u16).to_be_bytes());
    seg.extend_from_slice(&[0, 0]);
    seg.extend_from_slice(payload);
    let mut ck = pseudo_header_checksum_v6(src, dst, 17, &seg);
    if ck == 0 {
        ck = 0xffff;
    }
    seg[6..8].copy_from_slice(&ck.to_be_bytes());

    let mut frame = Vec::with_capacity(14 + 40 + seg.len());
    EthernetHeader {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Ipv6,
    }
    .write(&mut frame);
    Ipv6Header::new(src, dst, IpProtocol::Udp).write(&mut frame, seg.len())?;
    frame.extend_from_slice(&seg);
    Ok(frame)
}

/// Build a complete Ethernet+IPv6+TCP frame carrying `payload`.
#[allow(clippy::too_many_arguments)]
pub fn build_tcp_v6(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    payload: &[u8],
) -> Result<Vec<u8>> {
    let tcp = TcpHeader::new(src_port, dst_port, seq, ack, flags);
    let mut seg = Vec::with_capacity(tcp.header_len() + payload.len());
    tcp.write_segment_v6(payload, src, dst, &mut seg)?;
    let mut frame = Vec::with_capacity(14 + 40 + seg.len());
    EthernetHeader {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Ipv6,
    }
    .write(&mut frame);
    Ipv6Header::new(src, dst, IpProtocol::Tcp).write(&mut frame, seg.len())?;
    frame.extend_from_slice(&seg);
    Ok(frame)
}

/// Insert an 802.1Q tag (vlan id) into an untagged Ethernet frame —
/// useful for testing trunk-port captures.
pub fn insert_vlan_tag(frame: &[u8], vlan_id: u16) -> Vec<u8> {
    // Runt frames (shorter than the two MAC addresses) can't carry a tag;
    // return them unchanged rather than panic (lint L1).
    if frame.len() < 12 {
        return frame.to_vec();
    }
    let (macs, rest) = frame.split_at(12);
    let mut out = Vec::with_capacity(frame.len() + 4);
    out.extend_from_slice(macs);
    out.extend_from_slice(&0x8100u16.to_be_bytes());
    out.extend_from_slice(&(vlan_id & 0x0fff).to_be_bytes());
    out.extend_from_slice(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::from_id(1), MacAddr::from_id(2))
    }

    #[test]
    fn udp_v4_full_roundtrip() {
        let (sm, dm) = macs();
        let frame = build_udp_v4(
            sm,
            dm,
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(198, 51, 100, 7),
            40001,
            53,
            b"dns query bytes",
        )
        .unwrap();
        let p = Packet::parse(&frame).unwrap();
        assert_eq!(p.src_ip(), IpAddr::V4(Ipv4Addr::new(10, 0, 0, 9)));
        assert_eq!(p.transport.dst_port(), Some(53));
        assert_eq!(p.payload, b"dns query bytes");
    }

    #[test]
    fn tcp_v4_full_roundtrip() {
        let (sm, dm) = macs();
        let frame = build_tcp_v4(
            sm,
            dm,
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(198, 51, 100, 7),
            51515,
            443,
            42,
            0,
            TcpFlags::SYN,
            &[],
        )
        .unwrap();
        let p = Packet::parse(&frame).unwrap();
        match &p.transport {
            TransportHeader::Tcp(h) => {
                assert!(h.flags.syn());
                assert_eq!(h.seq, 42);
            }
            other => panic!("expected TCP, got {other:?}"),
        }
        assert!(p.payload.is_empty());
    }

    #[test]
    fn udp_v6_full_roundtrip() {
        let (sm, dm) = macs();
        let frame = build_udp_v6(
            sm,
            dm,
            "2001:db8::10".parse().unwrap(),
            "2001:db8::53".parse().unwrap(),
            55555,
            53,
            b"v6 dns",
        )
        .unwrap();
        let p = Packet::parse(&frame).unwrap();
        assert_eq!(p.transport.dst_port(), Some(53));
        assert_eq!(p.payload, b"v6 dns");
        assert!(matches!(p.ip, IpHeader::V6(_)));
    }

    #[test]
    fn arp_frames_are_skipped_as_unsupported() {
        let mut frame = Vec::new();
        EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::from_id(3),
            ethertype: EtherType::Arp,
        }
        .write(&mut frame);
        frame.extend_from_slice(&[0u8; 28]);
        assert!(matches!(
            Packet::parse(&frame),
            Err(NetError::Unsupported { .. })
        ));
    }

    #[test]
    fn trailing_link_padding_is_ignored() {
        // Ethernet frames are often padded to 60 bytes; the IP total length
        // field must win over the buffer length.
        let (sm, dm) = macs();
        let mut frame = build_udp_v4(
            sm,
            dm,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            2000,
            b"x",
        )
        .unwrap();
        while frame.len() < 60 {
            frame.push(0);
        }
        let p = Packet::parse(&frame).unwrap();
        assert_eq!(p.payload, b"x");
    }

    #[test]
    fn tcp_v6_full_roundtrip() {
        let (sm, dm) = macs();
        let frame = build_tcp_v6(
            sm,
            dm,
            "2001:db8::10".parse().unwrap(),
            "2001:4860::1".parse().unwrap(),
            51000,
            80,
            7,
            0,
            TcpFlags::SYN,
            &[],
        )
        .unwrap();
        let p = Packet::parse(&frame).unwrap();
        assert!(matches!(p.ip, IpHeader::V6(_)));
        assert_eq!(p.transport.dst_port(), Some(80));
        match &p.transport {
            TransportHeader::Tcp(h) => assert!(h.flags.syn()),
            other => panic!("expected TCP, got {other:?}"),
        }
    }

    #[test]
    fn vlan_tagged_frames_parse() {
        let (sm, dm) = macs();
        let plain = build_udp_v4(
            sm,
            dm,
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(198, 51, 100, 7),
            40001,
            53,
            b"tagged dns",
        )
        .unwrap();
        let tagged = insert_vlan_tag(&plain, 113);
        let p = Packet::parse(&tagged).unwrap();
        assert_eq!(p.vlan, Some(113));
        assert_eq!(p.payload, b"tagged dns");
        assert_eq!(p.transport.dst_port(), Some(53));
        // Untagged frames report no VLAN.
        assert_eq!(Packet::parse(&plain).unwrap().vlan, None);
        // A truncated tag is an error, not a panic.
        assert!(Packet::parse(&tagged[..15]).is_err());
    }

    #[test]
    fn view_and_packet_agree() {
        // PacketView::parse is the stage Packet::parse is built on; spot
        // check that the borrowed view carries the same fields and payload.
        let (sm, dm) = macs();
        let frame = build_udp_v4(
            sm,
            dm,
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(198, 51, 100, 7),
            40001,
            53,
            b"same bytes",
        )
        .unwrap();
        let view = PacketView::parse(&frame).unwrap();
        let pkt = Packet::parse(&frame).unwrap();
        assert_eq!(view.to_packet(), pkt);
        assert_eq!(view.payload, &pkt.payload[..]);
        assert_eq!(view.src_ip(), pkt.src_ip());
        // Both stages reject the same garbage.
        assert!(PacketView::parse(&frame[..10]).is_err());
        assert!(Packet::parse(&frame[..10]).is_err());
    }

    #[test]
    fn opaque_protocol_preserved() {
        // Hand-build an IPv4+ICMP frame.
        let mut frame = Vec::new();
        EthernetHeader {
            dst: MacAddr::from_id(1),
            src: MacAddr::from_id(2),
            ethertype: EtherType::Ipv4,
        }
        .write(&mut frame);
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Icmp,
        )
        .write(&mut frame, 8)
        .unwrap();
        frame.extend_from_slice(&[8, 0, 0, 0, 0, 0, 0, 0]);
        let p = Packet::parse(&frame).unwrap();
        assert_eq!(p.transport, TransportHeader::Opaque(IpProtocol::Icmp));
        assert_eq!(p.transport.src_port(), None);
    }
}
