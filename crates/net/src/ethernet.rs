//! Ethernet II framing.

use crate::error::{need, NetError, Result};
use crate::mac::MacAddr;

/// Length of an Ethernet II header in bytes.
pub const HEADER_LEN: usize = 14;

/// EtherType discriminator for the encapsulated payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// IPv6 (0x86DD).
    Ipv6,
    /// ARP (0x0806) — recognised but not decoded further.
    Arp,
    /// Any other value.
    Other(u16),
}

impl EtherType {
    /// Wire value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x86DD => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// A decoded Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    pub dst: MacAddr,
    pub src: MacAddr,
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Decode the header; returns the header and the payload slice offset.
    // allow_lint(L1): all offsets are below HEADER_LEN, checked by the `need` guard on entry
    pub fn parse(buf: &[u8]) -> Result<(EthernetHeader, usize)> {
        need("ethernet", buf, HEADER_LEN)?;
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&buf[6..12]);
        let ethertype = u16::from_be_bytes([buf[12], buf[13]]);
        if ethertype < 0x0600 {
            // 802.3 length field rather than an EtherType; the paper's sniffer
            // (and ours) only handles Ethernet II.
            return Err(NetError::Unsupported {
                layer: "ethernet",
                detail: format!("802.3 length-field frame ({ethertype:#06x})"),
            });
        }
        Ok((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: EtherType::from(ethertype),
            },
            HEADER_LEN,
        ))
    }

    /// Append the encoded header to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.value().to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = EthernetHeader {
            dst: MacAddr::from_id(1),
            src: MacAddr::from_id(2),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let (parsed, off) = EthernetHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(off, HEADER_LEN);
    }

    #[test]
    fn parse_rejects_short_buffer() {
        assert!(matches!(
            EthernetHeader::parse(&[0u8; 13]),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn parse_rejects_8023_length_frames() {
        let mut buf = vec![0u8; 14];
        buf[12..14].copy_from_slice(&100u16.to_be_bytes());
        assert!(matches!(
            EthernetHeader::parse(&buf),
            Err(NetError::Unsupported { .. })
        ));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x86DD), EtherType::Ipv6);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x9999), EtherType::Other(0x9999));
        assert_eq!(EtherType::Other(0x1234).value(), 0x1234);
    }
}
