//! Error type shared by every codec in this crate.

use std::fmt;

/// Errors produced while parsing or building wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The buffer is shorter than the fixed part of the header being parsed.
    Truncated {
        /// Human-readable name of the layer being decoded.
        layer: &'static str,
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A length field inside the packet is inconsistent with the buffer.
    BadLength { layer: &'static str, detail: String },
    /// A version / type discriminator had an unsupported value.
    Unsupported { layer: &'static str, detail: String },
    /// A checksum failed validation.
    BadChecksum {
        layer: &'static str,
        expected: u16,
        found: u16,
    },
    /// The pcap container is malformed.
    BadPcap(String),
    /// Underlying I/O failure (pcap reading/writing).
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated {
                layer,
                needed,
                available,
            } => write!(
                f,
                "{layer}: truncated packet (need {needed} bytes, have {available})"
            ),
            NetError::BadLength { layer, detail } => {
                write!(f, "{layer}: inconsistent length field: {detail}")
            }
            NetError::Unsupported { layer, detail } => {
                write!(f, "{layer}: unsupported value: {detail}")
            }
            NetError::BadChecksum {
                layer,
                expected,
                found,
            } => write!(
                f,
                "{layer}: checksum mismatch (expected {expected:#06x}, found {found:#06x})"
            ),
            NetError::BadPcap(detail) => write!(f, "pcap: {detail}"),
            NetError::Io(detail) => write!(f, "io: {detail}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NetError>;

/// Bounds-check helper: ensure `buf` holds at least `needed` bytes for `layer`.
#[inline]
pub(crate) fn need(layer: &'static str, buf: &[u8], needed: usize) -> Result<()> {
    if buf.len() < needed {
        Err(NetError::Truncated {
            layer,
            needed,
            available: buf.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_truncated() {
        let e = NetError::Truncated {
            layer: "ipv4",
            needed: 20,
            available: 7,
        };
        assert_eq!(
            e.to_string(),
            "ipv4: truncated packet (need 20 bytes, have 7)"
        );
    }

    #[test]
    fn display_checksum() {
        let e = NetError::BadChecksum {
            layer: "tcp",
            expected: 0x1234,
            found: 0xabcd,
        };
        assert!(e.to_string().contains("0x1234"));
        assert!(e.to_string().contains("0xabcd"));
    }

    #[test]
    fn need_ok_and_err() {
        assert!(need("x", &[0u8; 4], 4).is_ok());
        let err = need("x", &[0u8; 3], 4).unwrap_err();
        match err {
            NetError::Truncated {
                needed, available, ..
            } => {
                assert_eq!(needed, 4);
                assert_eq!(available, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: NetError = io.into();
        assert!(matches!(e, NetError::Io(_)));
    }
}
