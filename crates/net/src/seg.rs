//! Branch-light batched 5-tuple parsing for the ingest fast path.
//!
//! [`crate::PacketView::parse`] is the general decoder: it materialises
//! header structs (TCP options, IPv4 options) and version-erasing enums for
//! every frame. The sniffer's hot path needs none of that — routing and flow
//! reconstruction consume exactly a 5-tuple, the TCP flags/seq, and the
//! payload slice. [`parse_flat`] produces that ([`FlatSeg`]) in one pass
//! with zero allocations: the overwhelmingly common shape (untagged
//! Ethernet II + IPv4 + TCP/UDP) is decoded by a specialised walk that
//! validates *exactly* what the layer parsers validate — same length
//! guards, same checksum, same option-structure checks — but builds no
//! intermediate structs; every other shape (VLAN tags, IPv6, 802.3,
//! malformed frames) falls back to the generic path, so both parsers accept
//! and reject identical frame sets by construction
//! (`tests/properties.rs` pins the equivalence, and the pipeline's
//! byte-identical-to-sequential determinism tests would catch any drift
//! end-to-end).
//!
//! [`SegBatch`] amortises the per-call overhead further: the parallel
//! dispatcher parses a whole chunk of pcap records into one reusable buffer
//! instead of making one call per frame.
//!
//! Telemetry matches [`crate::PacketView::parse`] exactly: accepted frames
//! count into `dnh_net_parses_total`, rejects split by fault family into
//! the truncated / checksum / malformed counters.

use std::net::{IpAddr, Ipv4Addr};

use crate::error::NetError;
use crate::packet::{PacketView, TransportHeader};
use crate::pcap::PcapRecord;
use crate::proto::IpProtocol;
use crate::tcp::TcpFlags;

/// Why a frame was rejected, reduced to the fault family the sniffer's
/// stats track. Unlike [`NetError`] this carries no detail strings, so the
/// reject path of the hot parser allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Frame cut short of a header or a length field's claim (snaplen).
    Truncated,
    /// A header checksum failed (on-the-wire corruption).
    Checksum,
    /// Anything else: unsupported layer, inconsistent length fields.
    Malformed,
}

impl FrameFault {
    /// Classify a [`NetError`] into its fault family — the same mapping the
    /// sniffer's `note_parse_error` and `PacketView::parse`'s telemetry use.
    pub fn of(err: &NetError) -> Self {
        match err {
            NetError::Truncated { .. } => FrameFault::Truncated,
            NetError::BadChecksum { .. } => FrameFault::Checksum,
            _ => FrameFault::Malformed,
        }
    }
}

/// One reconstructable transport segment, flat: exactly the fields flow
/// reconstruction and DNS demultiplexing consume, payload borrowed from the
/// frame. No header structs, no version enums, no owned bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatSeg<'a> {
    pub src: IpAddr,
    pub dst: IpAddr,
    pub src_port: u16,
    pub dst_port: u16,
    /// [`IpProtocol::Tcp`] or [`IpProtocol::Udp`] — nothing else becomes a
    /// `FlatSeg` (see [`FlatParse::Opaque`]).
    pub proto: IpProtocol,
    /// `None` for UDP.
    pub tcp_flags: Option<TcpFlags>,
    /// TCP sequence number; 0 for UDP.
    pub tcp_seq: u32,
    /// Transport payload, borrowed from the frame.
    pub payload: &'a [u8],
    /// Full frame length on the wire (flow byte accounting).
    pub wire_bytes: usize,
}

/// Outcome of [`parse_flat`] on an accepted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatParse<'a> {
    /// A TCP or UDP segment the sniffer reconstructs.
    Seg(FlatSeg<'a>),
    /// Valid IP frame over a transport the sniffer does not reconstruct
    /// (ICMP, GRE, …) — counted as parsed, then skipped.
    Opaque,
}

/// Parse one raw Ethernet frame into a [`FlatSeg`] without allocating.
///
/// Accept/reject behaviour (and telemetry counts) are identical to
/// [`PacketView::parse`]; only the representation differs. The fast path
/// handles untagged Ethernet II + IPv4 + TCP/UDP; VLAN-tagged, IPv6 and
/// exotic frames take the generic fallback.
// lint_root(ingest): first touch of attacker-controlled wire bytes (flat header walk)
pub fn parse_flat(frame: &[u8]) -> Result<FlatParse<'_>, FrameFault> {
    let parsed = flat_fast(frame).unwrap_or_else(|| flat_generic(frame));
    match parsed {
        Ok(_) => dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::NetParses),
        Err(FrameFault::Truncated) => {
            dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::NetFramesTruncated)
        }
        Err(FrameFault::Checksum) => {
            dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::NetChecksumErrors)
        }
        Err(FrameFault::Malformed) => {
            dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::NetFramesMalformed)
        }
    }
    parsed
}

/// Generic fallback: run the [`PacketView`] walk and flatten its result.
fn flat_generic(frame: &[u8]) -> Result<FlatParse<'_>, FrameFault> {
    let view = PacketView::parse_uncounted(frame).map_err(|e| FrameFault::of(&e))?;
    Ok(match &view.transport {
        TransportHeader::Tcp(h) => FlatParse::Seg(FlatSeg {
            src: view.src_ip(),
            dst: view.dst_ip(),
            src_port: h.src_port,
            dst_port: h.dst_port,
            proto: view.ip.protocol(),
            tcp_flags: Some(h.flags),
            tcp_seq: h.seq,
            payload: view.payload,
            wire_bytes: frame.len(),
        }),
        TransportHeader::Udp(h) => FlatParse::Seg(FlatSeg {
            src: view.src_ip(),
            dst: view.dst_ip(),
            src_port: h.src_port,
            dst_port: h.dst_port,
            proto: view.ip.protocol(),
            tcp_flags: None,
            tcp_seq: 0,
            payload: view.payload,
            wire_bytes: frame.len(),
        }),
        TransportHeader::Opaque(_) => FlatParse::Opaque,
    })
}

/// Specialised walk for the dominant frame shape: untagged Ethernet II
/// carrying IPv4. Returns `None` when the frame is not that shape (the
/// caller then takes the generic path — including for all error handling of
/// non-IPv4 frames, so the two parsers cannot disagree there).
///
/// Every validation below replicates one the layer parsers perform, in the
/// same order, with the same fault class: Ethernet length guard, IPv4
/// version/IHL/total-length/checksum, the non-first-fragment reject, TCP
/// data-offset and option-structure checks, UDP length checks.
// allow_lint(L1): every fixed offset is guarded by the length checks above it (14-byte Ethernet gate, MIN_IPV4/ihl/total_len guards, tcp data_offset and udp length guards)
fn flat_fast(frame: &[u8]) -> Option<Result<FlatParse<'_>, FrameFault>> {
    const ETH: usize = 14;
    const MIN_IPV4: usize = 20;
    // Fast-path gate: enough bytes to read an EtherType, and it is IPv4.
    if frame.len() < ETH || frame[12] != 0x08 || frame[13] != 0x00 {
        return None;
    }
    let rest = &frame[ETH..];
    if rest.len() < MIN_IPV4 {
        return Some(Err(FrameFault::Truncated));
    }
    if rest[0] >> 4 != 4 {
        return Some(Err(FrameFault::Malformed));
    }
    let ihl = usize::from(rest[0] & 0x0f) * 4;
    if ihl < MIN_IPV4 {
        return Some(Err(FrameFault::Malformed));
    }
    if rest.len() < ihl {
        return Some(Err(FrameFault::Truncated));
    }
    let total_len = usize::from(u16::from_be_bytes([rest[2], rest[3]]));
    if total_len < ihl {
        return Some(Err(FrameFault::Malformed));
    }
    if rest.len() < total_len {
        return Some(Err(FrameFault::Truncated));
    }
    if crate::checksum::internet_checksum(&rest[..ihl]) != 0 {
        return Some(Err(FrameFault::Checksum));
    }
    let flags_frag = u16::from_be_bytes([rest[6], rest[7]]);
    // Non-first fragments are not reconstructed (same reject as the
    // generic walk; a first fragment with MF set passes, as there).
    if flags_frag & 0x1fff != 0 {
        return Some(Err(FrameFault::Malformed));
    }
    let src = IpAddr::V4(Ipv4Addr::new(rest[12], rest[13], rest[14], rest[15]));
    let dst = IpAddr::V4(Ipv4Addr::new(rest[16], rest[17], rest[18], rest[19]));
    let segment = &rest[ihl..total_len];
    match rest[9] {
        // TCP: validate header + option structure exactly as
        // `TcpHeader::parse`, materialising nothing.
        6 => {
            const MIN_TCP: usize = 20;
            if segment.len() < MIN_TCP {
                return Some(Err(FrameFault::Truncated));
            }
            let data_offset = usize::from(segment[12] >> 4) * 4;
            if data_offset < MIN_TCP {
                return Some(Err(FrameFault::Malformed));
            }
            if segment.len() < data_offset {
                return Some(Err(FrameFault::Truncated));
            }
            let mut i = MIN_TCP;
            while i < data_offset {
                match segment[i] {
                    0 => break, // EOL
                    1 => i += 1,
                    _kind => {
                        if i + 1 >= data_offset {
                            return Some(Err(FrameFault::Malformed));
                        }
                        let len = usize::from(segment[i + 1]);
                        if len < 2 || i + len > data_offset {
                            return Some(Err(FrameFault::Malformed));
                        }
                        i += len;
                    }
                }
            }
            Some(Ok(FlatParse::Seg(FlatSeg {
                src,
                dst,
                src_port: u16::from_be_bytes([segment[0], segment[1]]),
                dst_port: u16::from_be_bytes([segment[2], segment[3]]),
                proto: IpProtocol::Tcp,
                tcp_flags: Some(TcpFlags(segment[13] & 0x3f)),
                tcp_seq: u32::from_be_bytes([segment[4], segment[5], segment[6], segment[7]]),
                payload: &segment[data_offset..],
                wire_bytes: frame.len(),
            })))
        }
        // UDP: same length-field checks as `UdpHeader::parse`.
        17 => {
            const UDP_HDR: usize = 8;
            if segment.len() < UDP_HDR {
                return Some(Err(FrameFault::Truncated));
            }
            let length = usize::from(u16::from_be_bytes([segment[4], segment[5]]));
            if length < UDP_HDR {
                return Some(Err(FrameFault::Malformed));
            }
            if segment.len() < length {
                return Some(Err(FrameFault::Truncated));
            }
            Some(Ok(FlatParse::Seg(FlatSeg {
                src,
                dst,
                src_port: u16::from_be_bytes([segment[0], segment[1]]),
                dst_port: u16::from_be_bytes([segment[2], segment[3]]),
                proto: IpProtocol::Udp,
                tcp_flags: None,
                tcp_seq: 0,
                payload: &segment[UDP_HDR..length],
                wire_bytes: frame.len(),
            })))
        }
        _ => Some(Ok(FlatParse::Opaque)),
    }
}

/// Frames per [`SegBatch`] chunk — callers feed
/// `records.chunks(SEG_BATCH_FRAMES)` so every sized buffer in the batch
/// path is clamped by this constant (lint L8).
pub const SEG_BATCH_FRAMES: usize = 256;

/// One parsed record in a [`SegBatch`].
#[derive(Debug, Clone, Copy)]
pub struct FlatFrame<'a> {
    /// Capture timestamp (µs).
    pub ts: u64,
    /// On-the-wire frame length, kept so a parse fault's flight-recorder
    /// event carries the same byte count in every driver.
    pub wire_len: u32,
    pub parse: Result<FlatParse<'a>, FrameFault>,
}

/// A reusable buffer of flat-parsed frames: the dispatcher's unit of work.
///
/// One `SegBatch` lives as long as the records slice it borrows from; the
/// parallel dispatcher allocates one per slice and re-fills it per chunk,
/// so steady-state batched parsing allocates nothing.
#[derive(Debug, Default)]
pub struct SegBatch<'a> {
    /// Parsed frames, in record order.
    pub frames: Vec<FlatFrame<'a>>,
}

impl<'a> SegBatch<'a> {
    /// A batch with capacity for one full chunk.
    pub fn new() -> Self {
        SegBatch {
            frames: Vec::with_capacity(SEG_BATCH_FRAMES),
        }
    }

    /// Flat-parse a chunk of pcap records into this buffer (replacing its
    /// previous contents). Telemetry counts once per record, exactly as
    /// one-at-a-time [`parse_flat`] calls would.
    // lint_root(ingest): batched entry over raw captured records
    pub fn parse_records(&mut self, records: &'a [PcapRecord]) {
        self.frames.clear();
        for rec in records {
            self.frames.push(FlatFrame {
                ts: rec.timestamp_micros(),
                wire_len: rec.frame.len() as u32,
                parse: parse_flat(&rec.frame),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{build_tcp_v4, build_udp_v4, insert_vlan_tag};
    use crate::MacAddr;
    use std::net::Ipv4Addr;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::from_id(1), MacAddr::from_id(2))
    }

    fn flat_of(frame: &[u8]) -> FlatSeg<'_> {
        match parse_flat(frame) {
            Ok(FlatParse::Seg(s)) => s,
            other => panic!("expected a segment, got {other:?}"),
        }
    }

    #[test]
    fn tcp_fast_path_matches_view() {
        let (sm, dm) = macs();
        let frame = build_tcp_v4(
            sm,
            dm,
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(198, 51, 100, 7),
            51515,
            443,
            42,
            7,
            TcpFlags::SYN | TcpFlags::ACK,
            b"hello",
        )
        .unwrap();
        let seg = flat_of(&frame);
        let view = PacketView::parse(&frame).unwrap();
        assert_eq!(seg.src, view.src_ip());
        assert_eq!(seg.dst, view.dst_ip());
        assert_eq!(seg.src_port, 51515);
        assert_eq!(seg.dst_port, 443);
        assert_eq!(seg.proto, IpProtocol::Tcp);
        assert_eq!(seg.tcp_seq, 42);
        assert!(seg.tcp_flags.unwrap().syn());
        assert_eq!(seg.payload, view.payload);
        assert_eq!(seg.wire_bytes, frame.len());
    }

    #[test]
    fn udp_fast_path_matches_view() {
        let (sm, dm) = macs();
        let frame = build_udp_v4(
            sm,
            dm,
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(198, 51, 100, 7),
            40001,
            53,
            b"dns query bytes",
        )
        .unwrap();
        let seg = flat_of(&frame);
        assert_eq!(seg.proto, IpProtocol::Udp);
        assert_eq!(seg.tcp_flags, None);
        assert_eq!(seg.payload, b"dns query bytes");
    }

    #[test]
    fn vlan_and_v6_take_the_generic_path_and_agree() {
        let (sm, dm) = macs();
        let plain = build_udp_v4(
            sm,
            dm,
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(198, 51, 100, 7),
            40001,
            53,
            b"tagged dns",
        )
        .unwrap();
        let tagged = insert_vlan_tag(&plain, 113);
        let seg = flat_of(&tagged);
        assert_eq!(seg.payload, b"tagged dns");
        assert_eq!(seg.dst_port, 53);
        let v6 = crate::packet::build_udp_v6(
            sm,
            dm,
            "2001:db8::10".parse().unwrap(),
            "2001:db8::53".parse().unwrap(),
            55555,
            53,
            b"v6 dns",
        )
        .unwrap();
        let seg6 = flat_of(&v6);
        assert_eq!(seg6.payload, b"v6 dns");
        assert!(matches!(seg6.src, IpAddr::V6(_)));
    }

    #[test]
    fn rejects_mirror_view_fault_classes() {
        let (sm, dm) = macs();
        let frame = build_tcp_v4(
            sm,
            dm,
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(198, 51, 100, 7),
            51515,
            443,
            42,
            0,
            TcpFlags::SYN,
            b"payload",
        )
        .unwrap();
        // Truncations at every depth, a corrupted IPv4 checksum, and runt
        // garbage must classify identically to the generic parser.
        let mut corrupt = frame.clone();
        corrupt[14 + 12] ^= 0xff; // IPv4 src byte → header checksum breaks
        let cases: Vec<Vec<u8>> = vec![
            frame[..10].to_vec(),
            frame[..16].to_vec(),
            frame[..40].to_vec(),
            corrupt,
            vec![0u8; 7],
        ];
        for case in cases {
            let flat = parse_flat(&case);
            let view = PacketView::parse(&case);
            match (flat, view) {
                (Err(fault), Err(e)) => assert_eq!(fault, FrameFault::of(&e), "case {case:?}"),
                (f, v) => panic!("accept/reject disagreement: {f:?} vs {v:?}"),
            }
        }
    }

    #[test]
    fn opaque_protocols_flatten_to_opaque() {
        use crate::ethernet::{EtherType, EthernetHeader};
        use crate::ipv4::Ipv4Header;
        let mut frame = Vec::new();
        EthernetHeader {
            dst: MacAddr::from_id(1),
            src: MacAddr::from_id(2),
            ethertype: EtherType::Ipv4,
        }
        .write(&mut frame);
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Icmp,
        )
        .write(&mut frame, 8)
        .unwrap();
        frame.extend_from_slice(&[8, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(parse_flat(&frame), Ok(FlatParse::Opaque));
    }

    #[test]
    fn batch_parses_records_in_order() {
        let (sm, dm) = macs();
        let mk = |sport: u16| {
            build_udp_v4(
                sm,
                dm,
                Ipv4Addr::new(10, 0, 0, 9),
                Ipv4Addr::new(198, 51, 100, 7),
                sport,
                443,
                b"x",
            )
            .unwrap()
        };
        let records: Vec<PcapRecord> = (0..5)
            .map(|i| PcapRecord {
                ts_sec: 1,
                ts_usec: i,
                frame: mk(40000 + i as u16),
            })
            .collect();
        let mut batch = SegBatch::new();
        batch.parse_records(&records);
        assert_eq!(batch.frames.len(), 5);
        for (i, f) in batch.frames.iter().enumerate() {
            assert_eq!(f.ts, 1_000_000 + i as u64);
            match f.parse {
                Ok(FlatParse::Seg(s)) => assert_eq!(s.src_port, 40000 + i as u16),
                ref other => panic!("unexpected {other:?}"),
            }
        }
        // Refill replaces, never appends.
        batch.parse_records(&records[..2]);
        assert_eq!(batch.frames.len(), 2);
    }
}
