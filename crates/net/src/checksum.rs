//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header variants.

use std::net::{Ipv4Addr, Ipv6Addr};

/// Incremental ones-complement sum accumulator.
///
/// Fold 16-bit big-endian words into a 32-bit accumulator; [`Checksum::finish`]
/// folds the carries and complements the result.
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Checksum { sum: 0 }
    }

    /// Add a byte slice. An odd trailing byte is padded with a zero octet, as
    /// required by RFC 1071.
    // allow_lint(L1): chunks_exact(2) guarantees every chunk holds exactly 2 bytes
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Add a single big-endian 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Add a 32-bit value as two 16-bit words.
    pub fn add_u32(&mut self, word: u32) {
        self.add_u16((word >> 16) as u16);
        self.add_u16((word & 0xffff) as u16);
    }

    /// Fold carries and return the ones-complement of the sum.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum over a byte slice (e.g. an IPv4 header with its checksum
/// field zeroed).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Checksum for UDP/TCP over IPv4: pseudo-header (src, dst, zero, protocol,
/// length) plus the transport header and payload.
pub fn pseudo_header_checksum_v4(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    segment: &[u8],
) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u16(u16::from(protocol));
    c.add_u16(segment.len() as u16);
    c.add_bytes(segment);
    c.finish()
}

/// Checksum for UDP/TCP over IPv6 (RFC 8200 §8.1).
pub fn pseudo_header_checksum_v6(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    protocol: u8,
    segment: &[u8],
) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(&src.octets());
    c.add_bytes(&dst.octets());
    c.add_u32(segment.len() as u32);
    c.add_u32(u32::from(protocol));
    c.add_bytes(segment);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Worked example from RFC 1071 §3: the data {00 01, f2 03, f4 f5, f6 f7}
    // sums to ddf2 before complement.
    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add_bytes(&data);
        assert_eq!(c.finish(), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [ab] is treated as the word ab00.
        let mut odd = Checksum::new();
        odd.add_bytes(&[0xab]);
        let mut even = Checksum::new();
        even.add_bytes(&[0xab, 0x00]);
        assert_eq!(odd.finish(), even.finish());
    }

    #[test]
    fn checksum_of_zeroes_is_ffff() {
        assert_eq!(internet_checksum(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn verifying_a_packet_with_its_checksum_yields_zero() {
        // Build a pretend header, compute the checksum, insert it, re-sum: 0.
        let mut header = vec![0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        header.extend_from_slice(&[0x00, 0x00]); // checksum slot
        header.extend_from_slice(&[10, 0, 0, 1, 192, 168, 0, 1]);
        let ck = internet_checksum(&header);
        header[10..12].copy_from_slice(&ck.to_be_bytes());
        // Re-checksumming a correct packet gives zero.
        assert_eq!(internet_checksum(&header), 0);
    }

    #[test]
    fn pseudo_header_v4_detects_corruption() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 10);
        let mut seg = vec![0u8; 16];
        seg[0..2].copy_from_slice(&4321u16.to_be_bytes());
        seg[2..4].copy_from_slice(&53u16.to_be_bytes());
        let ck = pseudo_header_checksum_v4(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        // Valid: sums to zero.
        assert_eq!(pseudo_header_checksum_v4(src, dst, 17, &seg), 0);
        // Flip a payload byte: no longer zero.
        seg[12] ^= 0xff;
        assert_ne!(pseudo_header_checksum_v4(src, dst, 17, &seg), 0);
    }

    #[test]
    fn pseudo_header_v6_roundtrip() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let mut seg = vec![0u8; 12];
        let ck = pseudo_header_checksum_v6(src, dst, 6, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes()); // not the real TCP slot; sum property holds anyway
        assert_eq!(pseudo_header_checksum_v6(src, dst, 6, &seg), 0);
    }

    #[test]
    fn add_u32_equals_two_u16() {
        let mut a = Checksum::new();
        a.add_u32(0xdead_beef);
        let mut b = Checksum::new();
        b.add_u16(0xdead);
        b.add_u16(0xbeef);
        assert_eq!(a.finish(), b.finish());
    }
}
