//! Pluggable frame ingest: the [`FrameSource`] abstraction the daemon
//! event loop polls instead of iterating a pcap file directly.
//!
//! Two packet backends live here:
//!
//! * [`PcapFileSource`] — the existing batch path: a seekable capture
//!   file, which is always either `Ready` or `Eof`.
//! * [`PcapStreamSource`] — a pcap byte stream arriving incrementally
//!   over a pipe/FIFO/socket. Reads are partial and records can straddle
//!   read boundaries, so the source buffers bytes and reports `Pending`
//!   until a whole record is available. This is what makes daemon mode
//!   testable offline: `mkfifo` + `cat trace.pcap > fifo` replays a
//!   capture with real pipe semantics, and tests drive it with a
//!   deliberately dribbling reader.
//!
//! The third backend (flow records rather than frames) lives in the
//! daemon crate-side correlator; its codec is [`crate::flowrec`].

use std::io::Read;

use crate::error::{NetError, Result};
use crate::pcap::{PcapReader, PcapRecord, LINKTYPE_ETHERNET, MAGIC, SNAPLEN};

/// One poll of a frame source.
#[derive(Debug)]
pub enum SourcePoll {
    /// A complete record is available.
    Ready(PcapRecord),
    /// No complete record yet, but the stream is still open — poll again.
    Pending,
    /// The stream ended cleanly on a record boundary.
    Eof,
}

/// A pollable supplier of captured frames. Unlike an `Iterator`, a source
/// can be `Pending`: mid-record on a live pipe with the writer still
/// attached. The daemon loop turns `Pending` into bounded waiting, which
/// is where backpressure lives.
pub trait FrameSource {
    /// Try to produce the next record without blocking longer than one
    /// underlying read.
    fn poll_next(&mut self) -> Result<SourcePoll>;
}

/// The batch backend: a capture file (or any blocking reader holding a
/// complete stream). Never `Pending` — a file either has the next record
/// or has ended.
pub struct PcapFileSource<R: Read> {
    reader: PcapReader<R>,
}

impl<R: Read> PcapFileSource<R> {
    /// Validate the global header and wrap the reader.
    pub fn new(inner: R) -> Result<Self> {
        Ok(PcapFileSource {
            reader: PcapReader::new(inner)?,
        })
    }
}

impl<R: Read> FrameSource for PcapFileSource<R> {
    fn poll_next(&mut self) -> Result<SourcePoll> {
        match self.reader.next_record()? {
            Some(rec) => Ok(SourcePoll::Ready(rec)),
            None => Ok(SourcePoll::Eof),
        }
    }
}

/// How much to ask the underlying reader for per poll. One pipe buffer's
/// worth: large enough to amortize syscalls, small enough to bound the
/// per-poll latency contribution.
const STREAM_READ_CHUNK: usize = 64 * 1024;
/// Compact the internal buffer once this much dead prefix accumulates.
const STREAM_COMPACT_AT: usize = 256 * 1024;

/// The live backend: an incrementally-arriving pcap byte stream.
///
/// Each `poll_next` does **at most one** `read()` on the inner reader, so
/// a slow writer can never wedge the event loop for more than one
/// blocking read; everything else is buffer surgery. A zero-byte read is
/// end-of-stream (the FIFO writer closed); ending inside a record is an
/// error, exactly like a truncated capture file.
pub struct PcapStreamSource<R: Read> {
    inner: R,
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    start: usize,
    /// Byte-order flag from the global header, once parsed.
    swapped: Option<bool>,
    eof: bool,
}

impl<R: Read> PcapStreamSource<R> {
    /// Wrap a reader. The global header is parsed lazily from the stream,
    /// so construction never blocks.
    pub fn new(inner: R) -> Self {
        PcapStreamSource {
            inner,
            buf: Vec::with_capacity(STREAM_READ_CHUNK),
            start: 0,
            swapped: None,
            eof: false,
        }
    }

    fn pending_len(&self) -> usize {
        self.buf.len() - self.start
    }

    // allow_lint(L1): every caller checks `pending_len()` covers `at + 4`
    // first (the 24-byte global-header and 16-byte record-header gates)
    fn read_u32(&self, at: usize, swapped: bool) -> u32 {
        let b = [
            self.buf[self.start + at],
            self.buf[self.start + at + 1],
            self.buf[self.start + at + 2],
            self.buf[self.start + at + 3],
        ];
        if swapped {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }

    /// Parse the 24-byte global header if it's fully buffered.
    fn try_parse_header(&mut self) -> Result<bool> {
        if self.pending_len() < 24 {
            return Ok(false);
        }
        let magic = self.read_u32(0, false);
        let swapped = match magic {
            MAGIC => false,
            m if m == MAGIC.swap_bytes() => true,
            other => {
                return Err(NetError::BadPcap(format!(
                "bad magic {other:#010x} on stream (nanosecond pcap and pcapng are not supported)"
            )))
            }
        };
        let linktype = self.read_u32(20, swapped);
        if linktype != LINKTYPE_ETHERNET {
            return Err(NetError::BadPcap(format!(
                "unsupported linktype {linktype} on stream (only Ethernet)"
            )));
        }
        self.start += 24;
        self.swapped = Some(swapped);
        Ok(true)
    }

    /// Parse one record if it's fully buffered.
    // allow_lint(L1): offsets are guarded by the pending_len() checks
    fn try_parse_record(&mut self, swapped: bool) -> Result<Option<PcapRecord>> {
        if self.pending_len() < 16 {
            return Ok(None);
        }
        let incl_len = self.read_u32(8, swapped) as usize;
        if incl_len > SNAPLEN as usize {
            return Err(NetError::BadPcap(format!(
                "stream record claims {incl_len} bytes, above snaplen"
            )));
        }
        if self.pending_len() < 16 + incl_len {
            return Ok(None);
        }
        let ts_sec = self.read_u32(0, swapped);
        let ts_usec = self.read_u32(4, swapped);
        let body_start = self.start + 16;
        let frame = self.buf[body_start..body_start + incl_len].to_vec();
        self.start += 16 + incl_len;
        if self.start >= STREAM_COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(PcapRecord {
            ts_sec,
            ts_usec,
            frame,
        }))
    }

    /// A complete record from the buffer, if one is there.
    fn drain_buffered(&mut self) -> Result<Option<PcapRecord>> {
        if self.swapped.is_none() && !self.try_parse_header()? {
            return Ok(None);
        }
        // swapped is Some after a successful header parse.
        let Some(swapped) = self.swapped else {
            return Ok(None);
        };
        self.try_parse_record(swapped)
    }

    /// One read into the buffer; returns false at end-of-stream.
    fn fill(&mut self) -> Result<bool> {
        let old_len = self.buf.len();
        self.buf.resize(old_len + STREAM_READ_CHUNK, 0);
        loop {
            // allow_lint(L1): `old_len` was `buf.len()` before the resize above
            match self.inner.read(&mut self.buf[old_len..]) {
                Ok(0) => {
                    self.buf.truncate(old_len);
                    return Ok(false);
                }
                Ok(n) => {
                    self.buf.truncate(old_len + n);
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Non-blocking fd with nothing buffered: genuinely
                    // pending, not end-of-stream.
                    self.buf.truncate(old_len);
                    return Ok(true);
                }
                Err(e) => {
                    self.buf.truncate(old_len);
                    return Err(NetError::Io(e.to_string()));
                }
            }
        }
    }
}

impl<R: Read> FrameSource for PcapStreamSource<R> {
    fn poll_next(&mut self) -> Result<SourcePoll> {
        if let Some(rec) = self.drain_buffered()? {
            return Ok(SourcePoll::Ready(rec));
        }
        if !self.eof {
            self.eof = !self.fill()?;
            if let Some(rec) = self.drain_buffered()? {
                return Ok(SourcePoll::Ready(rec));
            }
        }
        if self.eof {
            if self.pending_len() > 0 || self.swapped.is_none() {
                return Err(NetError::BadPcap(
                    "stream ended mid-record (writer closed early)".into(),
                ));
            }
            return Ok(SourcePoll::Eof);
        }
        Ok(SourcePoll::Pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use std::io::Cursor;

    fn sample_capture() -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..5u64 {
            w.write_record(&PcapRecord::from_micros(
                1_000_000 + i * 37,
                vec![i as u8; (i as usize) * 11 + 1],
            ))
            .unwrap();
        }
        w.into_inner().unwrap()
    }

    /// A reader that hands out at most `chunk` bytes per read — the
    /// hostile-pipe simulator.
    struct Dribble {
        bytes: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(out.len()).min(self.bytes.len() - self.pos);
            out[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn drain<S: FrameSource>(mut src: S) -> Result<Vec<PcapRecord>> {
        let mut out = Vec::new();
        loop {
            match src.poll_next()? {
                SourcePoll::Ready(rec) => out.push(rec),
                SourcePoll::Pending => {}
                SourcePoll::Eof => return Ok(out),
            }
        }
    }

    #[test]
    fn file_source_reads_everything() {
        let bytes = sample_capture();
        let src = PcapFileSource::new(Cursor::new(bytes.clone())).unwrap();
        let via_source = drain(src).unwrap();
        let direct: Vec<PcapRecord> = PcapReader::new(Cursor::new(bytes))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(via_source, direct);
    }

    #[test]
    fn stream_source_matches_file_source_at_every_dribble_size() {
        let bytes = sample_capture();
        let expect: Vec<PcapRecord> = PcapReader::new(Cursor::new(bytes.clone()))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        for chunk in [1usize, 2, 3, 7, 16, 64, 1024] {
            let src = PcapStreamSource::new(Dribble {
                bytes: bytes.clone(),
                pos: 0,
                chunk,
            });
            assert_eq!(drain(src).unwrap(), expect, "chunk={chunk}");
        }
    }

    #[test]
    fn stream_source_reports_pending_midrecord() {
        let bytes = sample_capture();
        // 30 bytes: past the 24-byte header, inside the first record.
        let mut src = PcapStreamSource::new(Cursor::new(bytes[..30].to_vec()));
        // Cursor returns EOF at the cut, which mid-record is an error; a
        // *still-open* dribble reports Pending instead. Model the open
        // pipe with a reader that yields the prefix then blocks forever
        // via WouldBlock.
        struct Stuck {
            bytes: Vec<u8>,
            pos: usize,
        }
        impl Read for Stuck {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.pos < self.bytes.len() {
                    let n = out.len().min(self.bytes.len() - self.pos);
                    out[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
                    self.pos += n;
                    Ok(n)
                } else {
                    Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "dry"))
                }
            }
        }
        let mut open = PcapStreamSource::new(Stuck {
            bytes: bytes[..30].to_vec(),
            pos: 0,
        });
        assert!(matches!(open.poll_next().unwrap(), SourcePoll::Pending));
        assert!(matches!(open.poll_next().unwrap(), SourcePoll::Pending));
        // The closed variant errors out (writer hung up mid-record): first
        // poll buffers the partial record, the next poll sees EOF.
        assert!(matches!(src.poll_next().unwrap(), SourcePoll::Pending));
        assert!(src.poll_next().is_err());
    }

    #[test]
    fn stream_source_rejects_bad_magic_and_linktype() {
        let mut src = PcapStreamSource::new(Cursor::new(vec![0u8; 24]));
        assert!(src.poll_next().is_err());

        let mut bytes = sample_capture();
        bytes[20] = 101; // LINKTYPE_RAW
        let mut src = PcapStreamSource::new(Cursor::new(bytes));
        assert!(src.poll_next().is_err());
    }

    #[test]
    fn empty_stream_is_an_error_not_eof() {
        // Zero bytes isn't a capture: no header ever arrived.
        let mut src = PcapStreamSource::new(Cursor::new(Vec::new()));
        assert!(src.poll_next().is_err());
    }
}
