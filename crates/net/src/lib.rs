//! # dnhunter-net
//!
//! Wire-format encoders and decoders used by the DN-Hunter reproduction.
//!
//! This crate implements, from scratch, the subset of the TCP/IP stack that a
//! passive sniffer placed at an ISP Point-of-Presence needs to understand:
//!
//! * Ethernet II framing ([`ethernet`])
//! * IPv4 and IPv6 headers with checksum generation/validation ([`ipv4`],
//!   [`ipv6`])
//! * UDP and TCP transport headers, including the pseudo-header checksum and
//!   TCP options ([`udp`], [`tcp`])
//! * A composite [`packet::Packet`] parser that walks a raw frame down to the
//!   transport payload in one call, plus builder helpers used by the traffic
//!   simulator to synthesize valid frames
//! * A classic libpcap container reader/writer ([`pcap`]) so synthetic traces
//!   can be stored on disk and re-read exactly like a real capture
//!
//! Everything is pure safe Rust with no system dependencies; the goal is that
//! the byte streams produced by `dnhunter-simnet` and consumed by the
//! `dnhunter` sniffer are indistinguishable, at this layer, from frames read
//! off a real wire.

#![forbid(unsafe_code)]

pub mod checksum;
pub mod error;
pub mod ethernet;
pub mod flowrec;
pub mod ipv4;
pub mod ipv6;
pub mod mac;
pub mod packet;
pub mod pcap;
pub mod proto;
pub mod seg;
pub mod source;
pub mod tcp;
pub mod udp;

pub use error::{NetError, Result};
pub use ethernet::{EtherType, EthernetHeader};
pub use flowrec::{
    DnsExportRecord, ExportRecord, FlowExportRecord, FlowRecError, FlowRecReader, FlowRecWriter,
};
pub use ipv4::Ipv4Header;
pub use ipv6::Ipv6Header;
pub use mac::MacAddr;
pub use packet::{
    build_tcp_v4, build_tcp_v6, build_udp_v4, build_udp_v6, insert_vlan_tag, IpHeader, Packet,
    PacketView, TransportHeader,
};
pub use pcap::{PcapReader, PcapRecord, PcapWriter};
pub use proto::IpProtocol;
pub use seg::{parse_flat, FlatFrame, FlatParse, FlatSeg, FrameFault, SegBatch, SEG_BATCH_FRAMES};
pub use source::{FrameSource, PcapFileSource, PcapStreamSource, SourcePoll};
pub use tcp::{TcpFlags, TcpHeader};
pub use udp::UdpHeader;
