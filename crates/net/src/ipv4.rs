//! IPv4 header codec (RFC 791).

use std::net::Ipv4Addr;

use crate::checksum::internet_checksum;
use crate::error::{need, NetError, Result};
use crate::proto::IpProtocol;

/// Minimum IPv4 header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// A decoded IPv4 header. Options are preserved as raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    pub dscp_ecn: u8,
    /// Total length of header + payload as claimed on the wire.
    pub total_len: u16,
    pub identification: u16,
    pub dont_fragment: bool,
    pub more_fragments: bool,
    pub fragment_offset: u16,
    pub ttl: u8,
    pub protocol: IpProtocol,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    /// Raw option bytes (already padded to a 4-byte multiple).
    pub options: Vec<u8>,
}

impl Ipv4Header {
    /// A conventional header for synthetic traffic.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: 0, // filled in by `write`
            identification: 0,
            dont_fragment: true,
            more_fragments: false,
            fragment_offset: 0,
            ttl: 64,
            protocol,
            src,
            dst,
            options: Vec::new(),
        }
    }

    /// Header length in bytes including options.
    pub fn header_len(&self) -> usize {
        MIN_HEADER_LEN + self.options.len()
    }

    /// True if this packet is a fragment (either offset non-zero or MF set).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.fragment_offset != 0
    }

    /// Decode from `buf`, validating version, IHL, total length and checksum.
    /// Returns the header and the offset where the payload begins.
    // allow_lint(L1): fixed offsets sit below MIN_HEADER_LEN (the `need` guard); ihl-relative slices follow the `ihl <= buf.len()` check
    pub fn parse(buf: &[u8]) -> Result<(Ipv4Header, usize)> {
        need("ipv4", buf, MIN_HEADER_LEN)?;
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(NetError::Unsupported {
                layer: "ipv4",
                detail: format!("version {version}"),
            });
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl < MIN_HEADER_LEN {
            return Err(NetError::BadLength {
                layer: "ipv4",
                detail: format!("IHL {ihl} < 20"),
            });
        }
        need("ipv4", buf, ihl)?;
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if usize::from(total_len) < ihl {
            return Err(NetError::BadLength {
                layer: "ipv4",
                detail: format!("total length {total_len} < header length {ihl}"),
            });
        }
        if buf.len() < usize::from(total_len) {
            return Err(NetError::Truncated {
                layer: "ipv4",
                needed: usize::from(total_len),
                available: buf.len(),
            });
        }
        let sum = internet_checksum(&buf[..ihl]);
        if sum != 0 {
            let found = u16::from_be_bytes([buf[10], buf[11]]);
            return Err(NetError::BadChecksum {
                layer: "ipv4",
                expected: 0,
                found,
            });
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        Ok((
            Ipv4Header {
                dscp_ecn: buf[1],
                total_len,
                identification: u16::from_be_bytes([buf[4], buf[5]]),
                dont_fragment: flags_frag & 0x4000 != 0,
                more_fragments: flags_frag & 0x2000 != 0,
                fragment_offset: flags_frag & 0x1fff,
                ttl: buf[8],
                protocol: IpProtocol::from(buf[9]),
                src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
                dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
                options: buf[MIN_HEADER_LEN..ihl].to_vec(),
            },
            ihl,
        ))
    }

    /// Encode this header followed by `payload_len` bytes of payload (which
    /// the caller appends). Computes total length and checksum.
    // allow_lint(L1): `out` grows from `start` by exactly `header_len` pushes before the checksum is patched in at start+10..start+12
    pub fn write(&self, out: &mut Vec<u8>, payload_len: usize) -> Result<()> {
        if !self.options.len().is_multiple_of(4) || self.options.len() > 40 {
            return Err(NetError::BadLength {
                layer: "ipv4",
                detail: format!("options length {} invalid", self.options.len()),
            });
        }
        let header_len = self.header_len();
        let total = header_len + payload_len;
        if total > usize::from(u16::MAX) {
            return Err(NetError::BadLength {
                layer: "ipv4",
                detail: format!("total length {total} exceeds 65535"),
            });
        }
        let start = out.len();
        let ihl_words = (header_len / 4) as u8;
        out.push(0x40 | ihl_words);
        out.push(self.dscp_ecn);
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let mut flags_frag = self.fragment_offset & 0x1fff;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol.number());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.options);
        let ck = internet_checksum(&out[start..start + header_len]);
        out[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(192, 0, 2, 55),
            IpProtocol::Udp,
        )
    }

    #[test]
    fn roundtrip_no_options() {
        let h = sample();
        let mut buf = Vec::new();
        h.write(&mut buf, 8).unwrap();
        buf.extend_from_slice(&[0xaa; 8]);
        let (parsed, off) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(off, MIN_HEADER_LEN);
        assert_eq!(parsed.src, h.src);
        assert_eq!(parsed.dst, h.dst);
        assert_eq!(parsed.protocol, IpProtocol::Udp);
        assert_eq!(parsed.total_len, 28);
        assert!(parsed.dont_fragment);
        assert!(!parsed.is_fragment());
    }

    #[test]
    fn roundtrip_with_options() {
        let mut h = sample();
        h.options = vec![1, 1, 1, 1]; // four NOPs
        let mut buf = Vec::new();
        h.write(&mut buf, 0).unwrap();
        let (parsed, off) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(off, 24);
        assert_eq!(parsed.options, vec![1, 1, 1, 1]);
    }

    #[test]
    fn bad_checksum_detected() {
        let h = sample();
        let mut buf = Vec::new();
        h.write(&mut buf, 0).unwrap();
        buf[8] = buf[8].wrapping_add(1); // corrupt TTL
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(NetError::BadChecksum { .. })
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let h = sample();
        let mut buf = Vec::new();
        h.write(&mut buf, 0).unwrap();
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(NetError::Unsupported { .. })
        ));
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let h = sample();
        let mut buf = Vec::new();
        h.write(&mut buf, 4).unwrap();
        // claim 4 bytes of payload but provide none
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_unaligned_options_on_write() {
        let mut h = sample();
        h.options = vec![1, 1, 1]; // not a multiple of 4
        let mut buf = Vec::new();
        assert!(h.write(&mut buf, 0).is_err());
    }

    #[test]
    fn fragment_fields_roundtrip() {
        let mut h = sample();
        h.dont_fragment = false;
        h.more_fragments = true;
        h.fragment_offset = 185;
        let mut buf = Vec::new();
        h.write(&mut buf, 0).unwrap();
        let (parsed, _) = Ipv4Header::parse(&buf).unwrap();
        assert!(parsed.more_fragments);
        assert!(!parsed.dont_fragment);
        assert_eq!(parsed.fragment_offset, 185);
        assert!(parsed.is_fragment());
    }
}
