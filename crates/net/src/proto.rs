//! IP protocol numbers (the `protocol` / `next header` field).

use std::fmt;

/// Subset of IANA-assigned IP protocol numbers that DN-Hunter cares about,
/// with a catch-all for everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMPv6 (58).
    Icmpv6,
    /// Anything else, with the raw value preserved.
    Other(u8),
}

impl IpProtocol {
    /// Numeric value as it appears on the wire.
    pub fn number(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Icmpv6 => 58,
            IpProtocol::Other(n) => n,
        }
    }

    /// True for the two transport protocols the flow sniffer reconstructs.
    pub fn is_transport(self) -> bool {
        matches!(self, IpProtocol::Tcp | IpProtocol::Udp)
    }
}

impl From<u8> for IpProtocol {
    fn from(n: u8) -> Self {
        match n {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            58 => IpProtocol::Icmpv6,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        p.number()
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "ICMP"),
            IpProtocol::Tcp => write!(f, "TCP"),
            IpProtocol::Udp => write!(f, "UDP"),
            IpProtocol::Icmpv6 => write!(f, "ICMPv6"),
            IpProtocol::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_known_and_unknown() {
        for n in 0..=255u8 {
            let p = IpProtocol::from(n);
            assert_eq!(p.number(), n);
        }
        assert_eq!(IpProtocol::from(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from(99), IpProtocol::Other(99));
    }

    #[test]
    fn transport_classification() {
        assert!(IpProtocol::Tcp.is_transport());
        assert!(IpProtocol::Udp.is_transport());
        assert!(!IpProtocol::Icmp.is_transport());
        assert!(!IpProtocol::Other(47).is_transport());
    }

    #[test]
    fn display_names() {
        assert_eq!(IpProtocol::Tcp.to_string(), "TCP");
        assert_eq!(IpProtocol::Other(47).to_string(), "proto-47");
    }
}
