//! NetFlow/IPFIX-style flow-record export container (the `DNFR` format).
//!
//! Where full packet capture isn't available — the FlowDNS deployment
//! regime — the tagger consumes two pre-aggregated streams instead of raw
//! frames: DNS answer records (timestamp, client, raw DNS message) and
//! flow export records (5-tuple plus per-direction packet/byte counters).
//! This module defines a versioned, std-only container for both, written
//! by the simulator's flow-export emitter and read by the daemon's
//! flow-record ingest backend.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! stream  := magic "DNFR" | u16 version (=1) | record*
//! record  := u8 type | u32 payload_len | payload
//! type 1  := DNS answer: u64 ts_micros | ip client | u16 len | message
//! type 2  := flow export: u64 first_ts | u64 last_ts
//!            | ip client | u16 client_port | ip server | u16 server_port
//!            | u8 ip_proto | u64 packets_c2s | u64 packets_s2c
//!            | u64 bytes_c2s | u64 bytes_s2c
//! ip      := u8 4 | 4 bytes, or u8 6 | 16 bytes
//! ```
//!
//! The decoder's contract is the same as every other ingest parser in the
//! workspace: *errors, never panics* — truncated, oversized, or corrupt
//! records yield a typed [`FlowRecError`]. The `flowrec` fuzz target and
//! the round-trip proptests in `crates/net/tests/flowrec_properties.rs`
//! enforce that dynamically.

use std::io::{Read, Write};
use std::net::IpAddr;

/// Stream magic: four printable bytes so a misrouted pcap is caught
/// immediately rather than misparsed.
pub const FLOWREC_MAGIC: [u8; 4] = *b"DNFR";
/// Current (and only) stream version.
pub const FLOWREC_VERSION: u16 = 1;
/// Upper bound on a single record's claimed payload length. A DNS record
/// tops out near 64 KiB (u16 message length) and a flow record is fixed
/// size, so anything above this is corruption, not data.
pub const MAX_FLOWREC_PAYLOAD: u32 = 1 << 17;

const TYPE_DNS: u8 = 1;
const TYPE_FLOW: u8 = 2;

/// Decode/IO failures. Every variant is a rejected input, not a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowRecError {
    /// Underlying reader failed.
    Io(String),
    /// Stream doesn't start with `DNFR`.
    BadMagic([u8; 4]),
    /// Stream version this decoder doesn't speak.
    BadVersion(u16),
    /// Unknown record type byte.
    BadRecordType(u8),
    /// Record claims a payload above [`MAX_FLOWREC_PAYLOAD`].
    OversizePayload(u32),
    /// Stream ended inside a header or record body.
    Truncated,
    /// Record payload is malformed (bad IP tag, inner length overruns the
    /// payload, or trailing garbage).
    Corrupt(&'static str),
}

impl std::fmt::Display for FlowRecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowRecError::Io(e) => write!(f, "flowrec: io error: {e}"),
            FlowRecError::BadMagic(m) => write!(f, "flowrec: bad magic {m:02x?}"),
            FlowRecError::BadVersion(v) => write!(f, "flowrec: unsupported version {v}"),
            FlowRecError::BadRecordType(t) => write!(f, "flowrec: unknown record type {t}"),
            FlowRecError::OversizePayload(n) => {
                write!(f, "flowrec: record claims {n} payload bytes, above cap")
            }
            FlowRecError::Truncated => write!(f, "flowrec: stream truncated mid-record"),
            FlowRecError::Corrupt(why) => write!(f, "flowrec: corrupt record: {why}"),
        }
    }
}

impl std::error::Error for FlowRecError {}

/// A DNS answer observed on the export stream: the raw message plus the
/// client it was delivered to, exactly what the resolver Clist needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsExportRecord {
    /// Capture timestamp of the DNS response, microseconds.
    pub ts_micros: u64,
    /// Client the answer was delivered to.
    pub client: IpAddr,
    /// Raw DNS message bytes (to be fed through the DNS codec).
    pub message: Vec<u8>,
}

/// One exported flow: the 5-tuple and per-direction counters a
/// NetFlow/IPFIX probe would report at flow end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowExportRecord {
    /// First-packet timestamp, microseconds.
    pub first_ts: u64,
    /// Last-packet timestamp, microseconds.
    pub last_ts: u64,
    /// Flow initiator.
    pub client: IpAddr,
    pub client_port: u16,
    /// Responder.
    pub server: IpAddr,
    pub server_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub ip_proto: u8,
    pub packets_c2s: u64,
    pub packets_s2c: u64,
    pub bytes_c2s: u64,
    pub bytes_s2c: u64,
}

/// Any record on the export stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportRecord {
    Dns(DnsExportRecord),
    Flow(FlowExportRecord),
}

impl ExportRecord {
    /// Event time used for reorder buffering: the instant the record's
    /// effect belongs at. A DNS answer acts at its capture time; a flow
    /// acts at its *first* packet (that's when the paper's tagger queries
    /// the resolver), even though the probe exports it only at flow end.
    pub fn event_ts(&self) -> u64 {
        match self {
            ExportRecord::Dns(d) => d.ts_micros,
            ExportRecord::Flow(fl) => fl.first_ts,
        }
    }

    /// Export time: where the record sits on the wire. DNS answers export
    /// immediately; flows export at their last packet (plus probe jitter,
    /// which the emitter adds on top).
    pub fn export_ts(&self) -> u64 {
        match self {
            ExportRecord::Dns(d) => d.ts_micros,
            ExportRecord::Flow(fl) => fl.last_ts,
        }
    }
}

fn encode_ip(out: &mut Vec<u8>, ip: IpAddr) {
    match ip {
        IpAddr::V4(v4) => {
            out.push(4);
            out.extend_from_slice(&v4.octets());
        }
        IpAddr::V6(v6) => {
            out.push(6);
            out.extend_from_slice(&v6.octets());
        }
    }
}

/// Cursor over a record payload; every accessor is bounds-checked.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FlowRecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(FlowRecError::Corrupt("field overruns payload"))?;
        // allow_lint(L1): `end <= buf.len()` and `pos <= end` by the
        // checked_add/filter gate above
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FlowRecError> {
        Ok(self.take(1)?[0])
    }

    // allow_lint(L1): `take(2)` hands back exactly 2 bytes
    fn u16(&mut self) -> Result<u16, FlowRecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    // allow_lint(L1): `take(8)` hands back exactly 8 bytes
    fn u64(&mut self) -> Result<u64, FlowRecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    // allow_lint(L1): `take(4)` hands back exactly 4 bytes
    fn ip(&mut self) -> Result<IpAddr, FlowRecError> {
        match self.u8()? {
            4 => {
                let b = self.take(4)?;
                Ok(IpAddr::from([b[0], b[1], b[2], b[3]]))
            }
            6 => {
                let b = self.take(16)?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                Ok(IpAddr::from(o))
            }
            _ => Err(FlowRecError::Corrupt("bad ip tag")),
        }
    }

    fn finish(&self) -> Result<(), FlowRecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FlowRecError::Corrupt("trailing bytes in record payload"))
        }
    }
}

/// Decode one record payload given its type byte.
pub fn decode_payload(rec_type: u8, payload: &[u8]) -> Result<ExportRecord, FlowRecError> {
    let mut cur = Cur {
        buf: payload,
        pos: 0,
    };
    match rec_type {
        TYPE_DNS => {
            let ts_micros = cur.u64()?;
            let client = cur.ip()?;
            let len = cur.u16()? as usize;
            let message = cur.take(len)?.to_vec();
            cur.finish()?;
            Ok(ExportRecord::Dns(DnsExportRecord {
                ts_micros,
                client,
                message,
            }))
        }
        TYPE_FLOW => {
            let first_ts = cur.u64()?;
            let last_ts = cur.u64()?;
            let client = cur.ip()?;
            let client_port = cur.u16()?;
            let server = cur.ip()?;
            let server_port = cur.u16()?;
            let ip_proto = cur.u8()?;
            let packets_c2s = cur.u64()?;
            let packets_s2c = cur.u64()?;
            let bytes_c2s = cur.u64()?;
            let bytes_s2c = cur.u64()?;
            cur.finish()?;
            Ok(ExportRecord::Flow(FlowExportRecord {
                first_ts,
                last_ts,
                client,
                client_port,
                server,
                server_port,
                ip_proto,
                packets_c2s,
                packets_s2c,
                bytes_c2s,
                bytes_s2c,
            }))
        }
        other => Err(FlowRecError::BadRecordType(other)),
    }
}

/// Encode one record (type byte + length + payload) onto `out`.
pub fn encode_record(out: &mut Vec<u8>, rec: &ExportRecord) {
    let mut payload = Vec::new();
    let rec_type = match rec {
        ExportRecord::Dns(d) => {
            payload.extend_from_slice(&d.ts_micros.to_le_bytes());
            encode_ip(&mut payload, d.client);
            // DNS messages are u16-length by construction (TCP transport
            // caps them); truncate defensively rather than lie.
            let len = d.message.len().min(u16::MAX as usize);
            payload.extend_from_slice(&(len as u16).to_le_bytes());
            // allow_lint(L1): `len` is min-clamped to `message.len()` above
            payload.extend_from_slice(&d.message[..len]);
            TYPE_DNS
        }
        ExportRecord::Flow(fl) => {
            payload.extend_from_slice(&fl.first_ts.to_le_bytes());
            payload.extend_from_slice(&fl.last_ts.to_le_bytes());
            encode_ip(&mut payload, fl.client);
            payload.extend_from_slice(&fl.client_port.to_le_bytes());
            encode_ip(&mut payload, fl.server);
            payload.extend_from_slice(&fl.server_port.to_le_bytes());
            payload.push(fl.ip_proto);
            payload.extend_from_slice(&fl.packets_c2s.to_le_bytes());
            payload.extend_from_slice(&fl.packets_s2c.to_le_bytes());
            payload.extend_from_slice(&fl.bytes_c2s.to_le_bytes());
            payload.extend_from_slice(&fl.bytes_s2c.to_le_bytes());
            TYPE_FLOW
        }
    };
    out.push(rec_type);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Streaming writer over any [`Write`].
pub struct FlowRecWriter<W: Write> {
    inner: W,
    scratch: Vec<u8>,
    records: u64,
}

impl<W: Write> FlowRecWriter<W> {
    /// Write the stream header and return the writer.
    pub fn new(mut inner: W) -> Result<Self, FlowRecError> {
        inner
            .write_all(&FLOWREC_MAGIC)
            .and_then(|()| inner.write_all(&FLOWREC_VERSION.to_le_bytes()))
            .map_err(|e| FlowRecError::Io(e.to_string()))?;
        Ok(FlowRecWriter {
            inner,
            scratch: Vec::new(),
            records: 0,
        })
    }

    /// Append one record.
    pub fn write_record(&mut self, rec: &ExportRecord) -> Result<(), FlowRecError> {
        self.scratch.clear();
        encode_record(&mut self.scratch, rec);
        self.inner
            .write_all(&self.scratch)
            .map_err(|e| FlowRecError::Io(e.to_string()))?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flush and hand back the underlying writer.
    pub fn into_inner(mut self) -> Result<W, FlowRecError> {
        self.inner
            .flush()
            .map_err(|e| FlowRecError::Io(e.to_string()))?;
        Ok(self.inner)
    }
}

/// Streaming reader over any [`Read`]: validates the header on
/// construction, then yields records until clean end-of-stream.
pub struct FlowRecReader<R: Read> {
    inner: R,
}

impl<R: Read> FlowRecReader<R> {
    /// Read and validate the stream header.
    // allow_lint(L1): constant indices into the fixed [u8; 6] header array cannot be out of bounds
    pub fn new(mut inner: R) -> Result<Self, FlowRecError> {
        let mut hdr = [0u8; 6];
        inner.read_exact(&mut hdr).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => FlowRecError::Truncated,
            _ => FlowRecError::Io(e.to_string()),
        })?;
        let magic = [hdr[0], hdr[1], hdr[2], hdr[3]];
        if magic != FLOWREC_MAGIC {
            return Err(FlowRecError::BadMagic(magic));
        }
        let version = u16::from_le_bytes([hdr[4], hdr[5]]);
        if version != FLOWREC_VERSION {
            return Err(FlowRecError::BadVersion(version));
        }
        Ok(FlowRecReader { inner })
    }

    /// Next record; `Ok(None)` at clean end-of-stream, an error if the
    /// stream ends inside a record.
    // allow_lint(L1): constant indices into the fixed [u8; 5] record header cannot be out of bounds
    pub fn next_record(&mut self) -> Result<Option<ExportRecord>, FlowRecError> {
        let mut hdr = [0u8; 5];
        // A clean stream ends exactly on a record boundary; distinguish
        // zero-bytes-then-EOF from EOF mid-header.
        let mut filled = 0usize;
        while filled < hdr.len() {
            match self.inner.read(&mut hdr[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(FlowRecError::Truncated),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FlowRecError::Io(e.to_string())),
            }
        }
        let rec_type = hdr[0];
        let len = u32::from_le_bytes([hdr[1], hdr[2], hdr[3], hdr[4]]);
        if len > MAX_FLOWREC_PAYLOAD {
            return Err(FlowRecError::OversizePayload(len));
        }
        let mut payload = vec![0u8; len as usize];
        self.inner
            .read_exact(&mut payload)
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => FlowRecError::Truncated,
                _ => FlowRecError::Io(e.to_string()),
            })?;
        decode_payload(rec_type, &payload).map(Some)
    }
}

impl<R: Read> Iterator for FlowRecReader<R> {
    type Item = Result<ExportRecord, FlowRecError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Decode an entire in-memory stream. Used by the proptests and the
/// `flowrec` fuzz target: any byte string must yield records or a typed
/// error, never a panic.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<ExportRecord>, FlowRecError> {
    let mut reader = FlowRecReader::new(bytes)?;
    let mut out = Vec::new();
    while let Some(rec) = reader.next_record()? {
        out.push(rec);
    }
    Ok(out)
}

/// Encode a full stream (header + records) into one buffer.
pub fn encode_stream(records: &[ExportRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + records.len() * 64);
    out.extend_from_slice(&FLOWREC_MAGIC);
    out.extend_from_slice(&FLOWREC_VERSION.to_le_bytes());
    for rec in records {
        encode_record(&mut out, rec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn sample_records() -> Vec<ExportRecord> {
        vec![
            ExportRecord::Dns(DnsExportRecord {
                ts_micros: 1_300_000_000_000_123,
                client: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 7)),
                message: vec![0xde, 0xad, 0xbe, 0xef],
            }),
            ExportRecord::Flow(FlowExportRecord {
                first_ts: 1_300_000_000_100_000,
                last_ts: 1_300_000_000_900_000,
                client: IpAddr::V6(Ipv6Addr::LOCALHOST),
                client_port: 50321,
                server: IpAddr::V4(Ipv4Addr::new(93, 184, 216, 34)),
                server_port: 443,
                ip_proto: 6,
                packets_c2s: 12,
                packets_s2c: 17,
                bytes_c2s: 1_234,
                bytes_s2c: 56_789,
            }),
            ExportRecord::Dns(DnsExportRecord {
                ts_micros: 0,
                client: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
                message: Vec::new(),
            }),
        ]
    }

    #[test]
    fn write_then_read_roundtrip() {
        let recs = sample_records();
        let mut w = FlowRecWriter::new(Vec::new()).unwrap();
        for r in &recs {
            w.write_record(r).unwrap();
        }
        assert_eq!(w.records_written(), 3);
        let bytes = w.into_inner().unwrap();
        assert_eq!(decode_stream(&bytes).unwrap(), recs);
        assert_eq!(encode_stream(&recs), bytes);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            decode_stream(b"XXXX\x01\x00"),
            Err(FlowRecError::BadMagic(_))
        ));
        assert!(matches!(
            decode_stream(b"DNFR\x02\x00"),
            Err(FlowRecError::BadVersion(2))
        ));
        assert!(matches!(decode_stream(b"DN"), Err(FlowRecError::Truncated)));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let bytes = encode_stream(&sample_records());
        for cut in 0..bytes.len() {
            // Every strict prefix either parses fewer records cleanly (at
            // a record boundary) or errors; never panics.
            let _ = decode_stream(&bytes[..cut]);
        }
        // A cut inside the last record's payload is specifically Truncated.
        assert!(matches!(
            decode_stream(&bytes[..bytes.len() - 1]),
            Err(FlowRecError::Truncated)
        ));
    }

    #[test]
    fn oversize_and_unknown_type_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FLOWREC_MAGIC);
        bytes.extend_from_slice(&FLOWREC_VERSION.to_le_bytes());
        bytes.push(9); // unknown type
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_stream(&bytes),
            Err(FlowRecError::BadRecordType(9))
        ));

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FLOWREC_MAGIC);
        bytes.extend_from_slice(&FLOWREC_VERSION.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_stream(&bytes),
            Err(FlowRecError::OversizePayload(_))
        ));
    }

    #[test]
    fn trailing_garbage_in_payload_is_corrupt() {
        let rec = ExportRecord::Dns(DnsExportRecord {
            ts_micros: 5,
            client: IpAddr::V4(Ipv4Addr::LOCALHOST),
            message: vec![1, 2],
        });
        let mut body = Vec::new();
        encode_record(&mut body, &rec);
        // Grow the outer length by one and append a junk byte: the inner
        // u16 no longer covers the payload.
        let len = u32::from_le_bytes([body[1], body[2], body[3], body[4]]) + 1;
        body[1..5].copy_from_slice(&len.to_le_bytes());
        body.push(0xff);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FLOWREC_MAGIC);
        bytes.extend_from_slice(&FLOWREC_VERSION.to_le_bytes());
        bytes.extend_from_slice(&body);
        assert!(matches!(
            decode_stream(&bytes),
            Err(FlowRecError::Corrupt(_))
        ));
    }

    #[test]
    fn event_and_export_times() {
        let recs = sample_records();
        assert_eq!(recs[0].event_ts(), recs[0].export_ts());
        match &recs[1] {
            ExportRecord::Flow(fl) => {
                assert_eq!(recs[1].event_ts(), fl.first_ts);
                assert_eq!(recs[1].export_ts(), fl.last_ts);
            }
            _ => unreachable!(),
        }
    }
}
