//! 48-bit IEEE 802 MAC addresses.

use std::fmt;
use std::str::FromStr;

/// A 48-bit Ethernet hardware address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as a placeholder by the simulator.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Build from the six octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8) -> Self {
        MacAddr([a, b, c, d, e, f])
    }

    /// True if the group bit (least significant bit of first octet) is set.
    // allow_lint(L1): constant index 0 into the fixed [u8; 6] array cannot be out of bounds
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the locally-administered bit is set.
    // allow_lint(L1): constant index 0 into the fixed [u8; 6] array cannot be out of bounds
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Deterministically derive a locally-administered unicast MAC from an
    /// integer id. Used by the simulator to give every host a stable MAC.
    // allow_lint(L1): constant indices 3..=7 into the fixed [u8; 8] from to_be_bytes cannot be out of bounds
    pub fn from_id(id: u64) -> Self {
        let b = id.to_be_bytes();
        // 0x02 prefix = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }
}

impl fmt::Display for MacAddr {
    // allow_lint(L1): constant indices 0..=5 into the fixed [u8; 6] array cannot be out of bounds
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(format!(
                "expected 6 colon-separated octets, got {}",
                parts.len()
            ));
        }
        let mut out = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            // allow_lint(L1): i < 6 — parts.len() == 6 was checked above
            out[i] = u8::from_str_radix(p, 16).map_err(|e| format!("octet {i}: {e}"))?;
        }
        Ok(MacAddr(out))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        let m = MacAddr::new(0x02, 0xab, 0x00, 0x10, 0xff, 0x7e);
        let s = m.to_string();
        assert_eq!(s, "02:ab:00:10:ff:7e");
        assert_eq!(s.parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("02:ab:00:10:ff".parse::<MacAddr>().is_err());
        assert!("02:ab:00:10:ff:zz".parse::<MacAddr>().is_err());
        assert!("not a mac".parse::<MacAddr>().is_err());
    }

    #[test]
    fn classification_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::new(0x02, 0, 0, 0, 0, 1).is_multicast());
        assert!(MacAddr::new(0x02, 0, 0, 0, 0, 1).is_local());
        assert!(MacAddr::new(0x01, 0, 0x5e, 0, 0, 1).is_multicast());
    }

    #[test]
    fn from_id_is_stable_and_unicast() {
        let a = MacAddr::from_id(42);
        let b = MacAddr::from_id(42);
        let c = MacAddr::from_id(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_multicast());
        assert!(a.is_local());
    }
}
