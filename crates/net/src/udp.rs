//! UDP header codec (RFC 768).

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::checksum::{pseudo_header_checksum_v4, pseudo_header_checksum_v6};
use crate::error::{need, NetError, Result};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A decoded UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    /// Length of header + payload as claimed on the wire.
    pub length: u16,
    pub checksum: u16,
}

impl UdpHeader {
    /// Decode from `buf`; returns the header and the payload offset. The
    /// checksum is *not* validated here because that requires the IP
    /// pseudo-header; use [`UdpHeader::verify_checksum_v4`] /
    /// [`UdpHeader::verify_checksum_v6`] with the full segment.
    // allow_lint(L1): all fixed offsets sit below HEADER_LEN, checked by the `need` guard on entry
    pub fn parse(buf: &[u8]) -> Result<(UdpHeader, usize)> {
        need("udp", buf, HEADER_LEN)?;
        let length = u16::from_be_bytes([buf[4], buf[5]]);
        if usize::from(length) < HEADER_LEN {
            return Err(NetError::BadLength {
                layer: "udp",
                detail: format!("length field {length} < 8"),
            });
        }
        if buf.len() < usize::from(length) {
            return Err(NetError::Truncated {
                layer: "udp",
                needed: usize::from(length),
                available: buf.len(),
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                length,
                checksum: u16::from_be_bytes([buf[6], buf[7]]),
            },
            HEADER_LEN,
        ))
    }

    /// Validate the checksum of a full UDP segment carried over IPv4.
    /// A zero checksum means "not computed" and is accepted (RFC 768).
    pub fn verify_checksum_v4(segment: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<()> {
        // allow_lint(L1): indices 6 and 7 are below HEADER_LEN, checked by the length test in the same expression
        if segment.len() >= HEADER_LEN && segment[6] == 0 && segment[7] == 0 {
            return Ok(());
        }
        let sum = pseudo_header_checksum_v4(src, dst, 17, segment);
        if sum != 0 {
            return Err(NetError::BadChecksum {
                layer: "udp",
                expected: 0,
                found: sum,
            });
        }
        Ok(())
    }

    /// Validate the checksum of a full UDP segment carried over IPv6
    /// (mandatory there).
    pub fn verify_checksum_v6(segment: &[u8], src: Ipv6Addr, dst: Ipv6Addr) -> Result<()> {
        let sum = pseudo_header_checksum_v6(src, dst, 17, segment);
        if sum != 0 {
            return Err(NetError::BadChecksum {
                layer: "udp",
                expected: 0,
                found: sum,
            });
        }
        Ok(())
    }

    /// Encode a full UDP segment (header + payload) over IPv4, computing the
    /// checksum. Appends to `out`.
    // allow_lint(L1): the checksum patch at start+6..start+8 lands inside the 8 header bytes appended above it
    pub fn write_segment_v4(
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let total = HEADER_LEN + payload.len();
        if total > usize::from(u16::MAX) {
            return Err(NetError::BadLength {
                layer: "udp",
                detail: format!("segment length {total} exceeds 65535"),
            });
        }
        let start = out.len();
        out.extend_from_slice(&src_port.to_be_bytes());
        out.extend_from_slice(&dst_port.to_be_bytes());
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(payload);
        let mut ck = pseudo_header_checksum_v4(src, dst, 17, &out[start..]);
        if ck == 0 {
            // RFC 768: transmitted as all-ones if the computed sum is zero.
            ck = 0xffff;
        }
        out[start + 6..start + 8].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_checksum() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(8, 8, 8, 8);
        let mut seg = Vec::new();
        UdpHeader::write_segment_v4(40000, 53, b"hello dns", src, dst, &mut seg).unwrap();
        let (h, off) = UdpHeader::parse(&seg).unwrap();
        assert_eq!(h.src_port, 40000);
        assert_eq!(h.dst_port, 53);
        assert_eq!(usize::from(h.length), seg.len());
        assert_eq!(&seg[off..], b"hello dns");
        UdpHeader::verify_checksum_v4(&seg, src, dst).unwrap();
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(8, 8, 8, 8);
        let mut seg = Vec::new();
        UdpHeader::write_segment_v4(1234, 53, b"payload", src, dst, &mut seg).unwrap();
        let last = seg.len() - 1;
        seg[last] ^= 0x01;
        assert!(UdpHeader::verify_checksum_v4(&seg, src, dst).is_err());
    }

    #[test]
    fn zero_checksum_is_accepted_on_v4() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(8, 8, 8, 8);
        let mut seg = Vec::new();
        UdpHeader::write_segment_v4(1234, 53, b"x", src, dst, &mut seg).unwrap();
        seg[6] = 0;
        seg[7] = 0;
        UdpHeader::verify_checksum_v4(&seg, src, dst).unwrap();
    }

    #[test]
    fn rejects_length_shorter_than_header() {
        let mut seg = vec![0u8; 8];
        seg[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert!(matches!(
            UdpHeader::parse(&seg),
            Err(NetError::BadLength { .. })
        ));
    }

    #[test]
    fn rejects_truncated_segment() {
        let mut seg = vec![0u8; 8];
        seg[4..6].copy_from_slice(&20u16.to_be_bytes());
        assert!(matches!(
            UdpHeader::parse(&seg),
            Err(NetError::Truncated { .. })
        ));
    }
}
