//! IPv6 fixed header codec (RFC 8200). Extension headers other than
//! hop-by-hop are treated as opaque payload by the sniffer.

use std::net::Ipv6Addr;

use crate::error::{need, NetError, Result};
use crate::proto::IpProtocol;

/// IPv6 fixed header length.
pub const HEADER_LEN: usize = 40;

/// A decoded IPv6 fixed header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Header {
    pub traffic_class: u8,
    pub flow_label: u32,
    /// Payload length as claimed on the wire (excludes the fixed header).
    pub payload_len: u16,
    pub next_header: IpProtocol,
    pub hop_limit: u8,
    pub src: Ipv6Addr,
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// A conventional header for synthetic traffic.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: IpProtocol) -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len: 0, // filled by `write`
            next_header,
            hop_limit: 64,
            src,
            dst,
        }
    }

    /// Decode from `buf`; returns the header and payload offset.
    // allow_lint(L1): all fixed offsets sit below HEADER_LEN, checked by the `need` guard on entry
    pub fn parse(buf: &[u8]) -> Result<(Ipv6Header, usize)> {
        need("ipv6", buf, HEADER_LEN)?;
        let version = buf[0] >> 4;
        if version != 6 {
            return Err(NetError::Unsupported {
                layer: "ipv6",
                detail: format!("version {version}"),
            });
        }
        let payload_len = u16::from_be_bytes([buf[4], buf[5]]);
        if buf.len() < HEADER_LEN + usize::from(payload_len) {
            return Err(NetError::Truncated {
                layer: "ipv6",
                needed: HEADER_LEN + usize::from(payload_len),
                available: buf.len(),
            });
        }
        let mut src = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&buf[24..40]);
        Ok((
            Ipv6Header {
                traffic_class: ((buf[0] & 0x0f) << 4) | (buf[1] >> 4),
                flow_label: (u32::from(buf[1] & 0x0f) << 16)
                    | (u32::from(buf[2]) << 8)
                    | u32::from(buf[3]),
                payload_len,
                next_header: IpProtocol::from(buf[6]),
                hop_limit: buf[7],
                src: Ipv6Addr::from(src),
                dst: Ipv6Addr::from(dst),
            },
            HEADER_LEN,
        ))
    }

    /// Encode this header assuming `payload_len` bytes of payload follow.
    pub fn write(&self, out: &mut Vec<u8>, payload_len: usize) -> Result<()> {
        if payload_len > usize::from(u16::MAX) {
            return Err(NetError::BadLength {
                layer: "ipv6",
                detail: format!("payload length {payload_len} exceeds 65535"),
            });
        }
        out.push(0x60 | (self.traffic_class >> 4));
        out.push(((self.traffic_class & 0x0f) << 4) | ((self.flow_label >> 16) as u8 & 0x0f));
        out.push((self.flow_label >> 8) as u8);
        out.push(self.flow_label as u8);
        out.extend_from_slice(&(payload_len as u16).to_be_bytes());
        out.push(self.next_header.number());
        out.push(self.hop_limit);
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Header {
        Ipv6Header::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8:ffff::2".parse().unwrap(),
            IpProtocol::Tcp,
        )
    }

    #[test]
    fn roundtrip() {
        let mut h = sample();
        h.traffic_class = 0xb8;
        h.flow_label = 0xabcde;
        let mut buf = Vec::new();
        h.write(&mut buf, 4).unwrap();
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let (parsed, off) = Ipv6Header::parse(&buf).unwrap();
        assert_eq!(off, HEADER_LEN);
        assert_eq!(parsed.src, h.src);
        assert_eq!(parsed.dst, h.dst);
        assert_eq!(parsed.traffic_class, 0xb8);
        assert_eq!(parsed.flow_label, 0xabcde);
        assert_eq!(parsed.payload_len, 4);
        assert_eq!(parsed.next_header, IpProtocol::Tcp);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        sample().write(&mut buf, 0).unwrap();
        buf[0] = 0x45;
        assert!(matches!(
            Ipv6Header::parse(&buf),
            Err(NetError::Unsupported { .. })
        ));
    }

    #[test]
    fn rejects_short_payload() {
        let mut buf = Vec::new();
        sample().write(&mut buf, 10).unwrap();
        // no payload appended
        assert!(matches!(
            Ipv6Header::parse(&buf),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_short_header() {
        assert!(Ipv6Header::parse(&[0x60; 39]).is_err());
    }
}
