//! TCP header codec (RFC 9293), including the option kinds the sniffer and
//! simulator need (MSS, window scale, SACK-permitted, timestamps, NOP, EOL).

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::checksum::{pseudo_header_checksum_v4, pseudo_header_checksum_v6};
use crate::error::{need, NetError, Result};

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    pub const FIN: TcpFlags = TcpFlags(0x01);
    pub const SYN: TcpFlags = TcpFlags(0x02);
    pub const RST: TcpFlags = TcpFlags(0x04);
    pub const PSH: TcpFlags = TcpFlags(0x08);
    pub const ACK: TcpFlags = TcpFlags(0x10);
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Union of two flag sets.
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// True if all bits of `other` are present.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn syn(self) -> bool {
        self.contains(Self::SYN)
    }
    pub fn ack(self) -> bool {
        self.contains(Self::ACK)
    }
    pub fn fin(self) -> bool {
        self.contains(Self::FIN)
    }
    pub fn rst(self) -> bool {
        self.contains(Self::RST)
    }
    pub fn psh(self) -> bool {
        self.contains(Self::PSH)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        self.union(rhs)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut any = false;
        for (bit, name) in [
            (Self::SYN, "SYN"),
            (Self::ACK, "ACK"),
            (Self::FIN, "FIN"),
            (Self::RST, "RST"),
            (Self::PSH, "PSH"),
            (Self::URG, "URG"),
        ] {
            if self.contains(bit) {
                if any {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// Decoded TCP options the stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOption {
    /// Maximum segment size (kind 2), SYN only.
    Mss(u16),
    /// Window scale shift (kind 3), SYN only.
    WindowScale(u8),
    /// SACK permitted (kind 4), SYN only.
    SackPermitted,
    /// Timestamps (kind 8): TSval, TSecr.
    Timestamps(u32, u32),
    /// NOP padding (kind 1).
    Nop,
    /// Unknown option preserved by kind (payload dropped).
    Unknown(u8),
}

/// A decoded TCP header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
    pub checksum: u16,
    pub urgent: u16,
    pub options: Vec<TcpOption>,
}

impl TcpHeader {
    /// A plain header for synthetic traffic; options empty, window 65535.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65535,
            checksum: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// Length the encoded header will occupy (options padded to 4 bytes).
    pub fn header_len(&self) -> usize {
        let opt: usize = self
            .options
            .iter()
            .map(|o| match o {
                TcpOption::Mss(_) => 4,
                TcpOption::WindowScale(_) => 3,
                TcpOption::SackPermitted => 2,
                TcpOption::Timestamps(_, _) => 10,
                TcpOption::Nop => 1,
                TcpOption::Unknown(_) => 2,
            })
            .sum();
        MIN_HEADER_LEN + opt.div_ceil(4) * 4
    }

    /// Decode from `buf`; returns the header and the payload offset.
    // allow_lint(L1): fixed offsets sit below MIN_HEADER_LEN (first `need` guard); option bytes are below data_offset (second `need` guard plus the per-option i/len range checks); body indices are matched against body.len()
    pub fn parse(buf: &[u8]) -> Result<(TcpHeader, usize)> {
        need("tcp", buf, MIN_HEADER_LEN)?;
        let data_offset = usize::from(buf[12] >> 4) * 4;
        if data_offset < MIN_HEADER_LEN {
            return Err(NetError::BadLength {
                layer: "tcp",
                detail: format!("data offset {data_offset} < 20"),
            });
        }
        need("tcp", buf, data_offset)?;
        let mut options = Vec::new();
        let mut i = MIN_HEADER_LEN;
        while i < data_offset {
            match buf[i] {
                0 => break, // EOL
                1 => {
                    options.push(TcpOption::Nop);
                    i += 1;
                }
                kind => {
                    if i + 1 >= data_offset {
                        return Err(NetError::BadLength {
                            layer: "tcp",
                            detail: format!("option kind {kind} truncated"),
                        });
                    }
                    let len = usize::from(buf[i + 1]);
                    if len < 2 || i + len > data_offset {
                        return Err(NetError::BadLength {
                            layer: "tcp",
                            detail: format!("option kind {kind} has bad length {len}"),
                        });
                    }
                    let body = &buf[i + 2..i + len];
                    options.push(match (kind, body.len()) {
                        (2, 2) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
                        (3, 1) => TcpOption::WindowScale(body[0]),
                        (4, 0) => TcpOption::SackPermitted,
                        (8, 8) => TcpOption::Timestamps(
                            u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                            u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                        ),
                        _ => TcpOption::Unknown(kind),
                    });
                    i += len;
                }
            }
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                flags: TcpFlags(buf[13] & 0x3f),
                window: u16::from_be_bytes([buf[14], buf[15]]),
                checksum: u16::from_be_bytes([buf[16], buf[17]]),
                urgent: u16::from_be_bytes([buf[18], buf[19]]),
                options,
            },
            data_offset,
        ))
    }

    /// Encode a full TCP segment (header + payload) over IPv4 with a valid
    /// checksum; appends to `out`.
    // allow_lint(L1): the checksum patch at start+16..start+18 lands inside the 20+ header bytes appended above it
    pub fn write_segment_v4(
        &self,
        payload: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let header_len = self.header_len();
        if header_len > 60 {
            return Err(NetError::BadLength {
                layer: "tcp",
                detail: format!("header length {header_len} exceeds 60"),
            });
        }
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(((header_len / 4) as u8) << 4);
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.urgent.to_be_bytes());
        for opt in &self.options {
            match opt {
                TcpOption::Mss(v) => {
                    out.extend_from_slice(&[2, 4]);
                    out.extend_from_slice(&v.to_be_bytes());
                }
                TcpOption::WindowScale(s) => out.extend_from_slice(&[3, 3, *s]),
                TcpOption::SackPermitted => out.extend_from_slice(&[4, 2]),
                TcpOption::Timestamps(val, ecr) => {
                    out.extend_from_slice(&[8, 10]);
                    out.extend_from_slice(&val.to_be_bytes());
                    out.extend_from_slice(&ecr.to_be_bytes());
                }
                TcpOption::Nop => out.push(1),
                TcpOption::Unknown(kind) => out.extend_from_slice(&[*kind, 2]),
            }
        }
        while (out.len() - start) < header_len {
            out.push(0); // EOL padding
        }
        out.extend_from_slice(payload);
        let ck = pseudo_header_checksum_v4(src, dst, 6, &out[start..]);
        out[start + 16..start + 18].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }

    /// Encode a full TCP segment over IPv6, computing the checksum.
    // allow_lint(L1): the checksum patch at start+16..start+18 lands inside the header the v4 writer just appended
    pub fn write_segment_v6(
        &self,
        payload: &[u8],
        src: Ipv6Addr,
        dst: Ipv6Addr,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let start = out.len();
        // Reuse the v4 writer's layout with a dummy checksum, then fix it.
        self.write_segment_v4(payload, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, out)?;
        out[start + 16..start + 18].copy_from_slice(&[0, 0]);
        let ck = pseudo_header_checksum_v6(src, dst, 6, &out[start..]);
        out[start + 16..start + 18].copy_from_slice(&ck.to_be_bytes());
        Ok(())
    }

    /// Validate the checksum of a full TCP segment carried over IPv6.
    pub fn verify_checksum_v6(segment: &[u8], src: Ipv6Addr, dst: Ipv6Addr) -> Result<()> {
        let sum = pseudo_header_checksum_v6(src, dst, 6, segment);
        if sum != 0 {
            return Err(NetError::BadChecksum {
                layer: "tcp",
                expected: 0,
                found: sum,
            });
        }
        Ok(())
    }

    /// Validate the checksum of a full TCP segment carried over IPv4.
    pub fn verify_checksum_v4(segment: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<()> {
        let sum = pseudo_header_checksum_v4(src, dst, 6, segment);
        if sum != 0 {
            return Err(NetError::BadChecksum {
                layer: "tcp",
                expected: 0,
                found: sum,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(93, 184, 216, 34))
    }

    #[test]
    fn roundtrip_plain() {
        let (s, d) = addrs();
        let h = TcpHeader::new(51000, 443, 1000, 0, TcpFlags::SYN);
        let mut seg = Vec::new();
        h.write_segment_v4(&[], s, d, &mut seg).unwrap();
        let (parsed, off) = TcpHeader::parse(&seg).unwrap();
        assert_eq!(off, MIN_HEADER_LEN);
        assert_eq!(parsed.src_port, 51000);
        assert_eq!(parsed.dst_port, 443);
        assert_eq!(parsed.seq, 1000);
        assert!(parsed.flags.syn());
        assert!(!parsed.flags.ack());
        TcpHeader::verify_checksum_v4(&seg, s, d).unwrap();
    }

    #[test]
    fn roundtrip_with_options_and_payload() {
        let (s, d) = addrs();
        let mut h = TcpHeader::new(51000, 80, 7, 9, TcpFlags::PSH | TcpFlags::ACK);
        h.options = vec![
            TcpOption::Mss(1460),
            TcpOption::SackPermitted,
            TcpOption::WindowScale(7),
            TcpOption::Timestamps(123, 456),
        ];
        let mut seg = Vec::new();
        h.write_segment_v4(b"GET / HTTP/1.1\r\n", s, d, &mut seg)
            .unwrap();
        let (parsed, off) = TcpHeader::parse(&seg).unwrap();
        assert!(parsed.options.contains(&TcpOption::Mss(1460)));
        assert!(parsed.options.contains(&TcpOption::WindowScale(7)));
        assert!(parsed.options.contains(&TcpOption::SackPermitted));
        assert!(parsed.options.contains(&TcpOption::Timestamps(123, 456)));
        assert_eq!(&seg[off..], b"GET / HTTP/1.1\r\n");
        TcpHeader::verify_checksum_v4(&seg, s, d).unwrap();
    }

    #[test]
    fn corrupted_segment_fails_checksum() {
        let (s, d) = addrs();
        let h = TcpHeader::new(51000, 80, 7, 9, TcpFlags::ACK);
        let mut seg = Vec::new();
        h.write_segment_v4(b"data", s, d, &mut seg).unwrap();
        seg[4] ^= 0xff;
        assert!(TcpHeader::verify_checksum_v4(&seg, s, d).is_err());
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut seg = vec![0u8; 20];
        seg[12] = 0x40; // data offset 16 bytes < 20
        assert!(matches!(
            TcpHeader::parse(&seg),
            Err(NetError::BadLength { .. })
        ));
    }

    #[test]
    fn rejects_truncated_option() {
        let (s, d) = addrs();
        let mut h = TcpHeader::new(1, 2, 0, 0, TcpFlags::SYN);
        h.options = vec![TcpOption::Mss(1460)];
        let mut seg = Vec::new();
        h.write_segment_v4(&[], s, d, &mut seg).unwrap();
        // Claim the MSS option extends beyond the header.
        seg[21] = 60;
        assert!(matches!(
            TcpHeader::parse(&seg),
            Err(NetError::BadLength { .. })
        ));
    }

    #[test]
    fn v6_segment_roundtrip() {
        let src: Ipv6Addr = "2001:db8::10".parse().unwrap();
        let dst: Ipv6Addr = "2001:4860::1".parse().unwrap();
        let h = TcpHeader::new(50000, 80, 9, 4, TcpFlags::PSH | TcpFlags::ACK);
        let mut seg = Vec::new();
        h.write_segment_v6(b"GET /6 HTTP/1.1\r\n", src, dst, &mut seg)
            .unwrap();
        TcpHeader::verify_checksum_v6(&seg, src, dst).unwrap();
        let (parsed, off) = TcpHeader::parse(&seg).unwrap();
        assert_eq!(parsed.src_port, 50000);
        assert_eq!(&seg[off..], b"GET /6 HTTP/1.1\r\n");
        // Corruption detected.
        seg[off] ^= 1;
        assert!(TcpHeader::verify_checksum_v6(&seg, src, dst).is_err());
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }

    #[test]
    fn eol_terminates_option_parsing() {
        let (s, d) = addrs();
        let mut h = TcpHeader::new(1, 2, 0, 0, TcpFlags::SYN);
        h.options = vec![TcpOption::WindowScale(2)]; // 3 bytes -> 1 byte EOL pad
        let mut seg = Vec::new();
        h.write_segment_v4(&[], s, d, &mut seg).unwrap();
        let (parsed, _) = TcpHeader::parse(&seg).unwrap();
        assert_eq!(parsed.options, vec![TcpOption::WindowScale(2)]);
    }
}
