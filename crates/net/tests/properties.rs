//! Property-based tests for the wire codecs.

use dnhunter_net::{
    build_tcp_v4, build_udp_v4, parse_flat, FlatParse, FrameFault, MacAddr, Packet, PacketView,
    PcapReader, PcapRecord, PcapWriter, TcpFlags, TransportHeader,
};
use proptest::prelude::*;
use std::io::Cursor;
use std::net::Ipv4Addr;

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

proptest! {
    /// Any UDP frame we build parses back to the same endpoints/payload.
    #[test]
    fn udp_frame_roundtrip(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        sm in arb_mac(),
        dm in arb_mac(),
        sport in 1u16..,
        dport in 1u16..,
        payload in proptest::collection::vec(any::<u8>(), 0..1200),
    ) {
        let frame = build_udp_v4(sm, dm, src, dst, sport, dport, &payload).unwrap();
        let pkt = Packet::parse(&frame).unwrap();
        prop_assert_eq!(pkt.src_ip(), std::net::IpAddr::V4(src));
        prop_assert_eq!(pkt.dst_ip(), std::net::IpAddr::V4(dst));
        prop_assert_eq!(pkt.transport.src_port(), Some(sport));
        prop_assert_eq!(pkt.transport.dst_port(), Some(dport));
        prop_assert_eq!(pkt.payload, payload);
    }

    /// Any TCP frame we build parses back with the same header fields.
    #[test]
    fn tcp_frame_roundtrip(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        sport in 1u16..,
        dport in 1u16..,
        seq in any::<u32>(),
        ack in any::<u32>(),
        flag_bits in 0u8..64,
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let flags = TcpFlags(flag_bits);
        let frame = build_tcp_v4(
            MacAddr::from_id(1), MacAddr::from_id(2),
            src, dst, sport, dport, seq, ack, flags, &payload,
        ).unwrap();
        let pkt = Packet::parse(&frame).unwrap();
        match &pkt.transport {
            TransportHeader::Tcp(h) => {
                prop_assert_eq!(h.src_port, sport);
                prop_assert_eq!(h.dst_port, dport);
                prop_assert_eq!(h.seq, seq);
                prop_assert_eq!(h.ack, ack);
                prop_assert_eq!(h.flags.0, flag_bits);
            }
            other => prop_assert!(false, "expected TCP, got {:?}", other),
        }
        prop_assert_eq!(pkt.payload, payload);
    }

    /// Corrupting any single byte of a UDP frame never panics the parser,
    /// and either fails parsing or is detectable via the UDP checksum.
    #[test]
    fn corruption_is_safe(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        pos_seed in any::<usize>(),
        delta in 1u8..,
    ) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(192, 0, 2, 9);
        let mut frame = build_udp_v4(
            MacAddr::from_id(1), MacAddr::from_id(2),
            src, dst, 1000, 2000, &payload,
        ).unwrap();
        let pos = pos_seed % frame.len();
        frame[pos] ^= delta;
        let _ = Packet::parse(&frame); // must not panic
    }

    /// pcap files round-trip arbitrary record sequences.
    #[test]
    fn pcap_roundtrip(
        records in proptest::collection::vec(
            (any::<u32>(), 0u32..1_000_000, proptest::collection::vec(any::<u8>(), 0..300)),
            0..20,
        )
    ) {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let input: Vec<PcapRecord> = records
            .into_iter()
            .map(|(s, us, frame)| PcapRecord { ts_sec: s, ts_usec: us, frame })
            .collect();
        for r in &input {
            w.write_record(r).unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let back: Vec<PcapRecord> = PcapReader::new(Cursor::new(bytes))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(back, input);
    }

    /// The parser never panics on arbitrary junk.
    #[test]
    fn parser_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::parse(&junk);
    }

    /// The branch-light flat parser and the generic `PacketView` walk agree
    /// on every input — valid frames, corrupted frames, truncations, junk:
    /// same accept/reject verdict, same fault class on reject, and the same
    /// 5-tuple + payload slice on accept. Exercises both the IPv4 fast path
    /// and (via corruption of the EtherType bytes) the generic fallback.
    #[test]
    fn flat_parse_is_equivalent_to_view_parse(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        sport in 1u16..,
        dport in 1u16..,
        seq in any::<u32>(),
        flag_bits in 0u8..64,
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        tcp in any::<bool>(),
        do_mutate in any::<bool>(),
        mutate_pos in any::<usize>(),
        mutate_delta in 1u8..,
        do_cut in any::<bool>(),
        cut_pos in any::<usize>(),
    ) {
        let mut frame = if tcp {
            build_tcp_v4(
                MacAddr::from_id(1), MacAddr::from_id(2),
                src, dst, sport, dport, seq, 0, TcpFlags(flag_bits), &payload,
            ).unwrap()
        } else {
            build_udp_v4(
                MacAddr::from_id(1), MacAddr::from_id(2),
                src, dst, sport, dport, &payload,
            ).unwrap()
        };
        if do_mutate {
            let pos = mutate_pos % frame.len();
            frame[pos] ^= mutate_delta;
        }
        if do_cut {
            frame.truncate(cut_pos % (frame.len() + 1));
        }
        match (parse_flat(&frame), PacketView::parse(&frame)) {
            (Ok(FlatParse::Seg(s)), Ok(view)) => {
                prop_assert_eq!(s.src, view.src_ip());
                prop_assert_eq!(s.dst, view.dst_ip());
                prop_assert_eq!(Some(s.src_port), view.transport.src_port());
                prop_assert_eq!(Some(s.dst_port), view.transport.dst_port());
                prop_assert_eq!(s.payload, view.payload);
                match &view.transport {
                    TransportHeader::Tcp(h) => {
                        prop_assert_eq!(s.tcp_flags, Some(h.flags));
                        prop_assert_eq!(s.tcp_seq, h.seq);
                    }
                    TransportHeader::Udp(_) => prop_assert_eq!(s.tcp_flags, None),
                    other => prop_assert!(false, "flat Seg but view {:?}", other),
                }
            }
            (Ok(FlatParse::Opaque), Ok(view)) => {
                prop_assert!(
                    matches!(view.transport, TransportHeader::Opaque(_)),
                    "flat Opaque but view {:?}", view.transport
                );
            }
            (Err(fault), Err(e)) => prop_assert_eq!(fault, FrameFault::of(&e)),
            (flat, view) => prop_assert!(
                false, "verdicts disagree: flat {:?} vs view {:?}", flat, view
            ),
        }
    }

    /// Every strict prefix of a valid frame is a *truncation*: the builders
    /// never pad, so cutting anywhere under-runs some header or length
    /// claim, and the parser must classify it as `NetError::Truncated` —
    /// the distinct class the snaplen-fault telemetry counts — not lump it
    /// under `Unsupported`.
    #[test]
    fn every_frame_prefix_is_classified_truncated(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        sport in 1u16..,
        dport in 1u16..,
        payload in proptest::collection::vec(any::<u8>(), 1..600),
        cut_seed in any::<usize>(),
    ) {
        let frame = build_udp_v4(
            MacAddr::from_id(1), MacAddr::from_id(2),
            src, dst, sport, dport, &payload,
        ).unwrap();
        let cut = cut_seed % frame.len(); // 0..len-1: always a strict prefix
        match Packet::parse(&frame[..cut]) {
            Err(dnhunter_net::NetError::Truncated { .. }) => {}
            other => prop_assert!(false, "prefix of {cut} bytes gave {:?}", other),
        }
    }
}
