//! Property-based tests for the DNFR flow-record codec: encode→decode
//! identity over arbitrary record streams, and decoder totality — any
//! truncation or single-byte corruption of a valid stream must surface as
//! an `Err` (or a clean record prefix), never a panic.

use dnhunter_net::flowrec::{decode_stream, encode_stream};
use dnhunter_net::{DnsExportRecord, ExportRecord, FlowExportRecord, FlowRecReader};
use proptest::prelude::*;
use std::io::Cursor;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn arb_ip() -> impl Strategy<Value = IpAddr> {
    (any::<bool>(), any::<u32>(), any::<[u8; 16]>()).prop_map(|(v6, a4, a6)| {
        if v6 {
            IpAddr::V6(Ipv6Addr::from(a6))
        } else {
            IpAddr::V4(Ipv4Addr::from(a4))
        }
    })
}

fn arb_dns() -> impl Strategy<Value = ExportRecord> {
    (
        any::<u64>(),
        arb_ip(),
        proptest::collection::vec(any::<u8>(), 0..600),
    )
        .prop_map(|(ts_micros, client, message)| {
            ExportRecord::Dns(DnsExportRecord {
                ts_micros,
                client,
                message,
            })
        })
}

fn arb_flow() -> impl Strategy<Value = ExportRecord> {
    (
        (any::<u64>(), any::<u64>(), arb_ip(), any::<u16>()),
        (arb_ip(), any::<u16>(), any::<u8>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (first_ts, last_ts, client, client_port),
                (server, server_port, ip_proto),
                (packets_c2s, packets_s2c, bytes_c2s, bytes_s2c),
            )| {
                ExportRecord::Flow(FlowExportRecord {
                    first_ts,
                    last_ts,
                    client,
                    client_port,
                    server,
                    server_port,
                    ip_proto,
                    packets_c2s,
                    packets_s2c,
                    bytes_c2s,
                    bytes_s2c,
                })
            },
        )
}

fn arb_record() -> impl Strategy<Value = ExportRecord> {
    (any::<bool>(), arb_dns(), arb_flow()).prop_map(|(dns, d, f)| if dns { d } else { f })
}

fn arb_records() -> impl Strategy<Value = Vec<ExportRecord>> {
    proptest::collection::vec(arb_record(), 0..24)
}

proptest! {
    /// Any record stream survives an encode→decode round trip unchanged,
    /// through both the slice decoder and the incremental reader.
    #[test]
    fn stream_roundtrip(records in arb_records()) {
        let bytes = encode_stream(&records);
        prop_assert_eq!(decode_stream(&bytes).expect("valid stream decodes"), records.clone());

        let mut reader = FlowRecReader::new(Cursor::new(&bytes)).expect("valid header");
        let mut seen = Vec::new();
        while let Some(rec) = reader.next_record().expect("valid records decode") {
            seen.push(rec);
        }
        prop_assert_eq!(seen, records);
    }

    /// Cutting a valid stream anywhere yields an error or a clean prefix of
    /// the original records — never a panic, never fabricated records.
    #[test]
    fn truncation_is_an_error_or_a_prefix(
        records in arb_records(),
        cut_seed in any::<usize>(),
    ) {
        let bytes = encode_stream(&records);
        let cut = cut_seed % (bytes.len() + 1);
        if let Ok(prefix) = decode_stream(&bytes[..cut]) {
            prop_assert!(prefix.len() <= records.len());
            prop_assert_eq!(&prefix[..], &records[..prefix.len()]);
        }
    }

    /// Flipping any single byte never panics the decoder: it errors, or
    /// decodes to records that re-encode without panicking.
    #[test]
    fn corruption_is_an_error_not_a_panic(
        records in arb_records(),
        pos_seed in any::<usize>(),
        delta in 1u8..,
    ) {
        let mut bytes = encode_stream(&records);
        let pos = pos_seed % bytes.len().max(1);
        if let Some(b) = bytes.get_mut(pos) {
            *b ^= delta;
        }
        if let Ok(decoded) = decode_stream(&bytes) {
            let _ = encode_stream(&decoded);
        }
    }

    /// Arbitrary bytes fed straight to the decoder (no valid framing at
    /// all) are rejected or decoded — never a panic.
    #[test]
    fn garbage_input_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_stream(&bytes);
        if let Ok(mut reader) = FlowRecReader::new(Cursor::new(&bytes)) {
            while let Ok(Some(_)) = reader.next_record() {}
        }
    }
}
