//! Spatial discovery of servers — paper Algorithm 2, Figs. 4 and 9.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::IpAddr;

use dnhunter::FlowDatabase;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::DomainName;
use dnhunter_orgdb::{OrgDb, OrgKind};

use crate::timeseries::BinnedDistinct;

/// Output of Algorithm 2 for one target.
#[derive(Debug)]
pub struct SpatialReport {
    /// The organization (second-level domain) that was analysed.
    pub second_level: DomainName,
    /// Every serverIP observed serving the organization, sorted.
    pub org_servers: Vec<IpAddr>,
    /// Per-FQDN server sets (sorted), as Algorithm 2 returns.
    pub fqdn_servers: BTreeMap<DomainName, Vec<IpAddr>>,
}

/// SPATIAL_DISCOVERY(FQDN): extract the 2nd-level domain, pull every flow
/// to it from the database, group servers per FQDN.
pub fn spatial_discovery(
    db: &FlowDatabase,
    target: &DomainName,
    suffixes: &SuffixSet,
) -> SpatialReport {
    let sld = target.second_level_domain(suffixes);
    let mut org_servers: HashSet<IpAddr> = HashSet::new();
    let mut fqdn_servers: BTreeMap<DomainName, HashSet<IpAddr>> = BTreeMap::new();
    for f in db.by_second_level(&sld) {
        org_servers.insert(f.key.server);
        if let Some(fqdn) = &f.fqdn {
            fqdn_servers
                .entry(fqdn.clone())
                .or_default()
                .insert(f.key.server);
        }
    }
    let mut org_sorted: Vec<IpAddr> = org_servers.into_iter().collect();
    org_sorted.sort();
    SpatialReport {
        second_level: sld,
        org_servers: org_sorted,
        fqdn_servers: fqdn_servers
            .into_iter()
            .map(|(k, v)| {
                let mut v: Vec<IpAddr> = v.into_iter().collect();
                v.sort();
                (k, v)
            })
            .collect(),
    }
}

/// Fig. 4: distinct serverIPs seen serving each second-level domain per
/// time bin.
pub fn servers_over_time(
    db: &FlowDatabase,
    slds: &[DomainName],
    origin: u64,
    bin_micros: u64,
) -> HashMap<DomainName, Vec<(u64, u64)>> {
    let mut out = HashMap::new();
    for sld in slds {
        let mut bins: BinnedDistinct<IpAddr> = BinnedDistinct::new(origin, bin_micros);
        for f in db.by_second_level(sld) {
            bins.add(f.first_ts, f.key.server);
        }
        out.insert(sld.clone(), bins.series());
    }
    out
}

/// One cell of Fig. 9: how often each CDN served a content provider, from
/// one vantage point.
#[derive(Debug, Clone)]
pub struct OrgShare {
    /// Hosting organization ("SELF" when the provider hosts itself).
    pub host: String,
    /// Fraction of the provider's flows served by this host.
    pub flow_share: f64,
    /// Distinct serverIPs used.
    pub servers: usize,
}

/// Fig. 9 row: hosting breakdown of one content provider in one trace.
/// `self_org` is the provider's own organization name in the org database
/// (e.g. `facebook` for facebook.com).
pub fn hosting_breakdown(db: &FlowDatabase, sld: &DomainName, orgdb: &OrgDb) -> Vec<OrgShare> {
    let mut flows_per_host: HashMap<String, u64> = HashMap::new();
    let mut servers_per_host: HashMap<String, HashSet<IpAddr>> = HashMap::new();
    let mut total = 0u64;
    for f in db.by_second_level(sld) {
        let host = match orgdb.lookup(f.key.server) {
            Some(rec) if rec.kind == OrgKind::SelfHosted => "SELF".to_string(),
            Some(rec) => rec.name.clone(),
            None => "unknown".to_string(),
        };
        *flows_per_host.entry(host.clone()).or_default() += 1;
        servers_per_host
            .entry(host)
            .or_default()
            .insert(f.key.server);
        total += 1;
    }
    let mut out: Vec<OrgShare> = flows_per_host
        .into_iter()
        .map(|(host, n)| OrgShare {
            flow_share: n as f64 / total.max(1) as f64,
            servers: servers_per_host[&host].len(),
            host,
        })
        .collect();
    out.sort_by(|a, b| b.flow_share.partial_cmp(&a.flow_share).expect("no NaN"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter::TaggedFlow;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;
    use dnhunter_orgdb::builtin_registry;

    fn flow(fqdn: &str, server: &str, ts: u64) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                "10.0.0.1".parse().unwrap(),
                server.parse().unwrap(),
                50000,
                80,
                IpProtocol::Tcp,
            ),
            fqdn: Some(fqdn.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: None,
            first_ts: ts,
            last_ts: ts + 1,
            packets_c2s: 1,
            packets_s2c: 1,
            bytes_c2s: 10,
            bytes_s2c: 10,
            protocol: AppProtocol::Http,
            tls: None,
            in_warmup: false,
        }
    }

    fn sample_db() -> FlowDatabase {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        // linkedin.com: media1 on akamai (23.x), media on edgecast
        // (93.184.x), www on linkedin itself (216.52.242.x).
        db.push(flow("media1.linkedin.com", "23.1.0.1", 0), &s);
        db.push(flow("media1.linkedin.com", "23.1.0.2", 100), &s);
        db.push(flow("media.linkedin.com", "93.184.216.4", 200), &s);
        db.push(flow("media.linkedin.com", "93.184.216.4", 300), &s);
        db.push(flow("media.linkedin.com", "93.184.216.4", 400), &s);
        db.push(flow("www.linkedin.com", "216.52.242.7", 500), &s);
        db.push(flow("unrelated.org", "8.8.8.8", 600), &s);
        db
    }

    #[test]
    fn algorithm_2_groups_by_fqdn() {
        let db = sample_db();
        let s = SuffixSet::builtin();
        let r = spatial_discovery(&db, &"media1.linkedin.com".parse().unwrap(), &s);
        assert_eq!(r.second_level.to_string(), "linkedin.com");
        assert_eq!(r.org_servers.len(), 4);
        assert_eq!(r.fqdn_servers.len(), 3);
        assert_eq!(
            r.fqdn_servers[&"media1.linkedin.com".parse().unwrap()].len(),
            2
        );
        assert_eq!(
            r.fqdn_servers[&"www.linkedin.com".parse().unwrap()].len(),
            1
        );
    }

    #[test]
    fn hosting_breakdown_matches_fig7_structure() {
        let db = sample_db();
        let orgdb = builtin_registry();
        let shares = hosting_breakdown(&db, &"linkedin.com".parse().unwrap(), &orgdb);
        // 6 linkedin flows: 3 edgecast, 2 akamai, 1 SELF.
        assert_eq!(shares.len(), 3);
        assert_eq!(shares[0].host, "edgecast");
        assert!((shares[0].flow_share - 0.5).abs() < 1e-9);
        assert_eq!(shares[0].servers, 1);
        let self_share = shares.iter().find(|x| x.host == "SELF").unwrap();
        assert!((self_share.flow_share - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn servers_over_time_bins_distinct_ips() {
        let db = sample_db();
        let sld: DomainName = "linkedin.com".parse().unwrap();
        let series = servers_over_time(&db, std::slice::from_ref(&sld), 0, 250);
        let s = &series[&sld];
        // Bin 0 (ts 0-249): 23.1.0.1, 23.1.0.2, 93.184.216.4 → 3 distinct.
        assert_eq!(s[0].1, 3);
        // Bin 1 (250-499): 93.184.216.4 → 1.
        assert_eq!(s[1].1, 1);
        // Bin 2 (500+): www server → 1.
        assert_eq!(s[2].1, 1);
    }

    #[test]
    fn empty_target_yields_empty_report() {
        let db = FlowDatabase::new();
        let s = SuffixSet::builtin();
        let r = spatial_discovery(&db, &"nothing.example.com".parse().unwrap(), &s);
        assert!(r.org_servers.is_empty());
        assert!(r.fqdn_servers.is_empty());
    }
}
