//! Empirical CDFs, the workhorse of Figs. 3, 12 and 13.

/// An empirical cumulative distribution over `f64` samples.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are dropped).
    pub fn new<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after filter"));
        Ecdf { sorted }
    }

    /// From integer samples.
    pub fn from_u64<I: IntoIterator<Item = u64>>(samples: I) -> Self {
        Self::new(samples.into_iter().map(|x| x as f64))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x); 0 for an empty distribution.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (q in `[0,1]`); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Sample minimum / maximum.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evaluate the CDF at log-spaced points between `lo` and `hi` —
    /// exactly how the paper plots Figs. 12–13 (semilog x).
    pub fn log_series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(lo > 0.0 && hi > lo && points >= 2);
        let l0 = lo.ln();
        let l1 = hi.ln();
        (0..points)
            .map(|i| {
                let x = (l0 + (l1 - l0) * i as f64 / (points - 1) as f64).exp();
                (x, self.at(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let c = Ecdf::new([3.0, 1.0, 2.0, 2.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(10.0), 1.0);
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(3.0));
        assert_eq!(c.median(), Some(2.0));
    }

    #[test]
    fn empty_and_nan() {
        let c = Ecdf::new([f64::NAN]);
        assert!(c.is_empty());
        assert_eq!(c.at(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
    }

    #[test]
    fn quantiles() {
        let c = Ecdf::from_u64(1..=100);
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(100.0));
        let q90 = c.quantile(0.9).unwrap();
        assert!((89.0..=91.0).contains(&q90));
    }

    #[test]
    fn log_series_is_monotone() {
        let c = Ecdf::new((1..1000).map(|i| i as f64));
        let series = c.log_series(0.1, 10_000.0, 50);
        assert_eq!(series.len(), 50);
        for w in series.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic]
    fn log_series_rejects_nonpositive_lo() {
        Ecdf::new([1.0]).log_series(0.0, 10.0, 5);
    }
}
