//! §6 supporting analyses: label confusion when one client reaches several
//! FQDNs on the same server, and the answer-list length distribution.

use std::collections::HashMap;
use std::net::IpAddr;

use dnhunter::FlowDatabase;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::DomainName;
use dnhunter_resolver::ResolverStats;

/// Confusion figures, echoing §6's "less than 4% excluding redirections".
#[derive(Debug, Clone, Copy)]
pub struct ConfusionReport {
    /// Fraction of (client, server) pairs that carried more than one FQDN.
    pub ambiguous_pair_fraction: f64,
    /// Same, after excluding pairs whose FQDNs share a second-level domain
    /// (the paper's "http redirection" exclusion: google.com →
    /// www.google.com).
    pub ambiguous_excluding_redirects: f64,
    /// Resolver-level rate of different-FQDN binding replacements.
    pub resolver_replacement_ratio: f64,
}

/// Compute confusion from the flow database plus resolver counters.
pub fn confusion_report(
    db: &FlowDatabase,
    resolver: &ResolverStats,
    suffixes: &SuffixSet,
) -> ConfusionReport {
    let mut pair_fqdns: HashMap<(IpAddr, IpAddr), Vec<&DomainName>> = HashMap::new();
    for f in db.flows() {
        if let Some(fqdn) = &f.fqdn {
            let e = pair_fqdns.entry((f.key.client, f.key.server)).or_default();
            if !e.contains(&fqdn) {
                e.push(fqdn);
            }
        }
    }
    let total = pair_fqdns.len().max(1);
    let mut ambiguous = 0usize;
    let mut ambiguous_cross_org = 0usize;
    for fqdns in pair_fqdns.values() {
        if fqdns.len() > 1 {
            ambiguous += 1;
            let mut slds: Vec<DomainName> = fqdns
                .iter()
                .map(|f| f.second_level_domain(suffixes))
                .collect();
            slds.sort();
            slds.dedup();
            if slds.len() > 1 {
                ambiguous_cross_org += 1;
            }
        }
    }
    ConfusionReport {
        ambiguous_pair_fraction: ambiguous as f64 / total as f64,
        ambiguous_excluding_redirects: ambiguous_cross_org as f64 / total as f64,
        resolver_replacement_ratio: resolver.confusion_ratio(),
    }
}

/// Distribution of answer-list lengths (§6: ~40% of responses carry more
/// than one address; 20–25% carry 2–10; few exceed 30).
#[derive(Debug, Clone, Copy)]
pub struct AnswerListReport {
    pub responses: usize,
    pub fraction_single: f64,
    pub fraction_2_to_10: f64,
    pub fraction_over_10: f64,
    pub max: usize,
}

/// Summarise the sniffer's per-response answer counts.
pub fn answer_list_report(answers_per_response: &[usize]) -> AnswerListReport {
    let n = answers_per_response.len();
    let count = |pred: &dyn Fn(usize) -> bool| {
        answers_per_response.iter().filter(|&&a| pred(a)).count() as f64 / n.max(1) as f64
    };
    AnswerListReport {
        responses: n,
        fraction_single: count(&|a| a == 1),
        fraction_2_to_10: count(&|a| (2..=10).contains(&a)),
        fraction_over_10: count(&|a| a > 10),
        max: answers_per_response.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter::TaggedFlow;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;

    fn flow(client: &str, server: &str, fqdn: &str) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                client.parse().unwrap(),
                server.parse().unwrap(),
                50000,
                80,
                IpProtocol::Tcp,
            ),
            fqdn: Some(fqdn.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: None,
            first_ts: 0,
            last_ts: 1,
            packets_c2s: 1,
            packets_s2c: 1,
            bytes_c2s: 1,
            bytes_s2c: 1,
            protocol: AppProtocol::Http,
            tls: None,
            in_warmup: false,
        }
    }

    #[test]
    fn redirect_pairs_are_excluded() {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        // Pair 1: redirect google.com → www.google.com (same SLD).
        db.push(flow("10.0.0.1", "74.125.1.1", "google.com"), &s);
        db.push(flow("10.0.0.1", "74.125.1.1", "www.google.com"), &s);
        // Pair 2: genuine confusion: two orgs share an EC2 box.
        db.push(flow("10.0.0.2", "54.230.0.1", "farm.zynga.com"), &s);
        db.push(flow("10.0.0.2", "54.230.0.1", "client.dropbox.com"), &s);
        // Pair 3: unambiguous.
        db.push(flow("10.0.0.3", "23.0.0.1", "img.fbcdn.net"), &s);
        let r = confusion_report(&db, &ResolverStats::default(), &s);
        assert!((r.ambiguous_pair_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert!((r.ambiguous_excluding_redirects - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn resolver_ratio_is_passed_through() {
        let s = SuffixSet::builtin();
        let stats = ResolverStats {
            bindings: 100,
            replaced_different_fqdn: 4,
            ..Default::default()
        };
        let r = confusion_report(&FlowDatabase::new(), &stats, &s);
        assert!((r.resolver_replacement_ratio - 0.04).abs() < 1e-12);
        assert_eq!(r.ambiguous_pair_fraction, 0.0);
    }

    #[test]
    fn answer_list_summary() {
        let answers = vec![1, 1, 1, 2, 5, 10, 16, 33, 1, 1];
        let r = answer_list_report(&answers);
        assert_eq!(r.responses, 10);
        assert!((r.fraction_single - 0.5).abs() < 1e-9);
        assert!((r.fraction_2_to_10 - 0.3).abs() < 1e-9);
        assert!((r.fraction_over_10 - 0.2).abs() < 1e-9);
        assert_eq!(r.max, 33);
    }

    #[test]
    fn empty_answers() {
        let r = answer_list_report(&[]);
        assert_eq!(r.responses, 0);
        assert_eq!(r.max, 0);
        assert_eq!(r.fraction_single, 0.0);
    }
}
