//! Plain-text table rendering for the experiment harness.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title and column headers (all left-aligned).
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: vec![Align::Left; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Set column alignments (must match the header count).
    pub fn aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns.to_vec();
        self
    }

    /// Append one row (padded/truncated to the column count).
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let total: usize = widths.iter().sum::<usize>() + 3 * cols.saturating_sub(1);
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "=".repeat(self.title.len().max(total)));
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            pad(&mut out, h, widths[i], self.aligns[i]);
        }
        out.push('\n');
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                pad(&mut out, cell, widths[i], self.aligns[i]);
            }
            out.push('\n');
        }
        out
    }
}

fn pad(out: &mut String, s: &str, width: usize, align: Align) {
    let gap = width.saturating_sub(s.len());
    match align {
        Align::Left => {
            out.push_str(s);
            out.push_str(&" ".repeat(gap));
        }
        Align::Right => {
            out.push_str(&" ".repeat(gap));
            out.push_str(s);
        }
    }
}

/// Format a fraction as a percentage string (`0.923` → `"92%"`).
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Format bytes in a human unit (Tab. 8's MB/GB columns).
pub fn human_bytes(b: u64) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.1}GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1}MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t =
            TextTable::new("Table X", &["name", "value"]).aligns(&[Align::Left, Align::Right]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "12345"]);
        let s = t.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("alpha |     1"));
        assert!(s.contains("b     | 12345"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new("t", &["a", "b", "c"]);
        t.row(&["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn pct_and_bytes() {
        assert_eq!(pct(0.923), "92%");
        assert_eq!(pct(0.0), "0%");
        assert_eq!(human_bytes(500), "500B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0MB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.0GB");
    }
}
