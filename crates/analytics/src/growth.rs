//! Fig. 6: birth processes of unique FQDNs, second-level domains and
//! server addresses over a long observation window.

use std::collections::HashSet;
use std::net::IpAddr;

use dnhunter::FlowDatabase;
use dnhunter_dns::DomainName;

/// Cumulative unique-entity counts sampled per time bin.
#[derive(Debug, Clone)]
pub struct GrowthCurves {
    /// Bin start timestamps (µs).
    pub bin_starts: Vec<u64>,
    pub unique_fqdns: Vec<u64>,
    pub unique_second_levels: Vec<u64>,
    pub unique_servers: Vec<u64>,
}

impl GrowthCurves {
    /// Final totals (the right edge of Fig. 6).
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.unique_fqdns.last().copied().unwrap_or(0),
            self.unique_second_levels.last().copied().unwrap_or(0),
            self.unique_servers.last().copied().unwrap_or(0),
        )
    }

    /// Growth of a curve over its last `k` bins — used to show FQDNs still
    /// growing while servers/organizations have saturated.
    pub fn tail_growth(curve: &[u64], k: usize) -> u64 {
        if curve.len() <= k {
            return curve.last().copied().unwrap_or(0);
        }
        curve[curve.len() - 1] - curve[curve.len() - 1 - k]
    }
}

/// Compute the curves from the labeled flows, binned by `bin_micros`.
pub fn growth_curves(db: &FlowDatabase, origin: u64, bin_micros: u64) -> GrowthCurves {
    assert!(bin_micros > 0);
    // Sort flow indexes by start time.
    let mut order: Vec<usize> = (0..db.flows().len()).collect();
    order.sort_by_key(|&i| db.flows()[i].first_ts);

    let mut fqdns: HashSet<&DomainName> = HashSet::new();
    let mut slds: HashSet<&DomainName> = HashSet::new();
    let mut servers: HashSet<IpAddr> = HashSet::new();

    let mut out = GrowthCurves {
        bin_starts: Vec::new(),
        unique_fqdns: Vec::new(),
        unique_second_levels: Vec::new(),
        unique_servers: Vec::new(),
    };
    let mut current_bin: Option<u64> = None;
    for i in order {
        let f = &db.flows()[i];
        let bin = f.first_ts.saturating_sub(origin) / bin_micros;
        // Emit samples for any bins we passed.
        while current_bin.is_some_and(|b| b < bin) {
            let b = current_bin.expect("checked");
            out.bin_starts.push(origin + b * bin_micros);
            out.unique_fqdns.push(fqdns.len() as u64);
            out.unique_second_levels.push(slds.len() as u64);
            out.unique_servers.push(servers.len() as u64);
            current_bin = Some(b + 1);
        }
        current_bin.get_or_insert(bin);
        if let Some(fqdn) = &f.fqdn {
            fqdns.insert(fqdn);
            // Only servers reached through a resolution count — Fig. 6
            // tracks the DNS-visible universe, not anonymous P2P peers.
            servers.insert(f.key.server);
        }
        if let Some(sld) = &f.second_level {
            slds.insert(sld);
        }
    }
    if let Some(b) = current_bin {
        out.bin_starts.push(origin + b * bin_micros);
        out.unique_fqdns.push(fqdns.len() as u64);
        out.unique_second_levels.push(slds.len() as u64);
        out.unique_servers.push(servers.len() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter::TaggedFlow;
    use dnhunter_dns::suffix::SuffixSet;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;

    fn flow(fqdn: &str, server: &str, ts: u64) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                "10.0.0.1".parse().unwrap(),
                server.parse().unwrap(),
                50000,
                80,
                IpProtocol::Tcp,
            ),
            fqdn: Some(fqdn.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: None,
            first_ts: ts,
            last_ts: ts + 1,
            packets_c2s: 1,
            packets_s2c: 1,
            bytes_c2s: 1,
            bytes_s2c: 1,
            protocol: AppProtocol::Http,
            tls: None,
            in_warmup: false,
        }
    }

    #[test]
    fn curves_are_cumulative_and_monotone() {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        db.push(flow("a.x.com", "1.1.1.1", 0), &s);
        db.push(flow("b.x.com", "1.1.1.1", 150), &s); // new fqdn, same sld+ip
        db.push(flow("a.x.com", "1.1.1.1", 260), &s); // nothing new
        db.push(flow("c.y.org", "2.2.2.2", 350), &s); // all new
        let g = growth_curves(&db, 0, 100);
        assert_eq!(g.unique_fqdns, vec![1, 2, 2, 3]);
        assert_eq!(g.unique_second_levels, vec![1, 1, 1, 2]);
        assert_eq!(g.unique_servers, vec![1, 1, 1, 2]);
        assert_eq!(g.totals(), (3, 2, 2));
        for curve in [&g.unique_fqdns, &g.unique_second_levels, &g.unique_servers] {
            for w in curve.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn tail_growth_measures_recent_increase() {
        assert_eq!(GrowthCurves::tail_growth(&[1, 5, 10, 20], 2), 15);
        assert_eq!(GrowthCurves::tail_growth(&[7], 5), 7);
        assert_eq!(GrowthCurves::tail_growth(&[], 2), 0);
    }

    #[test]
    fn empty_db() {
        let g = growth_curves(&FlowDatabase::new(), 0, 100);
        assert!(g.bin_starts.is_empty());
        assert_eq!(g.totals(), (0, 0, 0));
    }
}
