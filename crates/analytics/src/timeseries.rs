//! Time-binned counters and distinct-counters (Figs. 4, 5, 11, 14).

use std::collections::HashSet;
use std::hash::Hash;

/// Counts events per fixed-width time bin.
#[derive(Debug, Clone)]
pub struct BinnedCounts {
    origin: u64,
    bin_micros: u64,
    counts: Vec<u64>,
}

impl BinnedCounts {
    /// Bins of `bin_micros` starting at `origin` (µs).
    pub fn new(origin: u64, bin_micros: u64) -> Self {
        assert!(bin_micros > 0);
        BinnedCounts {
            origin,
            bin_micros,
            counts: Vec::new(),
        }
    }

    /// Record one event at `ts` (events before the origin are clamped into
    /// the first bin).
    pub fn add(&mut self, ts: u64) {
        let idx = (ts.saturating_sub(self.origin) / self.bin_micros) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// (bin start ts, count) pairs.
    pub fn series(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.origin + i as u64 * self.bin_micros, c))
            .collect()
    }

    /// Largest bin count.
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

/// Counts *distinct* keys per time bin (distinct serverIPs per 10 min,
/// distinct FQDNs per CDN per 10 min, …).
#[derive(Debug, Clone)]
pub struct BinnedDistinct<K: Eq + Hash + Clone> {
    origin: u64,
    bin_micros: u64,
    bins: Vec<HashSet<K>>,
}

impl<K: Eq + Hash + Clone> BinnedDistinct<K> {
    /// Bins of `bin_micros` starting at `origin`.
    pub fn new(origin: u64, bin_micros: u64) -> Self {
        assert!(bin_micros > 0);
        BinnedDistinct {
            origin,
            bin_micros,
            bins: Vec::new(),
        }
    }

    /// Record that `key` was seen at `ts`.
    pub fn add(&mut self, ts: u64, key: K) {
        let idx = (ts.saturating_sub(self.origin) / self.bin_micros) as usize;
        if idx >= self.bins.len() {
            self.bins.resize_with(idx + 1, HashSet::new);
        }
        self.bins[idx].insert(key);
    }

    /// Distinct count per bin.
    pub fn counts(&self) -> Vec<u64> {
        self.bins.iter().map(|b| b.len() as u64).collect()
    }

    /// (bin start ts, distinct count) pairs.
    pub fn series(&self) -> Vec<(u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, b)| (self.origin + i as u64 * self.bin_micros, b.len() as u64))
            .collect()
    }

    /// Largest distinct count across bins.
    pub fn peak(&self) -> u64 {
        self.bins.iter().map(|b| b.len() as u64).max().unwrap_or(0)
    }
}

/// 10 minutes in microseconds — the paper's favourite bin width.
pub const TEN_MINUTES: u64 = 600 * 1_000_000;
/// 4 hours in microseconds (Fig. 11's tracker-activity bins).
pub const FOUR_HOURS: u64 = 4 * 3600 * 1_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_fill_bins() {
        let mut b = BinnedCounts::new(1000, 100);
        b.add(1000);
        b.add(1099);
        b.add(1100);
        b.add(1500);
        assert_eq!(b.counts(), &[2, 1, 0, 0, 0, 1]);
        assert_eq!(b.peak(), 2);
        let s = b.series();
        assert_eq!(s[0], (1000, 2));
        assert_eq!(s[5], (1500, 1));
    }

    #[test]
    fn early_events_clamp_to_first_bin() {
        let mut b = BinnedCounts::new(1000, 100);
        b.add(50);
        assert_eq!(b.counts(), &[1]);
    }

    #[test]
    fn distinct_counts_dedupe_within_bin() {
        let mut b: BinnedDistinct<&str> = BinnedDistinct::new(0, 100);
        b.add(10, "a");
        b.add(20, "a");
        b.add(30, "b");
        b.add(150, "a");
        assert_eq!(b.counts(), vec![2, 1]);
        assert_eq!(b.peak(), 2);
    }

    #[test]
    fn empty_series() {
        let b = BinnedCounts::new(0, 10);
        assert!(b.series().is_empty());
        assert_eq!(b.peak(), 0);
    }
}
