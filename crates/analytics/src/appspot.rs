//! The appspot.com case study — paper §5.6: Tab. 8, Figs. 10–11.
//!
//! Using only the flow labels, split the Google-hosted apps into
//! BitTorrent trackers and legitimate services, build the tag cloud of app
//! names, and reconstruct the tracker activity timeline.

use std::collections::{BTreeMap, HashMap, HashSet};

use dnhunter::FlowDatabase;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::tokenizer::tokenize_fqdn;
use dnhunter_dns::DomainName;
use dnhunter_flow::AppProtocol;

/// Tab. 8: per service class, distinct services, flows and bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClassRow {
    pub services: usize,
    pub flows: u64,
    pub bytes_c2s: u64,
    pub bytes_s2c: u64,
}

/// The appspot analysis output.
#[derive(Debug)]
pub struct AppspotReport {
    pub trackers: ServiceClassRow,
    pub general: ServiceClassRow,
    /// Fig. 10: token → score (font size in the word cloud).
    pub tag_cloud: Vec<(String, f64)>,
    /// Fig. 11: per tracker FQDN (ordered by first appearance), the set of
    /// active bins.
    pub tracker_timeline: Vec<(DomainName, Vec<u64>)>,
    /// Bin width used for the timeline (µs).
    pub timeline_bin_micros: u64,
}

/// Classify one appspot app as a tracker from its observed traffic: any
/// flow DPI-classified P2P (tracker announces) marks the FQDN.
fn tracker_fqdns(db: &FlowDatabase, sld: &DomainName) -> HashSet<DomainName> {
    let mut out = HashSet::new();
    for f in db.by_second_level(sld) {
        if f.protocol == AppProtocol::P2p {
            if let Some(fqdn) = &f.fqdn {
                out.insert(fqdn.clone());
            }
        }
    }
    out
}

/// Run the full §5.6 analysis over a (live) flow database.
pub fn appspot_report(
    db: &FlowDatabase,
    suffixes: &SuffixSet,
    origin: u64,
    timeline_bin_micros: u64,
) -> AppspotReport {
    let sld: DomainName = "appspot.com".parse().expect("constant name");
    let trackers = tracker_fqdns(db, &sld);

    let mut tracker_row = ServiceClassRow {
        services: 0,
        flows: 0,
        bytes_c2s: 0,
        bytes_s2c: 0,
    };
    let mut general_row = tracker_row;
    let mut tracker_services: HashSet<&DomainName> = HashSet::new();
    let mut general_services: HashSet<&DomainName> = HashSet::new();
    let mut token_scores: HashMap<(String, std::net::IpAddr), u64> = HashMap::new();
    let mut timeline: BTreeMap<DomainName, (u64, HashSet<u64>)> = BTreeMap::new();

    for f in db.by_second_level(&sld) {
        let Some(fqdn) = &f.fqdn else { continue };
        let is_tracker = trackers.contains(fqdn);
        let (row, services) = if is_tracker {
            (&mut tracker_row, &mut tracker_services)
        } else {
            (&mut general_row, &mut general_services)
        };
        services.insert(fqdn);
        row.flows += 1;
        row.bytes_c2s += f.bytes_c2s;
        row.bytes_s2c += f.bytes_s2c;
        // Fig. 10 tokens, per-client for the Eq. (1) damping.
        for token in tokenize_fqdn(fqdn, suffixes) {
            *token_scores.entry((token, f.key.client)).or_default() += 1;
        }
        // Fig. 11 timeline for trackers.
        if is_tracker {
            let bin = f.first_ts.saturating_sub(origin) / timeline_bin_micros;
            let entry = timeline
                .entry(fqdn.clone())
                .or_insert_with(|| (f.first_ts, HashSet::new()));
            entry.0 = entry.0.min(f.first_ts);
            entry.1.insert(bin);
        }
    }
    tracker_row.services = tracker_services.len();
    general_row.services = general_services.len();

    let mut cloud: HashMap<String, f64> = HashMap::new();
    for ((token, _client), n) in token_scores {
        *cloud.entry(token).or_default() += ((n + 1) as f64).ln();
    }
    let mut tag_cloud: Vec<(String, f64)> = cloud.into_iter().collect();
    tag_cloud.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));

    // Order trackers by first appearance, as Fig. 11 assigns ids.
    let mut tl: Vec<(DomainName, (u64, HashSet<u64>))> = timeline.into_iter().collect();
    tl.sort_by_key(|(_, (first, _))| *first);
    let tracker_timeline = tl
        .into_iter()
        .map(|(fqdn, (_, bins))| {
            let mut b: Vec<u64> = bins.into_iter().collect();
            b.sort_unstable();
            (fqdn, b)
        })
        .collect();

    AppspotReport {
        trackers: tracker_row,
        general: general_row,
        tag_cloud,
        tracker_timeline,
        timeline_bin_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter::TaggedFlow;
    use dnhunter_flow::FlowKey;
    use dnhunter_net::IpProtocol;

    fn flow(fqdn: &str, proto: AppProtocol, ts: u64, c2s: u64, s2c: u64) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                "10.0.0.1".parse().unwrap(),
                "74.125.3.3".parse().unwrap(),
                50000,
                80,
                IpProtocol::Tcp,
            ),
            fqdn: Some(fqdn.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: None,
            first_ts: ts,
            last_ts: ts + 1,
            packets_c2s: 1,
            packets_s2c: 1,
            bytes_c2s: c2s,
            bytes_s2c: s2c,
            protocol: proto,
            tls: None,
            in_warmup: false,
        }
    }

    const HOUR: u64 = 3600 * 1_000_000;

    fn db() -> FlowDatabase {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        // A tracker announcing in two separate 4h bins (plus one HTTP flow
        // to the same app, which still counts as tracker traffic).
        db.push(
            flow(
                "open-tracker-1.appspot.com",
                AppProtocol::P2p,
                0,
                1000,
                2000,
            ),
            &s,
        );
        db.push(
            flow(
                "open-tracker-1.appspot.com",
                AppProtocol::P2p,
                5 * HOUR,
                1000,
                2000,
            ),
            &s,
        );
        db.push(
            flow(
                "open-tracker-1.appspot.com",
                AppProtocol::Http,
                HOUR,
                500,
                500,
            ),
            &s,
        );
        // A later-born tracker.
        db.push(
            flow(
                "rlskingbt-2.appspot.com",
                AppProtocol::P2p,
                9 * HOUR,
                800,
                900,
            ),
            &s,
        );
        // Legit apps: few flows, fat downloads.
        db.push(
            flow("game-1.appspot.com", AppProtocol::Http, 0, 2000, 90_000),
            &s,
        );
        db.push(
            flow("tool-4.appspot.com", AppProtocol::Http, HOUR, 1500, 60_000),
            &s,
        );
        // Non-appspot noise must be ignored.
        db.push(flow("www.google.com", AppProtocol::Http, 0, 1, 1), &s);
        db
    }

    #[test]
    fn table_8_shape() {
        let s = SuffixSet::builtin();
        let r = appspot_report(&db(), &s, 0, 4 * HOUR);
        assert_eq!(r.trackers.services, 2);
        assert_eq!(r.general.services, 2);
        // Trackers have more flows but fewer bytes than general apps
        // (Tab. 8's headline contrast).
        assert!(r.trackers.flows > r.general.flows);
        assert!(r.general.bytes_s2c > r.trackers.bytes_s2c);
        // Tracker traffic is relatively upload-heavy.
        let t_ratio = r.trackers.bytes_c2s as f64 / r.trackers.bytes_s2c as f64;
        let g_ratio = r.general.bytes_c2s as f64 / r.general.bytes_s2c as f64;
        assert!(t_ratio > g_ratio * 3.0);
    }

    #[test]
    fn tag_cloud_contains_app_tokens() {
        let s = SuffixSet::builtin();
        let r = appspot_report(&db(), &s, 0, 4 * HOUR);
        let tokens: Vec<&str> = r.tag_cloud.iter().map(|(t, _)| t.as_str()).collect();
        assert!(tokens.contains(&"open"));
        assert!(tokens.contains(&"tracker"));
        assert!(tokens.contains(&"rlskingbt"));
        assert!(tokens.contains(&"gameN") || tokens.contains(&"game"));
        assert!(!tokens.contains(&"www")); // non-appspot excluded
    }

    #[test]
    fn timeline_is_ordered_by_first_seen_with_active_bins() {
        let s = SuffixSet::builtin();
        let r = appspot_report(&db(), &s, 0, 4 * HOUR);
        assert_eq!(r.tracker_timeline.len(), 2);
        assert_eq!(
            r.tracker_timeline[0].0.to_string(),
            "open-tracker-1.appspot.com"
        );
        // Active in bin 0 (t=0 and t=1h) and bin 1 (t=5h).
        assert_eq!(r.tracker_timeline[0].1, vec![0, 1]);
        assert_eq!(r.tracker_timeline[1].1, vec![2]); // t=9h → bin 2
    }

    #[test]
    fn empty_db_is_all_zero() {
        let s = SuffixSet::builtin();
        let r = appspot_report(&FlowDatabase::new(), &s, 0, 4 * HOUR);
        assert_eq!(r.trackers.flows, 0);
        assert_eq!(r.general.services, 0);
        assert!(r.tag_cloud.is_empty());
        assert!(r.tracker_timeline.is_empty());
    }
}
