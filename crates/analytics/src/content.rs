//! Content discovery — paper Algorithm 3, Fig. 5 and Tab. 5: what does a
//! CDN/cloud host, seen from this vantage point?

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use dnhunter::FlowDatabase;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::DomainName;
use dnhunter_orgdb::OrgDb;

use crate::timeseries::BinnedDistinct;

/// Granularity at which Algorithm 3 aggregates names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameGranularity {
    /// Whole FQDNs.
    Fqdn,
    /// Second-level domains (organizations) — the Tab. 5 view.
    SecondLevel,
}

/// CONTENT_DISCOVERY(ServerIPSet): rank the names served by a set of
/// server addresses by flow count (the paper's token `score.update()` over
/// database hits).
pub fn content_discovery(
    db: &FlowDatabase,
    servers: &[IpAddr],
    granularity: NameGranularity,
    suffixes: &SuffixSet,
) -> Vec<(DomainName, u64)> {
    let mut scores: HashMap<DomainName, u64> = HashMap::new();
    for &ip in servers {
        for f in db.by_server(ip) {
            let Some(fqdn) = &f.fqdn else { continue };
            let key = match granularity {
                NameGranularity::Fqdn => fqdn.clone(),
                NameGranularity::SecondLevel => fqdn.second_level_domain(suffixes),
            };
            *scores.entry(key).or_default() += 1;
        }
    }
    let mut out: Vec<(DomainName, u64)> = scores.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Every server address the database attributes to `org`.
pub fn servers_of_org(db: &FlowDatabase, orgdb: &OrgDb, org: &str) -> Vec<IpAddr> {
    let mut out: Vec<IpAddr> = db
        .servers()
        .filter(|ip| orgdb.org_name(*ip) == org)
        .collect();
    out.sort();
    out
}

/// Tab. 5: the top-k second-level domains hosted on an organization's
/// servers, with their share of the org's labelled flows.
pub fn top_domains_on_org(
    db: &FlowDatabase,
    orgdb: &OrgDb,
    org: &str,
    k: usize,
    suffixes: &SuffixSet,
) -> Vec<(DomainName, f64)> {
    let servers = servers_of_org(db, orgdb, org);
    let ranked = content_discovery(db, &servers, NameGranularity::SecondLevel, suffixes);
    let total: u64 = ranked.iter().map(|(_, n)| n).sum();
    ranked
        .into_iter()
        .take(k)
        .map(|(d, n)| (d, n as f64 / total.max(1) as f64))
        .collect()
}

/// Fig. 5: distinct FQDNs served per organization per time bin.
pub fn fqdns_per_org_over_time(
    db: &FlowDatabase,
    orgdb: &OrgDb,
    orgs: &[&str],
    origin: u64,
    bin_micros: u64,
) -> HashMap<String, Vec<(u64, u64)>> {
    let mut bins: HashMap<&str, BinnedDistinct<DomainName>> = orgs
        .iter()
        .map(|&o| (o, BinnedDistinct::new(origin, bin_micros)))
        .collect();
    for f in db.flows() {
        let Some(fqdn) = &f.fqdn else { continue };
        let org = orgdb.org_name(f.key.server);
        if let Some(b) = bins.get_mut(org) {
            b.add(f.first_ts, fqdn.clone());
        }
    }
    bins.into_iter()
        .map(|(k, v)| (k.to_string(), v.series()))
        .collect()
}

/// Total distinct FQDNs an organization served over the whole trace
/// ("In total, Amazon served 7995 FQDN in the whole day").
pub fn total_fqdns_on_org(db: &FlowDatabase, orgdb: &OrgDb, org: &str) -> usize {
    let mut set: HashSet<&DomainName> = HashSet::new();
    for f in db.flows() {
        if let Some(fqdn) = &f.fqdn {
            if orgdb.org_name(f.key.server) == org {
                set.insert(fqdn);
            }
        }
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter::TaggedFlow;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;
    use dnhunter_orgdb::builtin_registry;

    fn flow(fqdn: &str, server: &str, ts: u64) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                "10.0.0.1".parse().unwrap(),
                server.parse().unwrap(),
                50000,
                80,
                IpProtocol::Tcp,
            ),
            fqdn: Some(fqdn.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: None,
            first_ts: ts,
            last_ts: ts + 1,
            packets_c2s: 1,
            packets_s2c: 1,
            bytes_c2s: 10,
            bytes_s2c: 10,
            protocol: AppProtocol::Http,
            tls: None,
            in_warmup: false,
        }
    }

    fn amazon_db() -> FlowDatabase {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        // Amazon-hosted tenants (54.224.0.0/12 is amazon in the plan).
        db.push(flow("d1.cloudfront.net", "54.230.0.1", 0), &s);
        db.push(flow("d2.cloudfront.net", "54.230.0.1", 100), &s);
        db.push(flow("d2.cloudfront.net", "54.230.0.2", 150), &s);
        db.push(flow("cdn.playfish.com", "54.230.0.2", 200), &s);
        db.push(flow("farm.zynga.com", "54.230.0.3", 300), &s);
        // Not Amazon.
        db.push(flow("www.facebook.com", "66.220.144.9", 400), &s);
        db
    }

    #[test]
    fn algorithm_3_ranks_names_by_flows() {
        let db = amazon_db();
        let s = SuffixSet::builtin();
        let servers: Vec<IpAddr> = vec![
            "54.230.0.1".parse().unwrap(),
            "54.230.0.2".parse().unwrap(),
            "54.230.0.3".parse().unwrap(),
        ];
        let by_fqdn = content_discovery(&db, &servers, NameGranularity::Fqdn, &s);
        assert_eq!(by_fqdn[0].0.to_string(), "d2.cloudfront.net");
        assert_eq!(by_fqdn[0].1, 2);
        let by_sld = content_discovery(&db, &servers, NameGranularity::SecondLevel, &s);
        assert_eq!(by_sld[0].0.to_string(), "cloudfront.net");
        assert_eq!(by_sld[0].1, 3);
    }

    #[test]
    fn top_domains_on_amazon_excludes_facebook() {
        let db = amazon_db();
        let orgdb = builtin_registry();
        let s = SuffixSet::builtin();
        let top = top_domains_on_org(&db, &orgdb, "amazon", 10, &s);
        assert_eq!(top[0].0.to_string(), "cloudfront.net");
        assert!((top[0].1 - 0.6).abs() < 1e-9); // 3 of 5 amazon flows
        assert!(top.iter().all(|(d, _)| d.to_string() != "facebook.com"));
    }

    #[test]
    fn fig5_series_counts_distinct_fqdns_per_bin() {
        let db = amazon_db();
        let orgdb = builtin_registry();
        let series = fqdns_per_org_over_time(&db, &orgdb, &["amazon", "facebook"], 0, 200);
        let amazon = &series["amazon"];
        // Bin 0 (0-199): d1, d2 → 2 distinct FQDNs.
        assert_eq!(amazon[0].1, 2);
        // Bin 1 (200-399): playfish + zynga → 2.
        assert_eq!(amazon[1].1, 2);
        let facebook = &series["facebook"];
        assert_eq!(facebook.iter().map(|x| x.1).sum::<u64>(), 1);
    }

    #[test]
    fn totals() {
        let db = amazon_db();
        let orgdb = builtin_registry();
        assert_eq!(total_fqdns_on_org(&db, &orgdb, "amazon"), 4);
        assert_eq!(total_fqdns_on_org(&db, &orgdb, "facebook"), 1);
        assert_eq!(total_fqdns_on_org(&db, &orgdb, "akamai"), 0);
        assert_eq!(servers_of_org(&db, &orgdb, "amazon").len(), 3);
    }
}
