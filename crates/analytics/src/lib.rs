//! # dnhunter-analytics
//!
//! The *off-line analyzer* of DN-Hunter (paper Fig. 1, §4–§5): a set of
//! analytics over the labeled-flow database produced by the real-time
//! sniffer.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`spatial`] | Algorithm 2, Figs. 4 & 9 — which servers/CDNs serve a domain |
//! | [`content`] | Algorithm 3, Fig. 5, Tab. 5 — what a CDN/cloud hosts |
//! | [`tags`] | Algorithm 4 + Eq. (1), Tabs. 6–7 — service tags per port |
//! | [`tree`] | Figs. 7–8 — domain-token trees with CDN grouping |
//! | [`degree`] | Fig. 3 — FQDN↔serverIP degree CDFs |
//! | [`growth`] | Fig. 6 — unique FQDN / 2nd-level / serverIP birth curves |
//! | [`delay`] | Figs. 12–13, Tab. 9 — DNS-to-flow delays, useless DNS |
//! | [`appspot`] | §5.6, Tab. 8, Figs. 10–11 — the appspot.com case study |
//! | [`confusion`] | §6 — label-confusion and answer-list statistics |
//! | [`anomaly`] | §4.1's sketched application: DNS hijack/poisoning detection |
//! | [`streaming`] | the one-pass in-stream variant of spatial/content/tags/growth/delay, plus offline-equivalence checks |
//! | [`cdf`], [`timeseries`], [`report`] | shared statistical/rendering plumbing |

#![forbid(unsafe_code)]

pub mod anomaly;
pub mod appspot;
pub mod cdf;
pub mod confusion;
pub mod content;
pub mod degree;
pub mod delay;
pub mod growth;
pub mod report;
pub mod spatial;
pub mod streaming;
pub mod tags;
pub mod timeseries;
pub mod tree;

pub use cdf::Ecdf;
pub use report::TextTable;
pub use timeseries::BinnedCounts;
