//! Streaming analytics: re-exports of the in-core one-pass sink plus the
//! offline reference aggregates the equivalence tests compare it against.
//!
//! The [`StreamingAnalytics`] implementation lives in `dnhunter::stream`
//! (the engine feeds it, so it must sit below this crate in the dependency
//! graph); this module is its analytics-side home. [`offline_aggregates`]
//! recomputes the same state shapes from a finished [`SnifferReport`]
//! database using only this crate's offline modules, and
//! [`check_equivalence`] asserts the two agree — exactly for the exact
//! aggregates (spatial / content / tags / growth / delay counters), within
//! a declared float tolerance for the Eq. 1 scores (the offline module
//! sums logs in hash-map order, the streaming side in ordered-map order).

use std::collections::BTreeMap;
use std::net::IpAddr;

use dnhunter::SnifferReport;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::tokenizer::tokenize_fqdn;
use dnhunter_dns::DomainName;
use dnhunter_orgdb::OrgDb;
use dnhunter_telemetry::Log2Hist;

pub use dnhunter::stream::{
    FlowSink, RetractError, StreamGrowth, StreamingAnalytics, StreamingConfig, DELAY_HIST_BUCKETS,
};
pub use dnhunter::window::{WindowConfig, WindowSpan, WindowedAnalytics, MAX_LIVE_BUCKETS};

use crate::growth::growth_curves;
use crate::tags::token_scores;

/// Absolute tolerance for Eq. 1 score comparisons (float sum order).
pub const SCORE_TOLERANCE: f64 = 1e-9;

/// The streaming state shapes, recomputed offline from the full database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflineAggregates {
    /// Alg. 2: FQDN → (server → labeled-flow count). The key set of the
    /// inner map is the paper's server set; the counts are what make the
    /// streaming side's state retractable, so the reference mirrors them.
    pub fqdn_servers: BTreeMap<DomainName, BTreeMap<IpAddr, u64>>,
    /// Alg. 2: 2nd-level domain → (server → labeled-flow count).
    pub sld_servers: BTreeMap<DomainName, BTreeMap<IpAddr, u64>>,
    /// Alg. 3: organization → (2nd-level domain → labeled flow count).
    pub org_content: BTreeMap<String, BTreeMap<DomainName, u64>>,
    /// Alg. 4: port → token → client → flow count.
    pub tag_counts: BTreeMap<u16, BTreeMap<String, BTreeMap<IpAddr, u64>>>,
}

/// Recompute the streaming aggregates from a finished report's database —
/// the ground truth the one-pass sink must reproduce.
pub fn offline_aggregates(
    report: &SnifferReport,
    orgdb: &OrgDb,
    suffixes: &SuffixSet,
) -> OfflineAggregates {
    let mut out = OfflineAggregates {
        fqdn_servers: BTreeMap::new(),
        sld_servers: BTreeMap::new(),
        org_content: BTreeMap::new(),
        tag_counts: BTreeMap::new(),
    };
    for f in report.database.flows() {
        let Some(fqdn) = &f.fqdn else { continue };
        let sld = f
            .second_level
            .clone()
            .unwrap_or_else(|| fqdn.second_level_domain(suffixes));
        let server = f.key.server;
        *out.fqdn_servers
            .entry(fqdn.clone())
            .or_default()
            .entry(server)
            .or_default() += 1;
        *out.sld_servers
            .entry(sld.clone())
            .or_default()
            .entry(server)
            .or_default() += 1;
        *out.org_content
            .entry(orgdb.org_name(server).to_string())
            .or_default()
            .entry(sld)
            .or_default() += 1;
        // Mirror the streaming sink: apex names tokenize to nothing, and a
        // port entry holding only void values would break retraction's
        // remove-when-empty key accounting, so neither side stores one.
        let fqdn_tokens = tokenize_fqdn(fqdn, suffixes);
        if !fqdn_tokens.is_empty() {
            let tokens = out.tag_counts.entry(f.key.server_port).or_default();
            for token in fqdn_tokens {
                *tokens
                    .entry(token)
                    .or_default()
                    .entry(f.key.client)
                    .or_default() += 1;
            }
        }
    }
    out
}

/// Build a [`Log2Hist`] (streaming layout) over raw offline delay samples.
pub fn hist_of(samples: &[u64]) -> Log2Hist {
    let mut h = Log2Hist::new(DELAY_HIST_BUCKETS);
    for &v in samples {
        h.record(v);
    }
    h
}

/// Assert streaming state equals the offline modules' output for one run.
/// Returns a list of human-readable mismatch descriptions (empty ⇒ fully
/// equivalent). `streaming` must come from the same trace as `report`.
pub fn check_equivalence(
    streaming: &StreamingAnalytics,
    report: &SnifferReport,
    orgdb: &OrgDb,
    suffixes: &SuffixSet,
) -> Vec<String> {
    let mut errs = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            errs.push(msg);
        }
    };

    check(
        streaming.dropped_entities() == 0,
        format!(
            "entity cap engaged ({} drops): aggregates are no longer exact",
            streaming.dropped_entities()
        ),
    );

    // Totals.
    let db = &report.database;
    check(
        streaming.flows() == db.len() as u64,
        format!(
            "flows: streaming {} vs offline {}",
            streaming.flows(),
            db.len()
        ),
    );
    let labeled = db.flows().iter().filter(|f| f.is_tagged()).count() as u64;
    check(
        streaming.labeled_flows() == labeled,
        format!(
            "labeled flows: streaming {} vs offline {labeled}",
            streaming.labeled_flows()
        ),
    );

    // Exact aggregates: spatial, content, tag counts.
    let offline = offline_aggregates(report, orgdb, suffixes);
    check(
        streaming.fqdn_servers() == &offline.fqdn_servers,
        format!(
            "Alg. 2 fqdn→servers: streaming {} keys vs offline {} keys",
            streaming.fqdn_servers().len(),
            offline.fqdn_servers.len()
        ),
    );
    check(
        streaming.sld_servers() == &offline.sld_servers,
        format!(
            "Alg. 2 sld→servers: streaming {} keys vs offline {} keys",
            streaming.sld_servers().len(),
            offline.sld_servers.len()
        ),
    );
    check(
        streaming.org_content() == &offline.org_content,
        format!(
            "Alg. 3 org→content: streaming {} orgs vs offline {} orgs",
            streaming.org_content().len(),
            offline.org_content.len()
        ),
    );
    check(
        streaming.tag_counts() == &offline.tag_counts,
        format!(
            "Alg. 4 per-client token counts: streaming {} ports vs offline {} ports",
            streaming.tag_counts().len(),
            offline.tag_counts.len()
        ),
    );

    // Eq. 1 scores, within float-sum-order tolerance.
    for &port in streaming.tag_counts().keys() {
        let offline_scores = token_scores(db, port, suffixes);
        let stream_scores = streaming.token_scores(port);
        check(
            stream_scores.len() == offline_scores.len(),
            format!(
                "port {port}: {} streaming tokens vs {} offline",
                stream_scores.len(),
                offline_scores.len()
            ),
        );
        for (token, score) in &stream_scores {
            match offline_scores.get(token) {
                Some(o) => check(
                    (score - o).abs() <= SCORE_TOLERANCE,
                    format!("port {port} token {token}: score {score} vs offline {o}"),
                ),
                None => check(false, format!("port {port} token {token}: missing offline")),
            }
        }
    }

    // Growth curves, exactly (same origin + bin width as the sink).
    if let Some(origin) = report.trace_start {
        let offline_growth = growth_curves(db, origin, streaming.config().snapshot_interval_micros);
        let g = streaming.growth();
        check(
            g.bin_starts == offline_growth.bin_starts,
            format!(
                "growth bins: streaming {} vs offline {}",
                g.bin_starts.len(),
                offline_growth.bin_starts.len()
            ),
        );
        check(
            g.unique_fqdns == offline_growth.unique_fqdns,
            "growth unique_fqdns curve mismatch".to_string(),
        );
        check(
            g.unique_second_levels == offline_growth.unique_second_levels,
            "growth unique_second_levels curve mismatch".to_string(),
        );
        check(
            g.unique_servers == offline_growth.unique_servers,
            "growth unique_servers curve mismatch".to_string(),
        );
    }

    // Delay summaries: histograms over the identical sample multisets, and
    // the Tab. 9 useless-DNS counters.
    check(
        streaming.first_flow_hist() == &hist_of(&report.delays.first_flow_delays),
        "first-flow delay histogram mismatch".to_string(),
    );
    check(
        streaming.any_flow_hist() == &hist_of(&report.delays.any_flow_delays),
        "any-flow delay histogram mismatch".to_string(),
    );
    check(
        streaming.answered_responses() == report.delays.answered_responses,
        format!(
            "answered responses: streaming {} vs offline {}",
            streaming.answered_responses(),
            report.delays.answered_responses
        ),
    );
    check(
        streaming.useless_responses() == report.delays.useless_responses,
        format!(
            "useless responses: streaming {} vs offline {}",
            streaming.useless_responses(),
            report.delays.useless_responses
        ),
    );

    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter::{RealTimeSniffer, SnifferConfig};
    use dnhunter_dns::{codec, DnsMessage, QClass, QType, RData, ResourceRecord};
    use dnhunter_net::{build_tcp_v4, build_udp_v4, MacAddr, TcpFlags};
    use dnhunter_orgdb::builtin_registry;
    use std::net::Ipv4Addr;

    #[test]
    fn streaming_matches_offline_on_a_tiny_trace() {
        let mut sniffer = RealTimeSniffer::new(SnifferConfig {
            warmup_micros: 0,
            ..SnifferConfig::default()
        });
        sniffer.set_sink(Box::new(StreamingAnalytics::new(StreamingConfig {
            snapshot_interval_micros: 1_000_000,
            ..StreamingConfig::default()
        })));
        let client: Ipv4Addr = "10.0.0.5".parse().unwrap();
        let dns: Ipv4Addr = "192.0.2.53".parse().unwrap();
        let web: Ipv4Addr = "93.184.216.34".parse().unwrap();
        let q = DnsMessage::query(1, "www.example.com".parse().unwrap(), QType::A);
        let resp = DnsMessage::answer_to(
            &q,
            vec![ResourceRecord {
                name: "www.example.com".parse().unwrap(),
                class: QClass::In,
                ttl: 60,
                rdata: RData::A(web),
            }],
        );
        let frame = build_udp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            dns,
            client,
            53,
            40000,
            &codec::encode(&resp).unwrap(),
        )
        .unwrap();
        sniffer.process_frame(1_000_000, &frame);
        let syn = build_tcp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            client,
            web,
            51000,
            443,
            1,
            0,
            TcpFlags::SYN,
            &[],
        )
        .unwrap();
        sniffer.process_frame(1_200_000, &syn);
        let (report, sinks) = sniffer.finish_with_sinks();
        let streaming = StreamingAnalytics::fold(sinks).expect("sink installed");
        let errs = check_equivalence(
            &streaming,
            &report,
            &builtin_registry(),
            &SuffixSet::builtin(),
        );
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(streaming.labeled_flows(), 1);
        assert_eq!(streaming.answered_responses(), 1);
    }
}
