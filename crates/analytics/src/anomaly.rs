//! DNS anomaly detection — the paper's §4.1 sketch made concrete:
//!
//! > "consider the case of DNS cache poisoning where a response for certain
//! > FQDN suddenly changes and is different from what was seen by DN-Hunter
//! > in the past. We can easily flag this scenario as an anomaly."
//!
//! The detector keeps, per FQDN, the set of organizations that historically
//! served it; a resolution landing in an organization never seen for that
//! name (after a learning period) is flagged.

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use dnhunter_dns::DomainName;
use dnhunter_orgdb::OrgDb;
use serde::{Deserialize, Serialize};

/// One flagged resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Anomaly {
    pub fqdn: DomainName,
    pub server: IpAddr,
    /// Organization the suspicious address belongs to.
    pub new_org: String,
    /// Organizations seen for this name during learning.
    pub known_orgs: Vec<String>,
    /// Timestamp (µs) of the offending observation.
    pub ts: u64,
}

/// Streaming detector over (fqdn, serverIP) observations.
pub struct AnomalyDetector<'a> {
    orgdb: &'a OrgDb,
    /// Observations to accumulate per FQDN before enforcement starts.
    learning_observations: u32,
    history: HashMap<DomainName, (u32, HashSet<String>)>,
    anomalies: Vec<Anomaly>,
}

impl<'a> AnomalyDetector<'a> {
    /// A detector that trusts the first `learning_observations` sightings
    /// of each FQDN (3 is a reasonable default: multi-CDN names learn all
    /// their homes quickly).
    pub fn new(orgdb: &'a OrgDb, learning_observations: u32) -> Self {
        AnomalyDetector {
            orgdb,
            learning_observations: learning_observations.max(1),
            history: HashMap::new(),
            anomalies: Vec::new(),
        }
    }

    /// Feed one observation (a DNS answer binding or a tagged flow).
    /// Returns the anomaly if this observation was flagged.
    pub fn observe(&mut self, fqdn: &DomainName, server: IpAddr, ts: u64) -> Option<Anomaly> {
        let org = self.orgdb.org_name(server).to_string();
        let entry = self
            .history
            .entry(fqdn.clone())
            .or_insert_with(|| (0, HashSet::new()));
        entry.0 += 1;
        if entry.0 <= self.learning_observations || entry.1.contains(&org) {
            entry.1.insert(org);
            return None;
        }
        // Seen enough history, and this organization is new for the name.
        let anomaly = Anomaly {
            fqdn: fqdn.clone(),
            server,
            new_org: org.clone(),
            known_orgs: {
                let mut v: Vec<String> = entry.1.iter().cloned().collect();
                v.sort();
                v
            },
            ts,
        };
        // Learn it anyway so one hijack is flagged once, not forever —
        // the operator decides what to do with the alert.
        entry.1.insert(org);
        self.anomalies.push(anomaly.clone());
        Some(anomaly)
    }

    /// Everything flagged so far.
    pub fn anomalies(&self) -> &[Anomaly] {
        &self.anomalies
    }

    /// Names tracked.
    pub fn tracked_names(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter_orgdb::builtin_registry;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn flags_resolution_to_unknown_org() {
        let db = builtin_registry();
        let mut det = AnomalyDetector::new(&db, 2);
        let fqdn = name("www.mybank.it");
        // Learning: the bank lives on smallhosts (151.1.0.0/16).
        assert!(det.observe(&fqdn, ip("151.1.0.10"), 1).is_none());
        assert!(det.observe(&fqdn, ip("151.1.0.11"), 2).is_none());
        assert!(det.observe(&fqdn, ip("151.1.0.10"), 3).is_none());
        // Poisoned answer pointing into the P2P wasteland.
        let a = det.observe(&fqdn, ip("171.66.6.6"), 4).unwrap();
        assert_eq!(a.new_org, "p2p-space");
        assert_eq!(a.known_orgs, vec!["smallhosts".to_string()]);
        assert_eq!(det.anomalies().len(), 1);
    }

    #[test]
    fn multi_cdn_names_learn_all_their_homes() {
        let db = builtin_registry();
        let mut det = AnomalyDetector::new(&db, 3);
        let fqdn = name("www.twitter.com");
        // Twitter legitimately flips between SELF and Akamai.
        assert!(det.observe(&fqdn, ip("199.59.148.10"), 1).is_none());
        assert!(det.observe(&fqdn, ip("23.0.0.5"), 2).is_none());
        assert!(det.observe(&fqdn, ip("199.59.148.11"), 3).is_none());
        // Post-learning, both orgs stay silent.
        assert!(det.observe(&fqdn, ip("23.0.0.9"), 4).is_none());
        assert!(det.observe(&fqdn, ip("199.59.148.12"), 5).is_none());
        // A brand-new org fires.
        assert!(det.observe(&fqdn, ip("85.17.0.3"), 6).is_some()); // leaseweb
    }

    #[test]
    fn one_hijack_is_flagged_once() {
        let db = builtin_registry();
        let mut det = AnomalyDetector::new(&db, 1);
        let fqdn = name("login.example.org");
        det.observe(&fqdn, ip("151.1.0.1"), 1);
        det.observe(&fqdn, ip("151.1.0.1"), 2);
        assert!(det.observe(&fqdn, ip("186.1.2.3"), 3).is_some());
        // Repeats of the same (now-learned) org are not re-flagged.
        assert!(det.observe(&fqdn, ip("186.1.2.4"), 4).is_none());
        assert_eq!(det.anomalies().len(), 1);
        assert_eq!(det.tracked_names(), 1);
    }

    #[test]
    fn names_are_independent() {
        let db = builtin_registry();
        let mut det = AnomalyDetector::new(&db, 1);
        det.observe(&name("a.example.org"), ip("151.1.0.1"), 1);
        det.observe(&name("a.example.org"), ip("151.1.0.2"), 2);
        // b's first sighting is learning, even though a is enforced.
        assert!(det
            .observe(&name("b.example.org"), ip("186.1.1.1"), 3)
            .is_none());
        assert_eq!(det.tracked_names(), 2);
    }
}
