//! Domain-structure trees — paper Figs. 7 and 8.
//!
//! For one organization (second-level domain), build the token tree of its
//! FQDNs (numbers collapsed to `N`), and group the leaves by the CDN that
//! serves them, with server counts and flow shares — the LinkedIn/Zynga
//! pictures.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;
use std::net::IpAddr;

use dnhunter::FlowDatabase;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::tokenizer::normalize_token;
use dnhunter_dns::DomainName;
use dnhunter_orgdb::OrgDb;

/// One node of the token tree.
#[derive(Debug, Default)]
pub struct TokenNode {
    /// Children keyed by token.
    pub children: BTreeMap<String, TokenNode>,
    /// Flows terminating exactly at this node.
    pub flows: u64,
    /// Distinct servers serving names terminating here.
    pub servers: HashSet<IpAddr>,
    /// Hosting organizations observed for names terminating here.
    pub orgs: BTreeMap<String, u64>,
}

/// The per-CDN rollup the figures print in their rectangular boxes.
#[derive(Debug, Clone, PartialEq)]
pub struct CdnGroup {
    pub org: String,
    pub servers: usize,
    pub flow_share: f64,
}

/// The whole Fig. 7/8 artefact.
#[derive(Debug)]
pub struct DomainTree {
    pub sld: DomainName,
    pub root: TokenNode,
    pub total_flows: u64,
    pub groups: Vec<CdnGroup>,
}

/// Build the tree for `sld` from the labeled flows.
pub fn domain_tree(
    db: &FlowDatabase,
    sld: &DomainName,
    orgdb: &OrgDb,
    suffixes: &SuffixSet,
) -> DomainTree {
    let mut root = TokenNode::default();
    let mut total = 0u64;
    let mut org_flows: HashMap<String, u64> = HashMap::new();
    let mut org_servers: HashMap<String, HashSet<IpAddr>> = HashMap::new();
    for f in db.by_second_level(sld) {
        let Some(fqdn) = &f.fqdn else { continue };
        total += 1;
        let org = orgdb.org_name(f.key.server).to_string();
        *org_flows.entry(org.clone()).or_default() += 1;
        org_servers
            .entry(org.clone())
            .or_default()
            .insert(f.key.server);
        // Walk tokens outermost-first (`mediaN` under `linkedin.com`).
        let mut node = &mut root;
        let subs = fqdn.sub_labels(suffixes);
        for label in subs.iter().rev() {
            let token = normalize_token(label).unwrap_or_else(|| "N".to_string());
            node = node.children.entry(token).or_default();
        }
        node.flows += 1;
        node.servers.insert(f.key.server);
        *node.orgs.entry(org).or_default() += 1;
    }
    let mut groups: Vec<CdnGroup> = org_flows
        .into_iter()
        .map(|(org, flows)| CdnGroup {
            servers: org_servers[&org].len(),
            flow_share: flows as f64 / total.max(1) as f64,
            org,
        })
        .collect();
    groups.sort_by(|a, b| b.flow_share.partial_cmp(&a.flow_share).expect("no NaN"));
    DomainTree {
        sld: sld.clone(),
        root,
        total_flows: total,
        groups,
    }
}

impl DomainTree {
    /// Render as an indented text tree, with the CDN group boxes first —
    /// a textual Fig. 7/8.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {} flows", self.sld, self.total_flows);
        for g in &self.groups {
            let _ = writeln!(
                out,
                "  [{}: servers {}, flows {:.0}%]",
                g.org,
                g.servers,
                g.flow_share * 100.0
            );
        }
        render_node(&mut out, &self.root, 1);
        out
    }

    /// Look up a node by token path (for tests and queries).
    pub fn node(&self, path: &[&str]) -> Option<&TokenNode> {
        let mut node = &self.root;
        for p in path {
            node = node.children.get(*p)?;
        }
        Some(node)
    }
}

fn render_node(out: &mut String, node: &TokenNode, depth: usize) {
    for (token, child) in &node.children {
        let _ = write!(out, "{}{}", "  ".repeat(depth), token);
        if child.flows > 0 {
            let orgs: Vec<String> = child.orgs.iter().map(|(o, n)| format!("{o}:{n}")).collect();
            let _ = write!(
                out,
                "  ({} flows, {} servers; {})",
                child.flows,
                child.servers.len(),
                orgs.join(", ")
            );
        }
        out.push('\n');
        render_node(out, child, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter::TaggedFlow;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;
    use dnhunter_orgdb::builtin_registry;

    fn flow(fqdn: &str, server: &str) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                "10.0.0.1".parse().unwrap(),
                server.parse().unwrap(),
                50000,
                80,
                IpProtocol::Tcp,
            ),
            fqdn: Some(fqdn.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: None,
            first_ts: 0,
            last_ts: 1,
            packets_c2s: 1,
            packets_s2c: 1,
            bytes_c2s: 10,
            bytes_s2c: 10,
            protocol: AppProtocol::Http,
            tls: None,
            in_warmup: false,
        }
    }

    fn linkedin_db() -> FlowDatabase {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        db.push(flow("media1.linkedin.com", "23.1.0.1"), &s);
        db.push(flow("media2.linkedin.com", "23.1.0.2"), &s);
        db.push(flow("media.linkedin.com", "93.184.216.4"), &s);
        db.push(flow("media.linkedin.com", "93.184.216.4"), &s);
        db.push(flow("www.linkedin.com", "216.52.242.7"), &s);
        db.push(flow("iphone.stats.zynga.com", "54.230.0.1"), &s); // other domain
        db
    }

    #[test]
    fn tree_collapses_numbered_names() {
        let db = linkedin_db();
        let orgdb = builtin_registry();
        let s = SuffixSet::builtin();
        let tree = domain_tree(&db, &"linkedin.com".parse().unwrap(), &orgdb, &s);
        assert_eq!(tree.total_flows, 5);
        // media1 + media2 collapse into one `mediaN` node with 2 flows.
        let median = tree.node(&["mediaN"]).unwrap();
        assert_eq!(median.flows, 2);
        assert_eq!(median.servers.len(), 2);
        assert_eq!(median.orgs.get("akamai"), Some(&2));
        // `media` is a distinct token.
        assert_eq!(tree.node(&["media"]).unwrap().flows, 2);
        assert_eq!(tree.node(&["www"]).unwrap().flows, 1);
        assert!(tree.node(&["stats"]).is_none()); // zynga flow excluded
    }

    #[test]
    fn multi_label_names_nest() {
        let orgdb = builtin_registry();
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        db.push(flow("iphone.stats.zynga.com", "54.230.0.1"), &s);
        let tree = domain_tree(&db, &"zynga.com".parse().unwrap(), &orgdb, &s);
        // Outermost-first: stats → iphone.
        let node = tree.node(&["stats", "iphone"]).unwrap();
        assert_eq!(node.flows, 1);
        assert_eq!(node.orgs.get("amazon"), Some(&1));
    }

    #[test]
    fn groups_match_hosting_shares() {
        let db = linkedin_db();
        let orgdb = builtin_registry();
        let s = SuffixSet::builtin();
        let tree = domain_tree(&db, &"linkedin.com".parse().unwrap(), &orgdb, &s);
        assert_eq!(tree.groups.len(), 3);
        let edgecast = tree.groups.iter().find(|g| g.org == "edgecast").unwrap();
        assert!((edgecast.flow_share - 0.4).abs() < 1e-9);
        assert_eq!(edgecast.servers, 1);
    }

    #[test]
    fn render_contains_key_elements() {
        let db = linkedin_db();
        let orgdb = builtin_registry();
        let s = SuffixSet::builtin();
        let tree = domain_tree(&db, &"linkedin.com".parse().unwrap(), &orgdb, &s);
        let text = tree.render();
        assert!(text.contains("linkedin.com — 5 flows"));
        assert!(text.contains("mediaN"));
        assert!(text.contains("akamai"));
        assert!(text.contains("edgecast"));
    }
}
