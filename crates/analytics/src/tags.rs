//! Automatic service-tag extraction — paper Algorithm 4 and Eq. (1),
//! Tables 6–7.
//!
//! For a target port, tokenize the FQDNs of its flows (TLD and 2nd-level
//! dropped, digit runs → `N`) and score each token
//! `score(X) = Σ_c log(N_X(c) + 1)` over clients `c`, damping chatty
//! clients.

use std::collections::HashMap;
use std::net::IpAddr;

use dnhunter::FlowDatabase;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::tokenizer::tokenize_fqdn;

/// A scored token.
#[derive(Debug, Clone, PartialEq)]
pub struct Tag {
    pub token: String,
    pub score: f64,
}

/// TAG_EXTRACTION(dPort, k): the top-k tokens for a port.
pub fn extract_tags(db: &FlowDatabase, port: u16, k: usize, suffixes: &SuffixSet) -> Vec<Tag> {
    let scores = token_scores(db, port, suffixes);
    let mut out: Vec<Tag> = scores
        .into_iter()
        .map(|(token, score)| Tag { token, score })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.token.cmp(&b.token))
    });
    out.truncate(k);
    out
}

/// Raw token scores per Eq. (1).
pub fn token_scores(db: &FlowDatabase, port: u16, suffixes: &SuffixSet) -> HashMap<String, f64> {
    // N_X(c): flows from client c whose FQDN contains token X.
    let mut per_client: HashMap<(String, IpAddr), u64> = HashMap::new();
    for f in db.by_port(port) {
        let Some(fqdn) = &f.fqdn else { continue };
        for token in tokenize_fqdn(fqdn, suffixes) {
            *per_client.entry((token, f.key.client)).or_default() += 1;
        }
    }
    let mut scores: HashMap<String, f64> = HashMap::new();
    for ((token, _client), n) in per_client {
        *scores.entry(token).or_default() += ((n + 1) as f64).ln();
    }
    scores
}

/// Restrict a ranked tag list to those summing to the `q`-th score
/// percentile (the paper mentions top-5% / n-th percentile cut-offs).
pub fn cut_at_percentile(tags: &[Tag], q: f64) -> Vec<Tag> {
    let total: f64 = tags.iter().map(|t| t.score).sum();
    let budget = total * q.clamp(0.0, 1.0);
    let mut acc = 0.0;
    let mut out = Vec::new();
    for t in tags {
        if acc >= budget {
            break;
        }
        acc += t.score;
        out.push(t.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter::TaggedFlow;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;

    fn flow(client: &str, fqdn: &str, port: u16) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                client.parse().unwrap(),
                "62.211.72.9".parse().unwrap(),
                50000,
                port,
                IpProtocol::Tcp,
            ),
            fqdn: Some(fqdn.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: None,
            first_ts: 0,
            last_ts: 1,
            packets_c2s: 1,
            packets_s2c: 1,
            bytes_c2s: 10,
            bytes_s2c: 10,
            protocol: AppProtocol::Mail,
            tls: None,
            in_warmup: false,
        }
    }

    #[test]
    fn smtp_port_yields_smtp_tokens() {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        for c in ["10.0.0.1", "10.0.0.2", "10.0.0.3"] {
            db.push(flow(c, "smtp1.mail.provider.it", 25), &s);
            db.push(flow(c, "smtp2.provider.it", 25), &s);
            db.push(flow(c, "smtp3.provider.it", 25), &s);
        }
        db.push(flow("10.0.0.1", "mx3.other.org", 25), &s);
        let tags = extract_tags(&db, 25, 3, &s);
        assert_eq!(tags[0].token, "smtpN");
        assert!(tags.iter().any(|t| t.token == "mail"));
        assert!(tags.iter().any(|t| t.token == "mxN"));
    }

    #[test]
    fn log_score_damps_chatty_clients() {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        // One client hammers "hog" 1000 times; ten clients touch "spread" once.
        for _ in 0..1000 {
            db.push(flow("10.0.0.1", "hog.example.com", 80), &s);
        }
        for i in 0..10 {
            db.push(flow(&format!("10.0.1.{i}"), "spread.example.com", 80), &s);
        }
        let scores = token_scores(&db, 80, &s);
        // Raw counts would rank hog 100× higher; the log score ranks
        // the widely-used token on top (10·ln2 ≈ 6.9 > ln1001 ≈ 6.9... use 11 clients).
        let hog = scores["hog"];
        let spread = scores["spread"];
        assert!(hog < 1000.0_f64.ln() + 1.0);
        assert!(spread > 0.9 * 10.0 * 2.0_f64.ln());
        assert!(spread > hog * 0.9, "spread {spread} vs hog {hog}");
    }

    #[test]
    fn ports_are_isolated() {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        db.push(flow("10.0.0.1", "pop.mail.x.org", 110), &s);
        db.push(flow("10.0.0.1", "imap.mail.x.org", 143), &s);
        let t110 = extract_tags(&db, 110, 5, &s);
        assert!(t110.iter().any(|t| t.token == "pop"));
        assert!(!t110.iter().any(|t| t.token == "imap"));
    }

    #[test]
    fn untagged_flows_and_bare_slds_contribute_nothing() {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        let mut f = flow("10.0.0.1", "x.com", 80);
        f.fqdn = None;
        db.push(f, &s);
        db.push(flow("10.0.0.1", "example.com", 80), &s); // bare SLD: no sub-labels
        assert!(extract_tags(&db, 80, 5, &s).is_empty());
    }

    #[test]
    fn percentile_cut() {
        let tags = vec![
            Tag {
                token: "a".into(),
                score: 50.0,
            },
            Tag {
                token: "b".into(),
                score: 30.0,
            },
            Tag {
                token: "c".into(),
                score: 15.0,
            },
            Tag {
                token: "d".into(),
                score: 5.0,
            },
        ];
        let top = cut_at_percentile(&tags, 0.8);
        assert_eq!(top.len(), 2); // 50+30 = 80% of the mass
        assert_eq!(cut_at_percentile(&tags, 1.0).len(), 4);
        assert!(cut_at_percentile(&tags, 0.0).is_empty());
    }
}
