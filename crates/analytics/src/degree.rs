//! Fig. 3: the degree of the FQDN ↔ serverIP mapping.
//!
//! Top plot: for each FQDN, how many distinct server addresses served it.
//! Bottom plot: for each server address, how many distinct FQDNs it served.

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use dnhunter::FlowDatabase;
use dnhunter_dns::DomainName;

use crate::cdf::Ecdf;

/// The two degree distributions of Fig. 3.
#[derive(Debug)]
pub struct DegreeReport {
    /// Distinct serverIPs per FQDN.
    pub ips_per_fqdn: Ecdf,
    /// Distinct FQDNs per serverIP.
    pub fqdns_per_ip: Ecdf,
    /// Fraction of FQDNs served by exactly one address.
    pub single_ip_fqdn_fraction: f64,
    /// Fraction of addresses serving exactly one FQDN.
    pub single_fqdn_ip_fraction: f64,
    /// Largest observed fan-outs (the heavy tails the paper highlights).
    pub max_ips_per_fqdn: u64,
    pub max_fqdns_per_ip: u64,
}

/// Compute Fig. 3 from the labeled-flow database.
pub fn degree_report(db: &FlowDatabase) -> DegreeReport {
    let mut fqdn_ips: HashMap<&DomainName, HashSet<IpAddr>> = HashMap::new();
    let mut ip_fqdns: HashMap<IpAddr, HashSet<&DomainName>> = HashMap::new();
    for f in db.flows() {
        if let Some(fqdn) = &f.fqdn {
            fqdn_ips.entry(fqdn).or_default().insert(f.key.server);
            ip_fqdns.entry(f.key.server).or_default().insert(fqdn);
        }
    }
    let ip_counts: Vec<u64> = fqdn_ips.values().map(|s| s.len() as u64).collect();
    let fqdn_counts: Vec<u64> = ip_fqdns.values().map(|s| s.len() as u64).collect();
    let single_ip = ip_counts.iter().filter(|&&c| c == 1).count();
    let single_fqdn = fqdn_counts.iter().filter(|&&c| c == 1).count();
    DegreeReport {
        single_ip_fqdn_fraction: single_ip as f64 / ip_counts.len().max(1) as f64,
        single_fqdn_ip_fraction: single_fqdn as f64 / fqdn_counts.len().max(1) as f64,
        max_ips_per_fqdn: ip_counts.iter().copied().max().unwrap_or(0),
        max_fqdns_per_ip: fqdn_counts.iter().copied().max().unwrap_or(0),
        ips_per_fqdn: Ecdf::from_u64(ip_counts),
        fqdns_per_ip: Ecdf::from_u64(fqdn_counts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter::TaggedFlow;
    use dnhunter_dns::suffix::SuffixSet;
    use dnhunter_flow::{AppProtocol, FlowKey};
    use dnhunter_net::IpProtocol;

    fn flow(fqdn: &str, server: &str) -> TaggedFlow {
        TaggedFlow {
            key: FlowKey::from_initiator(
                "10.0.0.1".parse().unwrap(),
                server.parse().unwrap(),
                50000,
                80,
                IpProtocol::Tcp,
            ),
            fqdn: Some(fqdn.parse().unwrap()),
            second_level: None,
            alt_labels: Vec::new(),
            tag_delay_micros: None,
            first_ts: 0,
            last_ts: 1,
            packets_c2s: 1,
            packets_s2c: 1,
            bytes_c2s: 10,
            bytes_s2c: 10,
            protocol: AppProtocol::Http,
            tls: None,
            in_warmup: false,
        }
    }

    #[test]
    fn degrees_are_computed_per_distinct_pair() {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        // cdn.example.com served by 3 IPs; single.org by 1; 1.1.1.1 serves 2 FQDNs.
        db.push(flow("cdn.example.com", "1.1.1.1"), &s);
        db.push(flow("cdn.example.com", "1.1.1.2"), &s);
        db.push(flow("cdn.example.com", "1.1.1.3"), &s);
        db.push(flow("cdn.example.com", "1.1.1.3"), &s); // duplicate pair
        db.push(flow("single.org", "1.1.1.1"), &s);
        let r = degree_report(&db);
        assert_eq!(r.max_ips_per_fqdn, 3);
        assert_eq!(r.max_fqdns_per_ip, 2);
        assert_eq!(r.single_ip_fqdn_fraction, 0.5); // single.org only
                                                    // 1.1.1.2 and 1.1.1.3 serve one FQDN each → 2 of 3 addresses.
        assert!((r.single_fqdn_ip_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.ips_per_fqdn.len(), 2);
        assert_eq!(r.fqdns_per_ip.len(), 3);
    }

    #[test]
    fn untagged_flows_are_ignored() {
        let s = SuffixSet::builtin();
        let mut db = FlowDatabase::new();
        let mut f = flow("x.com", "9.9.9.9");
        f.fqdn = None;
        db.push(f, &s);
        let r = degree_report(&db);
        assert!(r.ips_per_fqdn.is_empty());
        assert!(r.fqdns_per_ip.is_empty());
        assert_eq!(r.max_fqdns_per_ip, 0);
    }
}
