//! DNS-to-flow timing — paper Figs. 12–13 and Tab. 9.

use dnhunter::DelaySamples;

use crate::cdf::Ecdf;

/// The two delay CDFs plus the useless-DNS figure.
#[derive(Debug)]
pub struct DelayReport {
    /// Fig. 12: response → first flow.
    pub first_flow: Ecdf,
    /// Fig. 13: response → every flow.
    pub any_flow: Ecdf,
    /// Tab. 9: fraction of answered responses never used.
    pub useless_fraction: f64,
}

/// Build the report from the sniffer's samples (delays converted to
/// seconds, the paper's x-axis unit).
pub fn delay_report(samples: &DelaySamples) -> DelayReport {
    DelayReport {
        first_flow: Ecdf::new(samples.first_flow_delays.iter().map(|&d| d as f64 / 1e6)),
        any_flow: Ecdf::new(samples.any_flow_delays.iter().map(|&d| d as f64 / 1e6)),
        useless_fraction: samples.useless_fraction(),
    }
}

impl DelayReport {
    /// Fraction of first flows within one second (the paper's "less than
    /// 1s in about 90% of cases").
    pub fn first_flow_within_1s(&self) -> f64 {
        self.first_flow.at(1.0)
    }

    /// Fraction of first flows that took over ten seconds (prefetching).
    pub fn first_flow_over_10s(&self) -> f64 {
        1.0 - self.first_flow.at(10.0)
    }

    /// The equivalent caching time needed to cover fraction `q` of flows
    /// (Fig. 13 → Clist dimensioning: "to resolve about 98% of flows …
    /// about 1 hour").
    pub fn caching_time_for(&self, q: f64) -> Option<f64> {
        self.any_flow.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> DelaySamples {
        DelaySamples {
            // 9 sub-second delays + 1 slow one.
            first_flow_delays: vec![
                100_000, 200_000, 300_000, 150_000, 400_000, 500_000, 80_000, 90_000, 700_000,
                15_000_000,
            ],
            any_flow_delays: vec![
                100_000,
                200_000,
                1_000_000,
                60_000_000,
                600_000_000,
                3_000_000_000,
            ],
            useless_responses: 47,
            answered_responses: 100,
        }
    }

    #[test]
    fn report_metrics() {
        let r = delay_report(&samples());
        assert!((r.first_flow_within_1s() - 0.9).abs() < 1e-9);
        assert!((r.first_flow_over_10s() - 0.1).abs() < 1e-9);
        assert!((r.useless_fraction - 0.47).abs() < 1e-9);
        // 100% of "any flow" delays are within 3000 s.
        let t = r.caching_time_for(1.0).unwrap();
        assert!((t - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_samples() {
        let r = delay_report(&DelaySamples::default());
        assert_eq!(r.first_flow_within_1s(), 0.0);
        assert!(r.caching_time_for(0.98).is_none());
        assert_eq!(r.useless_fraction, 0.0);
    }
}
