//! Property-based tests for the statistical plumbing.

use dnhunter_analytics::report::{human_bytes, pct, TextTable};
use dnhunter_analytics::timeseries::{BinnedCounts, BinnedDistinct};
use dnhunter_analytics::Ecdf;
use proptest::prelude::*;

proptest! {
    /// An ECDF is monotone, bounded by [0,1], and reaches 1 at max.
    #[test]
    fn ecdf_is_a_cdf(samples in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let cdf = Ecdf::new(samples.iter().copied());
        let max = cdf.max().unwrap();
        prop_assert!((cdf.at(max) - 1.0).abs() < 1e-12);
        let min = cdf.min().unwrap();
        prop_assert!(cdf.at(min) > 0.0);
        // Monotone over a sweep.
        let mut prev = 0.0;
        for i in 0..50 {
            let x = min + (max - min) * i as f64 / 49.0;
            let y = cdf.at(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y + 1e-12 >= prev);
            prev = y;
        }
    }

    /// Quantiles are actual sample values and are monotone in q.
    #[test]
    fn quantiles_are_samples(samples in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let cdf = Ecdf::from_u64(samples.iter().copied());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = cdf.quantile(q).unwrap();
            prop_assert!(samples.iter().any(|&s| s as f64 == v));
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// Binned counters conserve the number of events, wherever they land.
    #[test]
    fn binned_counts_conserve(
        origin in 0u64..1_000,
        bin in 1u64..10_000,
        events in proptest::collection::vec(0u64..10_000_000, 0..200),
    ) {
        let mut b = BinnedCounts::new(origin, bin);
        for &e in &events {
            b.add(e);
        }
        let total: u64 = b.counts().iter().sum();
        prop_assert_eq!(total, events.len() as u64);
        prop_assert!(b.peak() <= events.len() as u64);
    }

    /// Distinct bins never exceed plain counts.
    #[test]
    fn distinct_bounded_by_events(
        events in proptest::collection::vec((0u64..100_000, 0u8..10), 0..200),
    ) {
        let mut counts = BinnedCounts::new(0, 1_000);
        let mut distinct: BinnedDistinct<u8> = BinnedDistinct::new(0, 1_000);
        for &(ts, key) in &events {
            counts.add(ts);
            distinct.add(ts, key);
        }
        for (d, c) in distinct.counts().iter().zip(counts.counts()) {
            prop_assert!(d <= c);
            prop_assert!(*d <= 10);
        }
    }

    /// Table rendering never panics and contains every cell.
    #[test]
    fn tables_render_all_cells(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-zA-Z0-9 ]{0,12}", 2..=2),
            0..20,
        )
    ) {
        let mut t = TextTable::new("prop", &["a", "b"]);
        for r in &rows {
            t.row(&[r[0].clone(), r[1].clone()]);
        }
        let text = t.render();
        for r in &rows {
            for cell in r {
                let trimmed = cell.trim();
                if !trimmed.is_empty() {
                    prop_assert!(text.contains(trimmed), "missing cell {trimmed:?}");
                }
            }
        }
    }

    /// Formatting helpers are total.
    #[test]
    fn formatting_is_total(x in 0.0f64..10.0, b in any::<u64>()) {
        let _ = pct(x);
        let s = human_bytes(b);
        prop_assert!(!s.is_empty());
    }
}
