//! Flow-table packet processing rate (the per-packet hot path of the flow
//! sniffer).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnhunter_flow::{FlowTable, FlowTableConfig};
use dnhunter_net::{build_tcp_v4, MacAddr, Packet, TcpFlags};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::net::Ipv4Addr;

fn packet_stream(n: usize) -> Vec<(u64, Vec<u8>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let client = Ipv4Addr::new(10, 0, 0, rng.gen_range(1..200));
        let server = Ipv4Addr::new(23, 1, 2, rng.gen_range(1..50));
        let sport = 30_000 + rng.gen_range(0..500u16);
        let flags = match i % 5 {
            0 => TcpFlags::SYN,
            1 => TcpFlags::SYN | TcpFlags::ACK,
            4 => TcpFlags::FIN | TcpFlags::ACK,
            _ => TcpFlags::PSH | TcpFlags::ACK,
        };
        let payload = if flags.psh() {
            &b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"[..]
        } else {
            &[]
        };
        let frame = build_tcp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            client,
            server,
            sport,
            80,
            i as u32,
            0,
            flags,
            payload,
        )
        .expect("builds");
        out.push((i as u64 * 1_000, frame));
    }
    out
}

fn bench_flow_table(c: &mut Criterion) {
    let packets = packet_stream(20_000);
    let parsed: Vec<(u64, Packet, usize)> = packets
        .iter()
        .map(|(ts, f)| (*ts, Packet::parse(f).expect("parses"), f.len()))
        .collect();

    let mut g = c.benchmark_group("flow_table");
    g.throughput(Throughput::Elements(packets.len() as u64));
    g.bench_function("parse_and_track", |b| {
        b.iter(|| {
            let mut t = FlowTable::new(FlowTableConfig::default());
            for (ts, frame) in &packets {
                let pkt = Packet::parse(frame).expect("parses");
                t.process(*ts, &pkt, frame.len());
            }
            black_box(t.live_flows())
        })
    });
    g.bench_function("track_only", |b| {
        b.iter(|| {
            let mut t = FlowTable::new(FlowTableConfig::default());
            for (ts, pkt, len) in &parsed {
                t.process(*ts, pkt, *len);
            }
            black_box(t.live_flows())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_flow_table);
criterion_main!(benches);
