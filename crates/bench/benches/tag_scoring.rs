//! Ablation (DESIGN.md §5.3): Eq. (1)'s log score vs raw counting for
//! service-tag extraction — both cost and robustness-to-chatty-clients.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dnhunter::{FlowDatabase, TaggedFlow};
use dnhunter_analytics::tags::{extract_tags, token_scores};
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::tokenizer::tokenize_fqdn;
use dnhunter_flow::{AppProtocol, FlowKey};
use dnhunter_net::IpProtocol;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

fn synth_db(flows: usize) -> FlowDatabase {
    let s = SuffixSet::builtin();
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let mut db = FlowDatabase::new();
    let names = [
        "smtp1.mail.provider.it",
        "smtp2.mail.provider.it",
        "mx1.provider.it",
        "pop.mail.provider.it",
        "aspmx.l.gmail.google.com",
    ];
    for _ in 0..flows {
        let client = format!("10.0.{}.{}", rng.gen_range(0..4), rng.gen_range(1..250));
        let fqdn = names[rng.gen_range(0..names.len())];
        db.push(
            TaggedFlow {
                key: FlowKey::from_initiator(
                    client.parse().expect("ip"),
                    "62.211.72.5".parse().expect("ip"),
                    50_000,
                    25,
                    IpProtocol::Tcp,
                ),
                fqdn: Some(fqdn.parse().expect("name")),
                second_level: None,
                alt_labels: Vec::new(),
                tag_delay_micros: None,
                first_ts: 0,
                last_ts: 1,
                packets_c2s: 1,
                packets_s2c: 1,
                bytes_c2s: 100,
                bytes_s2c: 100,
                protocol: AppProtocol::Mail,
                tls: None,
                in_warmup: false,
            },
            &s,
        );
    }
    db
}

/// The naïve alternative: raw per-token flow counts (no per-client damping).
fn raw_counts(db: &FlowDatabase, port: u16, suffixes: &SuffixSet) -> HashMap<String, u64> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for f in db.by_port(port) {
        if let Some(fqdn) = &f.fqdn {
            for token in tokenize_fqdn(fqdn, suffixes) {
                *counts.entry(token).or_default() += 1;
            }
        }
    }
    counts
}

fn bench_scoring(c: &mut Criterion) {
    let db = synth_db(20_000);
    let suffixes = SuffixSet::builtin();
    let mut g = c.benchmark_group("tag_scoring");
    g.bench_function("eq1_log_score", |b| {
        b.iter(|| black_box(token_scores(&db, 25, &suffixes)))
    });
    g.bench_function("raw_counts", |b| {
        b.iter(|| black_box(raw_counts(&db, 25, &suffixes)))
    });
    g.bench_function("extract_top_k", |b| {
        b.iter(|| black_box(extract_tags(&db, 25, 10, &suffixes)))
    });
    g.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
