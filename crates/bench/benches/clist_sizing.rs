//! Clist sizing ablation (paper §6): replay cost of the same workload at
//! different Clist capacities. Smaller lists churn (evict + re-link) more.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dnhunter_bench::harness::resolver_events_from_frames;
use dnhunter_resolver::dimensioning::replay;
use dnhunter_resolver::OrderedTables;
use dnhunter_simnet::{profiles, TraceGenerator};

fn bench_clist_sizes(c: &mut Criterion) {
    // A small but realistic workload extracted from a generated trace.
    let profile = profiles::eu1_ftth().scaled(0.15);
    let trace = TraceGenerator::new(profile, false).generate();
    let events = resolver_events_from_frames(
        trace
            .records
            .iter()
            .map(|r| (r.timestamp_micros(), r.frame.as_slice())),
    );
    let mut g = c.benchmark_group("clist_replay");
    for l in [128usize, 1_024, 8_192, 65_536] {
        g.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| black_box(replay::<OrderedTables>(&events, l)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_clist_sizes);
criterion_main!(benches);
