//! DNS wire-codec throughput: the sniffer decodes every response on the
//! fast path, so this is latency-budget critical.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnhunter_dns::{codec, DnsMessage, DomainName, QClass, QType, RData, ResourceRecord};
use std::net::Ipv4Addr;

fn sample_response(answers: usize) -> DnsMessage {
    let name: DomainName = "photos-42.ak.fbcdn.net".parse().expect("valid");
    let q = DnsMessage::query(0x4242, name.clone(), QType::A);
    let rrs = (0..answers)
        .map(|i| ResourceRecord {
            name: name.clone(),
            class: QClass::In,
            ttl: 120,
            rdata: RData::A(Ipv4Addr::new(23, 0, (i >> 8) as u8, i as u8)),
        })
        .collect();
    DnsMessage::answer_to(&q, rrs)
}

fn bench_encode(c: &mut Criterion) {
    let msg = sample_response(8);
    let mut g = c.benchmark_group("dns_encode");
    g.throughput(Throughput::Elements(1));
    g.bench_function("response_8_answers", |b| {
        b.iter(|| black_box(codec::encode(&msg).expect("encodes")))
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("dns_decode");
    for answers in [1usize, 8, 16] {
        let bytes = codec::encode(&sample_response(answers)).expect("encodes");
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function(format!("response_{answers}_answers"), |b| {
            b.iter(|| black_box(codec::decode(&bytes).expect("decodes")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
