//! Ablation (DESIGN.md §5.2): ordered maps (the paper's C++ `map`) vs hash
//! maps (its footnote-2 alternative) for the two-level lookup tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnhunter_dns::DomainName;
use dnhunter_resolver::{DnsResolver, HashedTables, OrderedTables, ResolverConfig, TableFamily};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::net::{IpAddr, Ipv4Addr};

fn mixed_ops<F: TableFamily>(n: usize) -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut r: DnsResolver<F> = DnsResolver::with_config(ResolverConfig {
        clist_size: 32_768,
        labels_per_server: 1,
    });
    let fqdns: Vec<DomainName> = (0..512)
        .map(|i| format!("svc{i}.pool.example.net").parse().expect("valid"))
        .collect();
    let mut hits = 0u64;
    for i in 0..n {
        let client = IpAddr::V4(Ipv4Addr::new(10, 0, (i % 7) as u8, rng.gen()));
        let server = IpAddr::V4(Ipv4Addr::new(54, 230, rng.gen(), rng.gen()));
        if i % 3 == 0 {
            r.insert(client, &fqdns[i % fqdns.len()], &[server]);
        } else if r.lookup(client, server).is_some() {
            hits += 1;
        }
    }
    hits
}

fn bench_backends(c: &mut Criterion) {
    const N: usize = 30_000;
    let mut g = c.benchmark_group("resolver_map_backend");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("ordered_btreemap", |b| {
        b.iter(|| black_box(mixed_ops::<OrderedTables>(N)))
    });
    g.bench_function("hashed_hashmap", |b| {
        b.iter(|| black_box(mixed_ops::<HashedTables>(N)))
    });
    g.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
