//! Sharded-resolver scaling (paper §3.1.1's odd/even load-balancing note):
//! throughput with 1, 2 and 4 shards driven by as many threads.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dnhunter_dns::DomainName;
use dnhunter_resolver::{ResolverConfig, ShardedResolver};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

const OPS_PER_THREAD: usize = 8_000;

fn drive(shards: usize) -> u64 {
    let resolver: Arc<ShardedResolver> = Arc::new(ShardedResolver::new(
        shards,
        ResolverConfig {
            clist_size: 65_536,
            labels_per_server: 1,
        },
    ));
    let fqdn: DomainName = "pool.example.org".parse().expect("valid");
    let threads: Vec<_> = (0..shards)
        .map(|t| {
            let r = Arc::clone(&resolver);
            let fqdn = fqdn.clone();
            std::thread::spawn(move || {
                let mut hits = 0u64;
                for i in 0..OPS_PER_THREAD {
                    let client = IpAddr::V4(Ipv4Addr::new(10, t as u8, (i >> 8) as u8, i as u8));
                    let server = IpAddr::V4(Ipv4Addr::new(23, 9, (i >> 8) as u8, i as u8));
                    r.insert(client, &fqdn, &[server]);
                    if r.lookup(client, server).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    threads
        .into_iter()
        .map(|t| t.join().expect("no panic"))
        .sum()
}

fn bench_sharding(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded_resolver");
    for shards in [1usize, 2, 4] {
        g.throughput(Throughput::Elements((shards * OPS_PER_THREAD * 2) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
            b.iter(|| black_box(drive(s)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sharding);
criterion_main!(benches);
