//! End-to-end sniffer throughput: frames per second through the full
//! pipeline (parse → DNS/flow demux → resolver → tagging), on a generated
//! trace — the number that decides whether a deployment keeps up with a
//! PoP's line rate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnhunter::{RealTimeSniffer, SnifferConfig};
use dnhunter_simnet::{profiles, TraceGenerator};

fn bench_sniffer(c: &mut Criterion) {
    let profile = profiles::eu1_ftth().scaled(0.15);
    let trace = TraceGenerator::new(profile, false).generate();
    let mut g = c.benchmark_group("sniffer");
    g.throughput(Throughput::Elements(trace.records.len() as u64));
    g.sample_size(10);
    g.bench_function("full_pipeline", |b| {
        b.iter(|| {
            let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
            for rec in &trace.records {
                sniffer.process_record(rec);
            }
            black_box(sniffer.finish().database.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sniffer);
criterion_main!(benches);
