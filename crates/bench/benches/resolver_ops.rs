//! Core resolver throughput: INSERT and LOOKUP (paper Algorithm 1) under a
//! realistic key distribution.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dnhunter_dns::DomainName;
use dnhunter_resolver::{DnsResolver, ResolverConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::net::{IpAddr, Ipv4Addr};

fn client(i: u32) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8))
}

fn server(i: u32) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(23, (i >> 16) as u8, (i >> 8) as u8, i as u8))
}

fn workload(n: usize) -> Vec<(IpAddr, DomainName, Vec<IpAddr>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    (0..n)
        .map(|i| {
            let c = client(rng.gen_range(0..2_000));
            let fqdn: DomainName = format!("host{}.cdn{}.example.com", i % 5_000, i % 37)
                .parse()
                .expect("valid");
            let k = 1 + rng.gen_range(0..4u32);
            let servers = (0..k)
                .map(|j| server(rng.gen_range(0..50_000u32) + j))
                .collect();
            (c, fqdn, servers)
        })
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let items = workload(10_000);
    let mut g = c.benchmark_group("resolver_insert");
    g.throughput(Throughput::Elements(items.len() as u64));
    g.bench_function("ordered_l64k", |b| {
        b.iter(|| {
            let mut r: DnsResolver = DnsResolver::new(65_536);
            for (client, fqdn, servers) in &items {
                r.insert(*client, fqdn, servers);
            }
            black_box(r.len())
        })
    });
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let items = workload(10_000);
    let mut r: DnsResolver = DnsResolver::with_config(ResolverConfig {
        clist_size: 65_536,
        labels_per_server: 1,
    });
    for (client, fqdn, servers) in &items {
        r.insert(*client, fqdn, servers);
    }
    let mut g = c.benchmark_group("resolver_lookup");
    g.throughput(Throughput::Elements(items.len() as u64));
    g.bench_function("hit_heavy", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for (client, _, servers) in &items {
                if r.peek(*client, servers[0]).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_lookup);
criterion_main!(benches);
