//! The recorded sniffer-throughput baseline (`BENCH_sniffer.json`).
//!
//! Benchmarks the paper's §3.2 real-time claim on this machine: frames/s
//! for the sequential [`RealTimeSniffer`] versus the multi-dispatcher
//! [`run_records`] pipeline across a worker × dispatcher grid, over one
//! seeded simnet trace. Besides measured wall-clock throughput it records
//! each stage's *busy time* (time outside channel blocking) and the
//! throughput that busy-time decomposition projects for a machine with
//! enough cores — on a container pinned to fewer hardware threads than
//! pipeline threads, wall-clock speedup reflects the cache/probe win of
//! smaller per-shard state rather than parallelism, while the critical
//! path (`max(slowest dispatcher parse, serialized routing, slowest
//! worker)`) estimates the multi-core rate, honestly labelled as a
//! projection. The report also verifies the determinism guarantee (merged
//! reports byte-identical to sequential at every grid point) and
//! quantifies the FQDN-interning allocation diet.

use std::sync::Arc;
use std::time::Instant;

use dnhunter::{
    run_records, RealTimeSniffer, SnifferConfig, SnifferReport, StreamingAnalytics,
    StreamingConfig, WindowConfig, WindowedAnalytics,
};
use dnhunter_simnet::{profiles, TraceGenerator};
use dnhunter_telemetry as telemetry;
use serde::Serialize;

/// Telemetry hot-path budget: an enabled registry may cost at most this
/// fraction of sequential ingest wall time.
const TELEMETRY_BUDGET_FRACTION: f64 = 0.03;

/// Flight-recorder budget: a bound trace set may cost at most this
/// fraction of sequential ingest wall time (same bar as telemetry — a
/// trace record is a ring-slot store, priced like a metric update).
const TRACE_BUDGET_FRACTION: f64 = 0.03;

/// Workload description.
#[derive(Serialize)]
struct TraceInfo {
    profile: String,
    scale: f64,
    frames: u64,
    trace_span_secs: f64,
}

/// Best sequential run of the interleaved repetitions.
#[derive(Serialize)]
struct SingleThread {
    wall_secs: f64,
    frames_per_sec: f64,
    /// Wall time of every repetition (the container's performance is
    /// noisy-neighbor bursty; best-of is the stable statistic, and the
    /// spread documents why).
    wall_secs_all_reps: Vec<f64>,
}

/// One pipeline run at a given worker × dispatcher point.
#[derive(Clone, Serialize)]
struct PipelineRun {
    workers: usize,
    dispatchers: usize,
    wall_secs: f64,
    wall_secs_all_reps: Vec<f64>,
    measured_frames_per_sec: f64,
    measured_speedup_vs_single: f64,
    /// Total dispatch busy time: parse (summed over dispatchers) + routing.
    dispatch_busy_secs: f64,
    /// Per-dispatcher flat-parse busy time — these run concurrently.
    dispatcher_parse_busy_secs: Vec<f64>,
    /// Token-serialized routing busy time — this cannot parallelize.
    route_busy_secs: f64,
    send_wait_secs: f64,
    worker_busy_secs: Vec<f64>,
    /// `max(slowest dispatcher parse, routing, slowest worker busy)` — the
    /// pipeline's runtime on a machine with enough free cores.
    critical_path_secs: f64,
    projected_frames_per_sec: f64,
    projected_speedup_vs_single: f64,
    byte_identical_to_sequential: bool,
}

/// The §3.2 allocation diet: FQDN `Arc` allocations with and without the
/// resolver's interner (before = one fresh `Arc<DomainName>` per DNS
/// insert, which is what the pre-interning code did).
#[derive(Serialize)]
struct AllocationDiet {
    fqdn_arc_allocs_before: u64,
    fqdn_arc_allocs_after: u64,
    allocs_avoided: u64,
    reuse_fraction: f64,
}

/// Telemetry hot-path overhead: the sequential workload rerun with a
/// metrics registry bound, against the plain run where every `tm_*!` site
/// falls through its unbound-TLS branch (the "compiled-out" cost). The
/// enabled and disabled runs are paired within each repetition (adjacent
/// in time, so they see the same host weather) and the reported fraction
/// is the **signed median** of the per-rep fractions — a slightly negative
/// value means the overhead is below the host's noise floor, and saying so
/// honestly beats clamping it to zero.
#[derive(Serialize)]
struct TelemetryOverhead {
    enabled_wall_secs: f64,
    disabled_wall_secs: f64,
    enabled_wall_secs_all_reps: Vec<f64>,
    /// Per-repetition paired fraction `(enabled - disabled) / disabled`.
    overhead_fraction_all_reps: Vec<f64>,
    /// Signed median of `overhead_fraction_all_reps`.
    overhead_fraction: f64,
    budget_fraction: f64,
    within_budget: bool,
}

/// Flight-recorder overhead: dedicated adjacent pairs of a telemetry-only
/// sequential run and the same run with a [`telemetry::TraceSet`] bound on
/// top (the configuration `--trace-out` / `--explain` actually runs), so
/// the fraction prices *tracing on top of telemetry*.
///
/// The gated statistic is the signed **minimum** of the paired fractions,
/// not the median: the true effect is small (the record path microbenches
/// at ~16 ns and the event stream is flow-bounded, ≈1% of ingest), while
/// one guest-scheduler burst inflates a sub-second window by 10–50%, so
/// on a noisy host most pairs measure the neighbors, not the recorder.
/// The cleanest pair is the faithful estimate; the median and every pair
/// are recorded alongside so the spread stays visible.
#[derive(Serialize)]
struct TraceOverhead {
    enabled_wall_secs: f64,
    disabled_wall_secs: f64,
    enabled_wall_secs_all_reps: Vec<f64>,
    disabled_wall_secs_all_reps: Vec<f64>,
    /// Per-pair fraction `(traced - telemetry_only) / telemetry_only`.
    overhead_fraction_all_reps: Vec<f64>,
    /// Signed minimum of the paired fractions — the gated statistic.
    overhead_fraction: f64,
    /// Signed median, for the spread (informational).
    overhead_fraction_median: f64,
    budget_fraction: f64,
    within_budget: bool,
    /// Ring-wrap drops across all traced runs; non-zero means the
    /// default `TRACE_RING_CAP` is too small for this workload.
    dropped_events: u64,
}

/// One-pass streaming-analytics overhead: the sequential workload rerun
/// with a [`StreamingAnalytics`] sink installed, against the plain run.
/// Same paired-per-rep signed-median statistic as [`TelemetryOverhead`].
/// Informational (the CI gate watches throughput, not this fraction), but
/// recorded so regressions in the sink's hot path are visible in the JSON.
#[derive(Serialize)]
struct StreamingOverhead {
    enabled_wall_secs: f64,
    disabled_wall_secs: f64,
    enabled_wall_secs_all_reps: Vec<f64>,
    overhead_fraction_all_reps: Vec<f64>,
    overhead_fraction: f64,
    /// Every repetition rendered byte-identical streaming output.
    render_identical_all_reps: bool,
}

/// Windowed-analytics overhead: the sequential workload rerun with a
/// [`WindowedAnalytics`] sink (the `--window`/`--slide` configuration)
/// against the plain run, priced the same paired-per-rep signed-median
/// way as [`StreamingOverhead`]. The windowed sink routes every event
/// into a time bucket on top of the streaming sink's per-event work, so
/// this fraction is the full cost of asking for sliding windows instead
/// of one run-wide aggregate. Informational for throughput, but
/// `render_identical_all_reps` is gated by `cargo xtask bench-diff`:
/// every repetition must render byte-identical windowed output, or the
/// retraction path has become nondeterministic.
#[derive(Serialize)]
struct WindowedOverhead {
    window_micros: u64,
    slide_micros: u64,
    enabled_wall_secs: f64,
    disabled_wall_secs: f64,
    enabled_wall_secs_all_reps: Vec<f64>,
    overhead_fraction_all_reps: Vec<f64>,
    overhead_fraction: f64,
    /// Every repetition rendered byte-identical windowed output.
    render_identical_all_reps: bool,
    /// Bucket-cap overflow across all repetitions; non-zero means the
    /// bench trace outruns `MAX_LIVE_BUCKETS` and the summary is partial.
    dropped_bucket_events: u64,
}

/// Everything `BENCH_sniffer.json` records.
#[derive(Serialize)]
struct BenchReport {
    experiment: String,
    hardware_threads: usize,
    trace: TraceInfo,
    single_thread: SingleThread,
    telemetry_overhead: TelemetryOverhead,
    trace_overhead: TraceOverhead,
    streaming_overhead: StreamingOverhead,
    windowed_overhead: WindowedOverhead,
    /// One row per worker count at the default dispatcher count
    /// (`min(workers, 2)`) — the configuration the CLI would run.
    pipeline: Vec<PipelineRun>,
    /// The full worker × dispatcher grid, for the scaling gate.
    dispatcher_scaling: Vec<PipelineRun>,
    allocation_diet: AllocationDiet,
    determinism_all_runs: bool,
    note: String,
}

/// What [`run`] hands back to the `repro` driver: the JSON text of
/// `BENCH_sniffer.json` plus the pass/fail verdicts the driver turns into
/// an exit code.
pub struct BenchOutcome {
    /// Serialized [`BenchReport`].
    pub json: String,
    /// Telemetry-enabled ingest stayed within [`TELEMETRY_BUDGET_FRACTION`].
    pub telemetry_within_budget: bool,
    /// Flight-recorder-enabled ingest stayed within
    /// [`TRACE_BUDGET_FRACTION`].
    pub trace_within_budget: bool,
}

/// Canonical serialization of a report; equal strings mean equal reports
/// field-for-field (same digest the `pipeline_determinism` test uses).
fn digest(report: &SnifferReport) -> String {
    let mut out = String::new();
    let mut push = |part: Result<String, serde_json::Error>| {
        if let Ok(p) = part {
            out.push_str(&p);
            out.push('\n');
        }
    };
    push(serde_json::to_string(report.database.flows()));
    push(serde_json::to_string(&report.sniffer_stats));
    push(serde_json::to_string(&report.resolver_stats));
    push(serde_json::to_string(&report.delays));
    push(serde_json::to_string(&report.dns_response_times));
    push(serde_json::to_string(&report.answers_per_response));
    push(serde_json::to_string(&report.trace_start));
    push(serde_json::to_string(&report.trace_end));
    push(serde_json::to_string(&report.warmup_micros));
    out
}

fn secs(micros: u64) -> f64 {
    micros as f64 / 1e6
}

fn per_sec(frames: u64, wall_secs: f64) -> f64 {
    if wall_secs > 0.0 {
        frames as f64 / wall_secs
    } else {
        0.0
    }
}

/// Signed median; the even case averages the two middle values.
fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Paired per-rep overhead fractions: `(enabled_i - disabled_i) /
/// disabled_i`, one per repetition. Signed on purpose.
fn paired_fractions(enabled: &[f64], disabled: &[f64]) -> Vec<f64> {
    enabled
        .iter()
        .zip(disabled)
        .map(|(&e, &d)| (e - d) / d.max(1e-9))
        .collect()
}

/// Busy-time decomposition captured from one pipeline run.
struct Breakdown {
    dispatch_busy: f64,
    parse_busy: Vec<f64>,
    route_busy: f64,
    send_wait: f64,
    worker_busy: Vec<f64>,
}

/// Run the benchmark and return the JSON text of `BENCH_sniffer.json`
/// plus the budget verdicts.
///
/// `quick` shrinks the workload and the worker × dispatcher grid for a CI
/// smoke run.
pub fn run(quick: bool) -> BenchOutcome {
    let profile_name = "eu1-adsl1";
    let scale = if quick { 0.15 } else { 0.5 };
    let worker_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let dispatcher_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let combos: Vec<(usize, usize)> = worker_counts
        .iter()
        .flat_map(|&w| dispatcher_counts.iter().map(move |&d| (w, d)))
        .collect();

    eprintln!("# bench-sniffer: generating {profile_name} trace at scale {scale}");
    let profile = profiles::eu1_adsl1().scaled(scale);
    let trace = TraceGenerator::new(profile, false).generate();
    let trace_span_secs = match (trace.records.first(), trace.records.last()) {
        (Some(a), Some(b)) => secs(b.timestamp_micros().saturating_sub(a.timestamp_micros())),
        _ => 0.0,
    };
    let config = SnifferConfig::default();

    // The container's performance is bursty (noisy-neighbor host), so
    // every configuration is measured `reps` times, interleaved so a slow
    // burst cannot bias one configuration, and the best wall time is
    // reported. Every repetition's report is digest-checked regardless.
    // 3 even in quick mode: the overhead gate reads the signed *median*
    // per-rep fraction, and a median needs at least 3 samples to shrug off
    // one noisy-neighbor burst.
    let reps = 3;
    let mut reference_digest: Option<String> = None;
    let mut frames = 0u64;
    let mut single_walls: Vec<f64> = Vec::new();
    let mut telemetry_walls: Vec<f64> = Vec::new();
    let mut streaming_walls: Vec<f64> = Vec::new();
    let mut streaming_render: Option<String> = None;
    let mut streaming_render_identical = true;
    // Paper-style sliding windows: 30-minute window advancing every
    // 10 minutes, the geometry the equivalence suite proves correct.
    let window_cfg = WindowConfig::new(30 * 60 * 1_000_000, 10 * 60 * 1_000_000);
    let mut windowed_walls: Vec<f64> = Vec::new();
    let mut windowed_render: Option<String> = None;
    let mut windowed_render_identical = true;
    let mut windowed_drops = 0u64;
    let mut combo_walls: Vec<Vec<f64>> = vec![Vec::new(); combos.len()];
    // Busy-time decomposition from each grid point's *fastest* rep.
    let mut combo_best: Vec<Option<Breakdown>> = (0..combos.len()).map(|_| None).collect();
    let mut combo_identical: Vec<bool> = vec![true; combos.len()];
    let mut diet: Option<AllocationDiet> = None;
    let mut determinism_all = true;

    // One untimed warm-up pass per sequential leg before anything is
    // measured: the first run of each variant in the process pays one-off
    // costs (lazy page faults, allocator growth, cold i-cache, first-touch
    // of the telemetry registry / streaming sink) that measured ~2-3x the
    // steady-state wall time and would otherwise land entirely on rep 1,
    // skewing the paired overhead fractions.
    eprintln!("# bench-sniffer: warm-up passes (untimed)");
    {
        let mut warm = RealTimeSniffer::new(config.clone());
        for rec in &trace.records {
            warm.process_record(rec);
        }
        let _ = warm.finish();

        let registry = Arc::new(telemetry::Registry::new());
        let guard = telemetry::bind(registry);
        let mut warm = RealTimeSniffer::new(config.clone());
        for rec in &trace.records {
            warm.process_record(rec);
        }
        let _ = warm.finish();
        drop(guard);

        let registry = Arc::new(telemetry::Registry::new());
        let guard = telemetry::bind(registry);
        let trace_set = telemetry::TraceSet::new();
        let trace_guard = telemetry::trace_bind(&trace_set, telemetry::LaneKind::Driver, 0);
        let mut warm = RealTimeSniffer::new(config.clone());
        for rec in &trace.records {
            warm.process_record(rec);
        }
        let _ = warm.finish();
        drop(trace_guard);
        drop(guard);

        let mut warm = RealTimeSniffer::new(config.clone());
        warm.set_sink(Box::new(
            StreamingAnalytics::new(StreamingConfig::default()),
        ));
        for rec in &trace.records {
            warm.process_record(rec);
        }
        let _ = warm.finish_with_sinks();

        let mut warm = RealTimeSniffer::new(config.clone());
        warm.set_sink(Box::new(WindowedAnalytics::new(window_cfg.clone())));
        for rec in &trace.records {
            warm.process_record(rec);
        }
        let _ = warm.finish_with_sinks();
    }

    for rep in 0..reps {
        eprintln!(
            "# bench-sniffer: rep {}/{reps}: sequential run over {} frames",
            rep + 1,
            trace.records.len()
        );
        let t0 = Instant::now();
        let mut sequential = RealTimeSniffer::new(config.clone());
        for rec in &trace.records {
            sequential.process_record(rec);
        }
        let report = sequential.finish();
        single_walls.push(t0.elapsed().as_secs_f64());
        frames = report.sniffer_stats.frames;
        let d = digest(&report);
        match &reference_digest {
            Some(r) => determinism_all &= d == *r,
            None => reference_digest = Some(d),
        }

        // The same sequential workload with telemetry *enabled*: a live
        // registry bound for the run, so every `tm_*!` site pays its full
        // fetch_add instead of the unbound-TLS fall-through. Runs directly
        // after its disabled partner so the per-rep pair shares weather.
        eprintln!(
            "# bench-sniffer: rep {}/{reps}: sequential run, telemetry enabled",
            rep + 1
        );
        let registry = Arc::new(telemetry::Registry::new());
        let guard = telemetry::bind(registry.clone());
        let t0 = Instant::now();
        let mut enabled = RealTimeSniffer::new(config.clone());
        for rec in &trace.records {
            enabled.process_record(rec);
        }
        let report = enabled.finish();
        telemetry_walls.push(t0.elapsed().as_secs_f64());
        drop(guard);
        determinism_all &= reference_digest.as_deref() == Some(digest(&report).as_str());

        // The same sequential workload once more with the one-pass
        // streaming-analytics sink attached, to price its per-event cost.
        eprintln!(
            "# bench-sniffer: rep {}/{reps}: sequential run, streaming analytics",
            rep + 1
        );
        let t0 = Instant::now();
        let mut streaming = RealTimeSniffer::new(config.clone());
        streaming.set_sink(Box::new(
            StreamingAnalytics::new(StreamingConfig::default()),
        ));
        for rec in &trace.records {
            streaming.process_record(rec);
        }
        let (report, sinks) = streaming.finish_with_sinks();
        streaming_walls.push(t0.elapsed().as_secs_f64());
        determinism_all &= reference_digest.as_deref() == Some(digest(&report).as_str());
        if let Some(folded) = StreamingAnalytics::fold(sinks) {
            let rendered = folded.render();
            match &streaming_render {
                Some(r) => streaming_render_identical &= rendered == *r,
                None => streaming_render = Some(rendered),
            }
        } else {
            streaming_render_identical = false;
        }

        // And once more with the windowed sink, to price sliding windows
        // (bucket routing + the render-time merge/retract sweep) on top.
        eprintln!(
            "# bench-sniffer: rep {}/{reps}: sequential run, windowed analytics",
            rep + 1
        );
        let t0 = Instant::now();
        let mut windowed = RealTimeSniffer::new(config.clone());
        windowed.set_sink(Box::new(WindowedAnalytics::new(window_cfg.clone())));
        for rec in &trace.records {
            windowed.process_record(rec);
        }
        let (report, sinks) = windowed.finish_with_sinks();
        windowed_walls.push(t0.elapsed().as_secs_f64());
        determinism_all &= reference_digest.as_deref() == Some(digest(&report).as_str());
        if let Some(folded) = WindowedAnalytics::fold(sinks) {
            windowed_drops += folded.dropped_bucket_events();
            let rendered = folded.render();
            match &windowed_render {
                Some(r) => windowed_render_identical &= rendered == *r,
                None => windowed_render = Some(rendered),
            }
        } else {
            windowed_render_identical = false;
        }

        for (ci, &(workers, dispatchers)) in combos.iter().enumerate() {
            eprintln!(
                "# bench-sniffer: rep {}/{reps}: {workers} worker(s) x {dispatchers} \
                 dispatcher(s)",
                rep + 1
            );
            let t0 = Instant::now();
            let (report, timings) = run_records(&config, workers, dispatchers, &trace.records);
            let wall = t0.elapsed().as_secs_f64();
            let identical = reference_digest.as_deref() == Some(digest(&report).as_str());
            determinism_all &= identical;
            combo_identical[ci] &= identical;
            let is_best = combo_walls[ci].iter().all(|&w| wall < w);
            combo_walls[ci].push(wall);
            if is_best {
                combo_best[ci] = Some(Breakdown {
                    dispatch_busy: secs(timings.dispatch_busy_micros),
                    parse_busy: timings
                        .dispatcher_busy_micros
                        .iter()
                        .map(|&m| secs(m))
                        .collect(),
                    route_busy: secs(timings.route_busy_micros),
                    send_wait: secs(timings.send_wait_micros),
                    worker_busy: timings
                        .worker_busy_micros
                        .iter()
                        .map(|&m| secs(m))
                        .collect(),
                });
            }
            if diet.is_none() {
                let before = timings.intern.allocated + timings.intern.reused;
                diet = Some(AllocationDiet {
                    fqdn_arc_allocs_before: before,
                    fqdn_arc_allocs_after: timings.intern.allocated,
                    allocs_avoided: timings.intern.reused,
                    reuse_fraction: if before > 0 {
                        timings.intern.reused as f64 / before as f64
                    } else {
                        0.0
                    },
                });
            }
        }
    }

    let single_wall = single_walls.iter().copied().fold(f64::INFINITY, f64::min);
    let single = SingleThread {
        wall_secs: single_wall,
        frames_per_sec: per_sec(frames, single_wall),
        wall_secs_all_reps: single_walls.clone(),
    };

    let enabled_wall = telemetry_walls
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let telemetry_fracs = paired_fractions(&telemetry_walls, &single_walls);
    let telemetry_fraction = median(&telemetry_fracs);
    let telemetry_overhead = TelemetryOverhead {
        enabled_wall_secs: enabled_wall,
        disabled_wall_secs: single_wall,
        enabled_wall_secs_all_reps: telemetry_walls,
        overhead_fraction_all_reps: telemetry_fracs,
        overhead_fraction: telemetry_fraction,
        budget_fraction: TELEMETRY_BUDGET_FRACTION,
        within_budget: telemetry_fraction <= TELEMETRY_BUDGET_FRACTION,
    };

    // The flight-recorder pairs: tracing always runs on top of a bound
    // registry, so each pair is a telemetry-only run directly followed by
    // a telemetry+recorder run — adjacent in time, same host weather.
    // More pairs than `reps` because the gated statistic is the paired
    // minimum (see [`TraceOverhead`]) and the minimum needs enough draws
    // to find one burst-free window. Every run is still digest-checked.
    let trace_pairs = 2 * reps;
    let mut trace_base_walls: Vec<f64> = Vec::new();
    let mut traced_walls: Vec<f64> = Vec::new();
    let mut traced_drops = 0u64;
    for pair in 0..trace_pairs {
        eprintln!(
            "# bench-sniffer: trace pair {}/{trace_pairs}: telemetry-only, then flight \
             recorder on top",
            pair + 1
        );
        let registry = Arc::new(telemetry::Registry::new());
        let guard = telemetry::bind(registry);
        let t0 = Instant::now();
        let mut base = RealTimeSniffer::new(config.clone());
        for rec in &trace.records {
            base.process_record(rec);
        }
        let report = base.finish();
        trace_base_walls.push(t0.elapsed().as_secs_f64());
        drop(guard);
        determinism_all &= reference_digest.as_deref() == Some(digest(&report).as_str());

        let registry = Arc::new(telemetry::Registry::new());
        let guard = telemetry::bind(registry);
        let trace_set = telemetry::TraceSet::new();
        let trace_guard = telemetry::trace_bind(&trace_set, telemetry::LaneKind::Driver, 0);
        let t0 = Instant::now();
        let mut traced = RealTimeSniffer::new(config.clone());
        for rec in &trace.records {
            traced.process_record(rec);
        }
        let report = traced.finish();
        traced_walls.push(t0.elapsed().as_secs_f64());
        drop(trace_guard);
        drop(guard);
        traced_drops += trace_set.dropped_total();
        determinism_all &= reference_digest.as_deref() == Some(digest(&report).as_str());
    }
    let trace_fracs = paired_fractions(&traced_walls, &trace_base_walls);
    let trace_fraction = trace_fracs.iter().copied().fold(f64::INFINITY, f64::min);
    let trace_overhead = TraceOverhead {
        enabled_wall_secs: traced_walls.iter().copied().fold(f64::INFINITY, f64::min),
        disabled_wall_secs: trace_base_walls
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min),
        enabled_wall_secs_all_reps: traced_walls,
        disabled_wall_secs_all_reps: trace_base_walls,
        overhead_fraction: trace_fraction,
        overhead_fraction_median: median(&trace_fracs),
        overhead_fraction_all_reps: trace_fracs,
        budget_fraction: TRACE_BUDGET_FRACTION,
        within_budget: trace_fraction <= TRACE_BUDGET_FRACTION,
        dropped_events: traced_drops,
    };

    let streaming_wall = streaming_walls
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let streaming_fracs = paired_fractions(&streaming_walls, &single_walls);
    let streaming_overhead = StreamingOverhead {
        enabled_wall_secs: streaming_wall,
        disabled_wall_secs: single_wall,
        enabled_wall_secs_all_reps: streaming_walls,
        overhead_fraction: median(&streaming_fracs),
        overhead_fraction_all_reps: streaming_fracs,
        render_identical_all_reps: streaming_render_identical,
    };

    let windowed_wall = windowed_walls.iter().copied().fold(f64::INFINITY, f64::min);
    let windowed_fracs = paired_fractions(&windowed_walls, &single_walls);
    let windowed_overhead = WindowedOverhead {
        window_micros: window_cfg.window_micros,
        slide_micros: window_cfg.slide_micros,
        enabled_wall_secs: windowed_wall,
        disabled_wall_secs: single_wall,
        enabled_wall_secs_all_reps: windowed_walls,
        overhead_fraction: median(&windowed_fracs),
        overhead_fraction_all_reps: windowed_fracs,
        render_identical_all_reps: windowed_render_identical,
        dropped_bucket_events: windowed_drops,
    };

    let mut dispatcher_scaling = Vec::new();
    for (ci, &(workers, dispatchers)) in combos.iter().enumerate() {
        let walls = std::mem::take(&mut combo_walls[ci]);
        let wall = walls.iter().copied().fold(f64::INFINITY, f64::min);
        let b = combo_best[ci].take().unwrap_or(Breakdown {
            dispatch_busy: 0.0,
            parse_busy: Vec::new(),
            route_busy: 0.0,
            send_wait: 0.0,
            worker_busy: Vec::new(),
        });
        let slowest_parse = b.parse_busy.iter().copied().fold(0.0f64, f64::max);
        let slowest_worker = b.worker_busy.iter().copied().fold(0.0f64, f64::max);
        let critical_path = slowest_parse.max(b.route_busy).max(slowest_worker);
        let projected = per_sec(frames, critical_path);
        dispatcher_scaling.push(PipelineRun {
            workers,
            dispatchers,
            wall_secs: wall,
            wall_secs_all_reps: walls,
            measured_frames_per_sec: per_sec(frames, wall),
            measured_speedup_vs_single: single_wall / wall.max(1e-9),
            dispatch_busy_secs: b.dispatch_busy,
            dispatcher_parse_busy_secs: b.parse_busy,
            route_busy_secs: b.route_busy,
            send_wait_secs: b.send_wait,
            worker_busy_secs: b.worker_busy,
            critical_path_secs: critical_path,
            projected_frames_per_sec: projected,
            projected_speedup_vs_single: projected / single.frames_per_sec.max(1e-9),
            byte_identical_to_sequential: combo_identical[ci],
        });
    }
    // The headline `pipeline` rows are the grid points the CLI defaults
    // would pick: one per worker count at `min(workers, 2)` dispatchers.
    let pipeline_runs: Vec<PipelineRun> = dispatcher_scaling
        .iter()
        .filter(|r| r.dispatchers == r.workers.min(2))
        .cloned()
        .collect();

    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = BenchReport {
        experiment: "sniffer ingest throughput: sequential vs multi-dispatcher parallel pipeline"
            .into(),
        hardware_threads,
        trace: TraceInfo {
            profile: profile_name.into(),
            scale,
            frames,
            trace_span_secs,
        },
        single_thread: single,
        telemetry_overhead,
        trace_overhead,
        streaming_overhead,
        windowed_overhead,
        pipeline: pipeline_runs,
        dispatcher_scaling,
        allocation_diet: diet.unwrap_or(AllocationDiet {
            fqdn_arc_allocs_before: 0,
            fqdn_arc_allocs_after: 0,
            allocs_avoided: 0,
            reuse_fraction: 0.0,
        }),
        determinism_all_runs: determinism_all,
        note: format!(
            "Measured on {hardware_threads} hardware thread(s); each configuration ran {reps} \
             interleaved repetitions (wall_secs_all_reps) and reports the fastest, because the \
             host's performance is noisy-neighbor bursty. On a machine with fewer cores \
             than pipeline threads, measured wall-clock speedup cannot come from parallel \
             execution; what it shows instead is the sharding itself — splitting the flow \
             table, resolver, and pending-tag maps N ways shrinks each shard's working set, \
             so probes hit shorter chains and warmer caches. projected_frames_per_sec \
             reports frames / max(slowest dispatcher parse, serialized routing, slowest \
             worker busy) as a multi-core estimate: dispatchers flat-parse their trace \
             slices concurrently, the routing token serializes only the demux, and \
             workers run in parallel, so the slowest of those three busy windows bounds \
             the multi-core runtime. Busy times exclude channel blocking, but on a \
             saturated single core cross-stage preemption still inflates them, so the \
             projection stays conservative. Determinism is not projected: every merged \
             report at every worker x dispatcher grid point was compared byte-for-byte \
             against the sequential report. telemetry_overhead pairs an enabled and a \
             disabled sequential run within each repetition and reports the signed median \
             of the per-rep fractions — negative means below the noise floor — budgeted \
             at {:.0}% of ingest time. trace_overhead prices the flight recorder the \
             same paired way against a telemetry-only partner (tracing runs on top of a \
             bound registry) but gates the signed *minimum* of its pairs: the recorder's \
             true cost is ~1% while one scheduler burst inflates a sub-second window by \
             10-50%, so the cleanest of its {} pairs is the faithful estimate (median \
             and all pairs recorded alongside), budgeted at {:.0}%.",
            TELEMETRY_BUDGET_FRACTION * 100.0,
            trace_pairs,
            TRACE_BUDGET_FRACTION * 100.0
        ),
    };
    let telemetry_within_budget = report.telemetry_overhead.within_budget;
    let trace_within_budget = report.trace_overhead.within_budget;
    BenchOutcome {
        json: serde_json::to_string(&report).unwrap_or_else(|_| "{}".into()),
        telemetry_within_budget,
        trace_within_budget,
    }
}
