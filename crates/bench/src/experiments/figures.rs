//! Figures 3–14 of the paper, rendered as data series / text plots.

use std::fmt::Write as _;

use dnhunter_analytics::appspot::appspot_report;
use dnhunter_analytics::content::fqdns_per_org_over_time;
use dnhunter_analytics::degree::degree_report;
use dnhunter_analytics::delay::delay_report;
use dnhunter_analytics::growth::growth_curves;
use dnhunter_analytics::spatial::{hosting_breakdown, servers_over_time};
use dnhunter_analytics::timeseries::{BinnedCounts, FOUR_HOURS, TEN_MINUTES};
use dnhunter_analytics::tree::domain_tree;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::DomainName;
use dnhunter_orgdb::builtin_registry;

use crate::harness::Harness;

fn name(s: &str) -> DomainName {
    s.parse().expect("constant name")
}

/// Render a (x, y) series as aligned columns.
fn series_block(out: &mut String, label: &str, series: &[(f64, f64)]) {
    let _ = writeln!(out, "# {label}");
    for (x, y) in series {
        let _ = writeln!(out, "{x:>12.4}  {y:.4}");
    }
}

/// Fig. 3: degree CDFs on EU2-ADSL.
pub fn fig3(h: &mut Harness) -> String {
    let run = h.run("EU2-ADSL");
    let r = degree_report(&run.report.database);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 3: FQDN <-> serverIP degree (EU2-ADSL)");
    let _ = writeln!(
        out,
        "FQDNs mapping to a single IP: {:.0}%   (paper: 82%)",
        r.single_ip_fqdn_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "serverIPs serving a single FQDN: {:.0}%   (paper: 73%)",
        r.single_fqdn_ip_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "max serverIPs per FQDN: {}   max FQDNs per serverIP: {}",
        r.max_ips_per_fqdn, r.max_fqdns_per_ip
    );
    series_block(
        &mut out,
        "CDF: # serverIPs per FQDN",
        &r.ips_per_fqdn.log_series(1.0, 1000.0, 16),
    );
    series_block(
        &mut out,
        "CDF: # FQDNs per serverIP",
        &r.fqdns_per_ip.log_series(1.0, 1000.0, 16),
    );
    out
}

/// Fig. 4: serverIPs per selected second-level domain over the day
/// (EU1-ADSL2, 10-minute bins).
pub fn fig4(h: &mut Harness) -> String {
    // The paper labels this EU1-ADSL2 but plots a 24 h axis; the 24 h trace
    // at the same vantage point is EU1-ADSL1, which we use here.
    let run = h.run("EU1-ADSL1");
    let origin = run.report.trace_start.unwrap_or(0);
    let slds = [
        name("twitter.com"),
        name("youtube.com"),
        name("fbcdn.net"),
        name("facebook.com"),
        name("blogspot.com"),
    ];
    let series = servers_over_time(&run.report.database, &slds, origin, TEN_MINUTES);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4: # serverIPs per 2nd-level domain, 10-min bins (24h trace)"
    );
    for sld in &slds {
        let s = &series[sld];
        let peak = s.iter().map(|x| x.1).max().unwrap_or(0);
        let _ = writeln!(out, "# {sld}  (peak {peak})");
        for (ts, n) in s {
            let mins = (ts - origin) / 60_000_000;
            let _ = writeln!(out, "{mins:>6}min  {n}");
        }
    }
    out
}

/// Fig. 5: distinct FQDNs served per CDN/cloud over the day (EU1-ADSL2).
pub fn fig5(h: &mut Harness) -> String {
    // Same 24 h-axis note as fig4.
    let run = h.run("EU1-ADSL1");
    let orgdb = builtin_registry();
    let origin = run.report.trace_start.unwrap_or(0);
    let orgs = [
        "akamai",
        "amazon",
        "google",
        "level 3",
        "leaseweb",
        "cotendo",
        "edgecast",
        "microsoft",
    ];
    let series = fqdns_per_org_over_time(&run.report.database, &orgdb, &orgs, origin, TEN_MINUTES);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5: # active FQDN per CDN, 10-min bins (24h trace)"
    );
    for org in orgs {
        let s = &series[org];
        let peak = s.iter().map(|x| x.1).max().unwrap_or(0);
        let total =
            dnhunter_analytics::content::total_fqdns_on_org(&run.report.database, &orgdb, org);
        let _ = writeln!(out, "# {org}  (peak/10min {peak}, total distinct {total})");
        for (ts, n) in s {
            let mins = (ts - origin) / 60_000_000;
            let _ = writeln!(out, "{mins:>6}min  {n}");
        }
    }
    out
}

/// Fig. 6: unique-entity growth over the 18-day live window.
pub fn fig6(h: &mut Harness) -> String {
    let run = h.run("live");
    let origin = run.report.trace_start.unwrap_or(0);
    let day = 24 * 3600 * 1_000_000u64;
    let g = growth_curves(&run.report.database, origin, day / 2);
    let (fq, sld, ip) = g.totals();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: unique FQDN / 2nd-level / serverIP growth (live, half-day samples)"
    );
    let _ = writeln!(out, "totals: FQDN={fq} 2nd-level={sld} serverIP={ip}");
    let _ = writeln!(
        out,
        "tail growth (last 2 days): FQDN=+{} 2nd-level=+{} serverIP=+{}",
        dnhunter_analytics::growth::GrowthCurves::tail_growth(&g.unique_fqdns, 4),
        dnhunter_analytics::growth::GrowthCurves::tail_growth(&g.unique_second_levels, 4),
        dnhunter_analytics::growth::GrowthCurves::tail_growth(&g.unique_servers, 4),
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>8} {:>8}",
        "day", "FQDN", "2nd-lvl", "IP"
    );
    for (i, ts) in g.bin_starts.iter().enumerate() {
        let d = (*ts - origin) as f64 / day as f64;
        let _ = writeln!(
            out,
            "{d:>6.1} {:>8} {:>8} {:>8}",
            g.unique_fqdns[i], g.unique_second_levels[i], g.unique_servers[i]
        );
    }
    out
}

/// Figs. 7–8 share the tree renderer.
fn domain_structure(h: &mut Harness, sld: &str, fig: u8) -> String {
    let run = h.run("US-3G");
    let orgdb = builtin_registry();
    let suffixes = SuffixSet::builtin();
    let tree = domain_tree(&run.report.database, &name(sld), &orgdb, &suffixes);
    format!(
        "Figure {fig}: {sld} domain structure (US-3G)\n{}",
        tree.render()
    )
}

/// Fig. 7: linkedin.com.
pub fn fig7(h: &mut Harness) -> String {
    domain_structure(h, "linkedin.com", 7)
}

/// Fig. 8: zynga.com.
pub fn fig8(h: &mut Harness) -> String {
    domain_structure(h, "zynga.com", 8)
}

/// Fig. 9: hosting matrix of facebook/twitter/dailymotion across the three
/// viewpoints.
pub fn fig9(h: &mut Harness) -> String {
    let orgdb = builtin_registry();
    let providers = ["facebook.com", "twitter.com", "dailymotion.com"];
    let traces = ["EU1-ADSL1", "US-3G", "EU2-ADSL"];
    let mut out = String::new();
    let _ = writeln!(out, "Figure 9: organizations served by CDNs, per viewpoint");
    for provider in providers {
        let _ = writeln!(out, "## {provider}");
        for trace in traces {
            let run = h.run(trace);
            let shares = hosting_breakdown(&run.report.database, &name(provider), &orgdb);
            let cells: Vec<String> = shares
                .iter()
                .map(|s| format!("{}={:.0}%({} srv)", s.host, s.flow_share * 100.0, s.servers))
                .collect();
            let _ = writeln!(out, "{trace:>10}:  {}", cells.join("  "));
        }
    }
    out
}

/// Fig. 10: appspot tag cloud (top tokens by Eq. (1) score).
pub fn fig10(h: &mut Harness) -> String {
    let run = h.run("live");
    let suffixes = SuffixSet::builtin();
    let origin = run.report.trace_start.unwrap_or(0);
    let report = appspot_report(&run.report.database, &suffixes, origin, FOUR_HOURS);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 10: tag cloud of services on appspot.com (live)"
    );
    for (token, score) in report.tag_cloud.iter().take(25) {
        let bar = "#".repeat((score.sqrt() * 2.0).ceil() as usize);
        let _ = writeln!(out, "{token:>20} {score:>8.1} {bar}");
    }
    out
}

/// Fig. 11: tracker activity timeline (4-hour bins over 18 days).
pub fn fig11(h: &mut Harness) -> String {
    let run = h.run("live");
    let suffixes = SuffixSet::builtin();
    let origin = run.report.trace_start.unwrap_or(0);
    let report = appspot_report(&run.report.database, &suffixes, origin, FOUR_HOURS);
    let total_bins = (run.profile.duration_micros() / FOUR_HOURS + 1) as usize;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 11: appspot BitTorrent tracker activity, 4h bins ({} trackers)",
        report.tracker_timeline.len()
    );
    for (i, (fqdn, bins)) in report.tracker_timeline.iter().enumerate() {
        let mut lane = vec![b'.'; total_bins];
        for &b in bins {
            if (b as usize) < total_bins {
                lane[b as usize] = b'#';
            }
        }
        let _ = writeln!(
            out,
            "{:>3} {} {}",
            i + 1,
            String::from_utf8_lossy(&lane),
            fqdn
        );
    }
    out
}

/// Figs. 12–13 share the delay-CDF renderer.
fn delay_figure(h: &mut Harness, first_flow: bool, fig: u8) -> String {
    let mut out = String::new();
    let what = if first_flow {
        "first TCP flow"
    } else {
        "any TCP flow"
    };
    let _ = writeln!(out, "Figure {fig}: time between DNS response and {what}");
    for run in h.all_paper_runs() {
        let r = delay_report(&run.report.delays);
        let cdf = if first_flow {
            &r.first_flow
        } else {
            &r.any_flow
        };
        let _ = writeln!(
            out,
            "# {} (n={}, ≤1s {:.0}%, >10s {:.0}%)",
            run.profile.name,
            cdf.len(),
            cdf.at(1.0) * 100.0,
            (1.0 - cdf.at(10.0)) * 100.0
        );
        for (x, y) in cdf.log_series(0.01, 7200.0, 14) {
            let _ = writeln!(out, "{x:>10.2}s  {y:.3}");
        }
    }
    out
}

/// Fig. 12: first-flow delay.
pub fn fig12(h: &mut Harness) -> String {
    delay_figure(h, true, 12)
}

/// Fig. 13: any-flow delay (client cache lifetime).
pub fn fig13(h: &mut Harness) -> String {
    delay_figure(h, false, 13)
}

/// Fig. 14: DNS responses per 10-minute bin for every trace.
pub fn fig14(h: &mut Harness) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 14: DNS responses per 10-minute interval");
    for run in h.all_paper_runs() {
        let origin = run.report.trace_start.unwrap_or(0);
        let mut bins = BinnedCounts::new(origin, TEN_MINUTES);
        for &ts in &run.report.dns_response_times {
            bins.add(ts);
        }
        let _ = writeln!(out, "# {} (peak {})", run.profile.name, bins.peak());
        for (ts, n) in bins.series() {
            let mins = (ts - origin) / 60_000_000;
            let _ = writeln!(out, "{mins:>6}min  {n}");
        }
    }
    out
}
