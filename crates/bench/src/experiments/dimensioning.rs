//! §6: dimensioning the FQDN Clist, answer-list statistics, and label
//! confusion — plus the design ablations DESIGN.md calls out.

use std::fmt::Write as _;

use dnhunter_analytics::confusion::{answer_list_report, confusion_report};
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_resolver::dimensioning::{smallest_sufficient, sweep};
use dnhunter_resolver::{HashedTables, OrderedTables};

use crate::harness::Harness;

/// Clist sizes swept (fractions of the workload's response count are more
/// meaningful than absolute numbers at simulation scale).
const SIZES: &[usize] = &[256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];

/// The §6 report: efficiency vs L, the smallest L reaching 98%, the
/// answer-list distribution and the confusion analysis.
pub fn report(h: &mut Harness) -> String {
    let events = h.dimensioning_events();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 6: dimensioning the FQDN Clist (EU1-ADSL1 workload)"
    );
    let responses = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                dnhunter_resolver::dimensioning::ResolverEvent::Response { .. }
            )
        })
        .count();
    let _ = writeln!(
        out,
        "workload: {} events ({} responses)",
        events.len(),
        responses
    );

    let points = sweep::<OrderedTables>(&events, SIZES);
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>10} {:>12}",
        "L", "efficiency", "evictions", "est. memory"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:>10} {:>11.1}% {:>10} {:>11.1}MB",
            p.clist_size,
            p.efficiency * 100.0,
            p.evictions,
            p.memory_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    match smallest_sufficient(&points, 0.98) {
        Some(p) => {
            let _ = writeln!(
                out,
                "smallest tested L reaching 98% efficiency: {} (paper: ~2.1M at full ISP scale)",
                p.clist_size
            );
        }
        None => {
            let best = points.iter().map(|p| p.efficiency).fold(0.0f64, f64::max);
            let _ = writeln!(
                out,
                "no tested L reached 98% (best {:.1}%) — residual misses are invisible resolutions, not evictions",
                best * 100.0
            );
        }
    }

    // Ablation: ordered vs hashed tables give identical efficiency.
    let hashed = sweep::<HashedTables>(&events, &[SIZES[SIZES.len() - 1]]);
    let _ = writeln!(
        out,
        "map-backend ablation: ordered {:.3} vs hashed {:.3} efficiency at L={}",
        points.last().expect("sizes non-empty").efficiency,
        hashed[0].efficiency,
        SIZES[SIZES.len() - 1]
    );

    // Answer-list distribution and confusion, from the EU1-ADSL1 run.
    let run = h.run("EU1-ADSL1");
    let answers = answer_list_report(&run.report.answers_per_response);
    let _ = writeln!(
        out,
        "answer lists: single {:.0}%, 2-10 addrs {:.0}%, >10 addrs {:.0}%, max {} (paper: ~60% single, 20-25% 2-10, max >30 rare)",
        answers.fraction_single * 100.0,
        answers.fraction_2_to_10 * 100.0,
        answers.fraction_over_10 * 100.0,
        answers.max
    );
    let suffixes = SuffixSet::builtin();
    let conf = confusion_report(&run.report.database, &run.report.resolver_stats, &suffixes);
    let _ = writeln!(
        out,
        "label confusion: ambiguous pairs {:.1}%, excluding same-org redirections {:.1}% (paper: <4%), resolver replacements {:.1}%",
        conf.ambiguous_pair_fraction * 100.0,
        conf.ambiguous_excluding_redirects * 100.0,
        conf.resolver_replacement_ratio * 100.0
    );
    out
}
