//! One function per paper artefact. Each returns the rendered text that
//! `repro` prints (and that EXPERIMENTS.md embeds).

pub mod dimensioning;
pub mod figures;
pub mod tables;

use crate::harness::Harness;

/// Experiment registry entry.
pub struct Experiment {
    /// Identifier: `table1` … `table9`, `fig3` … `fig14`, `dimensioning`.
    pub id: &'static str,
    /// What the paper artefact shows.
    pub description: &'static str,
    /// Produce the rendered text for this artefact.
    pub run: fn(&mut Harness) -> String,
}

/// Every experiment, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            description: "Dataset description",
            run: tables::table1,
        },
        Experiment {
            id: "table2",
            description: "DNS resolver hit ratio per protocol",
            run: tables::table2,
        },
        Experiment {
            id: "table3",
            description: "DN-Hunter vs reverse DNS lookup",
            run: tables::table3,
        },
        Experiment {
            id: "table4",
            description: "TLS certificate inspection vs FQDN",
            run: tables::table4,
        },
        Experiment {
            id: "table5",
            description: "Top-10 domains hosted on Amazon EC2",
            run: tables::table5,
        },
        Experiment {
            id: "table6",
            description: "Service tags on well-known ports (EU1-FTTH)",
            run: tables::table6,
        },
        Experiment {
            id: "table7",
            description: "Service tags on frequently used ports (US-3G)",
            run: tables::table7,
        },
        Experiment {
            id: "table8",
            description: "Appspot service classes (live)",
            run: tables::table8,
        },
        Experiment {
            id: "table9",
            description: "Fraction of useless DNS resolutions",
            run: tables::table9,
        },
        Experiment {
            id: "fig3",
            description: "CDFs of serverIPs per FQDN / FQDNs per serverIP",
            run: figures::fig3,
        },
        Experiment {
            id: "fig4",
            description: "serverIPs per 2nd-level domain over a day",
            run: figures::fig4,
        },
        Experiment {
            id: "fig5",
            description: "Active FQDNs per CDN over a day",
            run: figures::fig5,
        },
        Experiment {
            id: "fig6",
            description: "Unique FQDN / 2nd-level / serverIP growth (live)",
            run: figures::fig6,
        },
        Experiment {
            id: "fig7",
            description: "linkedin.com domain structure (US-3G)",
            run: figures::fig7,
        },
        Experiment {
            id: "fig8",
            description: "zynga.com domain structure (US-3G)",
            run: figures::fig8,
        },
        Experiment {
            id: "fig9",
            description: "Content providers vs CDNs across viewpoints",
            run: figures::fig9,
        },
        Experiment {
            id: "fig10",
            description: "Appspot tag cloud (live)",
            run: figures::fig10,
        },
        Experiment {
            id: "fig11",
            description: "BitTorrent tracker timeline on appspot (live)",
            run: figures::fig11,
        },
        Experiment {
            id: "fig12",
            description: "First-flow delay CDF",
            run: figures::fig12,
        },
        Experiment {
            id: "fig13",
            description: "Any-flow delay CDF (cache lifetime)",
            run: figures::fig13,
        },
        Experiment {
            id: "fig14",
            description: "DNS responses per 10 minutes",
            run: figures::fig14,
        },
        Experiment {
            id: "dimensioning",
            description: "Clist sizing, answer lists, label confusion (§6)",
            run: dimensioning::report,
        },
    ]
}

/// Find an experiment by id (`table2`, `fig8`, `dimensioning`).
pub fn by_id(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_paper_artefacts() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        for t in 1..=9 {
            assert!(ids.contains(&format!("table{t}").as_str()), "table{t}");
        }
        for f in 3..=14 {
            assert!(ids.contains(&format!("fig{f}").as_str()), "fig{f}");
        }
        assert!(ids.contains(&"dimensioning"));
    }

    #[test]
    fn by_id_lookup() {
        assert!(by_id("table5").is_some());
        assert!(by_id("fig11").is_some());
        assert!(by_id("nope").is_none());
    }
}
