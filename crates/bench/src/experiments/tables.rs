//! Tables 1–9 of the paper.

use std::collections::HashMap;
use std::fmt::Write as _;

use dnhunter_analytics::content;
use dnhunter_analytics::report::{human_bytes, pct, Align, TextTable};
use dnhunter_analytics::tags;
use dnhunter_analytics::timeseries::{BinnedCounts, FOUR_HOURS};
use dnhunter_baselines::{certificate_comparison, reverse_lookup_comparison, well_known_service};
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_flow::AppProtocol;
use dnhunter_orgdb::builtin_registry;

use crate::harness::{ExecutedTrace, Harness};

/// Tab. 1: dataset description (trace name, start, duration, peak DNS
/// rate, flow count) — for the *generated* traces.
pub fn table1(h: &mut Harness) -> String {
    let mut t = TextTable::new(
        "Table 1: Dataset description (synthetic)",
        &[
            "Trace",
            "Start [GMT]",
            "Duration",
            "Peak DNS resp",
            "TCP flows",
        ],
    )
    .aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for run in h.all_paper_runs() {
        let p = &run.profile;
        // Peak responses per minute.
        let origin = run.report.trace_start.unwrap_or(0);
        let mut per_min = BinnedCounts::new(origin, 60_000_000);
        for &ts in &run.report.dns_response_times {
            per_min.add(ts);
        }
        t.row(&[
            p.name.clone(),
            format!(
                "{:02}:{:02}",
                p.start_hour as u32,
                ((p.start_hour % 1.0) * 60.0) as u32
            ),
            format!("{}h", p.duration_hours),
            format!("{}/min", per_min.peak()),
            format!("{}", run.report.database.len()),
        ]);
    }
    t.render()
}

/// Per-protocol (flows, hits) outside the warm-up window.
fn protocol_stats(run: &ExecutedTrace) -> HashMap<AppProtocol, (u64, u64)> {
    let mut stats: HashMap<AppProtocol, (u64, u64)> = HashMap::new();
    for f in run.report.database.flows() {
        if f.in_warmup {
            continue;
        }
        let e = stats.entry(f.protocol).or_default();
        e.0 += 1;
        e.1 += u64::from(f.is_tagged());
    }
    stats
}

/// Tab. 2: DNS resolver hit ratio for HTTP / TLS / P2P per trace.
pub fn table2(h: &mut Harness) -> String {
    let mut t = TextTable::new(
        "Table 2: DNS Resolver hit ratio",
        &[
            "Protocol",
            "US-3G",
            "EU2-ADSL",
            "EU1-ADSL1",
            "EU1-ADSL2",
            "EU1-FTTH",
        ],
    )
    .aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let runs = h.all_paper_runs();
    let stats: Vec<HashMap<AppProtocol, (u64, u64)>> =
        runs.iter().map(|r| protocol_stats(r)).collect();
    for proto in [AppProtocol::Http, AppProtocol::Tls, AppProtocol::P2p] {
        let mut row = vec![proto.label().to_uppercase()];
        // Paper column order: US-3G last in Tab.1 but their table lists EU
        // first; keep trace order of the header above.
        for s in &stats {
            let (n, hits) = s.get(&proto).copied().unwrap_or((0, 0));
            if n == 0 {
                row.push("-".into());
            } else {
                row.push(format!("{:.0}% ({})", 100.0 * hits as f64 / n as f64, n));
            }
        }
        t.row(&row);
    }
    t.render()
}

/// Tab. 3: reverse-lookup comparison on EU1-ADSL2, 1000 sampled servers.
pub fn table3(h: &mut Harness) -> String {
    let run = h.run("EU1-ADSL2");
    let suffixes = SuffixSet::builtin();
    let counts =
        reverse_lookup_comparison(&run.report.database, &run.ptr_zone, &suffixes, 1000, 42);
    let f = counts.fractions();
    let mut t = TextTable::new(
        "Table 3: DN-Hunter vs reverse lookup (EU1-ADSL2)",
        &["Outcome", "Share"],
    )
    .aligns(&[Align::Left, Align::Right]);
    t.row(&["Same FQDN", &pct(f[0])]);
    t.row(&["Same 2nd-level domain", &pct(f[1])]);
    t.row(&["Totally different", &pct(f[2])]);
    t.row(&["No-answer", &pct(f[3])]);
    let mut out = t.render();
    let _ = writeln!(out, "(sampled {} labelled servers)", counts.total());
    out
}

/// Tab. 4: certificate inspection vs DN-Hunter label on EU1-ADSL2 TLS flows.
pub fn table4(h: &mut Harness) -> String {
    let run = h.run("EU1-ADSL2");
    let suffixes = SuffixSet::builtin();
    let counts = certificate_comparison(&run.report.database, &suffixes);
    let f = counts.fractions();
    let mut t = TextTable::new(
        "Table 4: TLS certificate-inspection vs DN-Hunter FQDN (EU1-ADSL2)",
        &["Outcome", "Share"],
    )
    .aligns(&[Align::Left, Align::Right]);
    t.row(&["Certificate equal FQDN", &pct(f[0])]);
    t.row(&["Generic certificate", &pct(f[1])]);
    t.row(&["Totally different certificate", &pct(f[2])]);
    t.row(&["No certificate", &pct(f[3])]);
    let mut out = t.render();
    let _ = writeln!(out, "({} TLS flows compared)", counts.total());
    out
}

/// Tab. 5: top-10 second-level domains on Amazon EC2, US vs EU viewpoint.
pub fn table5(h: &mut Harness) -> String {
    let suffixes = SuffixSet::builtin();
    let orgdb = builtin_registry();
    let us = h.run("US-3G");
    let eu = h.run("EU1-ADSL1");
    let top_us = content::top_domains_on_org(&us.report.database, &orgdb, "amazon", 10, &suffixes);
    let top_eu = content::top_domains_on_org(&eu.report.database, &orgdb, "amazon", 10, &suffixes);
    let mut t = TextTable::new(
        "Table 5: Top-10 domains hosted on the Amazon EC2 cloud",
        &["Rank", "US-3G", "%", "EU1-ADSL1", "%"],
    )
    .aligns(&[
        Align::Right,
        Align::Left,
        Align::Right,
        Align::Left,
        Align::Right,
    ]);
    for i in 0..10 {
        let (ud, up) = top_us
            .get(i)
            .map(|(d, p)| (d.to_string(), format!("{:.0}", p * 100.0)))
            .unwrap_or_default();
        let (ed, ep) = top_eu
            .get(i)
            .map(|(d, p)| (d.to_string(), format!("{:.0}", p * 100.0)))
            .unwrap_or_default();
        t.row(&[format!("{}", i + 1), ud, up, ed, ep]);
    }
    t.render()
}

/// Shared renderer for Tabs. 6–7.
fn tag_table(title: &str, run: &ExecutedTrace, ports: &[u16]) -> String {
    let suffixes = SuffixSet::builtin();
    let mut t = TextTable::new(title, &["Port", "Keywords (score)", "GT"]).aligns(&[
        Align::Right,
        Align::Left,
        Align::Left,
    ]);
    for &port in ports {
        let tagged = tags::extract_tags(&run.report.database, port, 6, &suffixes);
        if tagged.is_empty() {
            continue;
        }
        let kw: Vec<String> = tagged
            .iter()
            .map(|tag| format!("({:.0}){}", tag.score, tag.token))
            .collect();
        t.row(&[
            port.to_string(),
            kw.join(", "),
            well_known_service(port).unwrap_or("?").to_string(),
        ]);
    }
    t.render()
}

/// Tab. 6: keyword extraction on well-known ports, EU1-FTTH.
pub fn table6(h: &mut Harness) -> String {
    let run = h.run("EU1-FTTH");
    tag_table(
        "Table 6: Keyword extraction, well-known ports (EU1-FTTH)",
        &run,
        &[25, 110, 143, 554, 587, 995, 1863],
    )
}

/// Tab. 7: keyword extraction on frequently used non-standard ports, US-3G.
pub fn table7(h: &mut Harness) -> String {
    let run = h.run("US-3G");
    tag_table(
        "Table 7: Keyword extraction, frequently used ports (US-3G)",
        &run,
        &[
            1080, 1337, 2710, 5050, 5190, 5222, 5223, 5228, 6969, 12043, 12046, 18182,
        ],
    )
}

/// Tab. 8: appspot service classes from the live deployment.
pub fn table8(h: &mut Harness) -> String {
    let run = h.run("live");
    let suffixes = SuffixSet::builtin();
    let origin = run.report.trace_start.unwrap_or(0);
    let report = dnhunter_analytics::appspot::appspot_report(
        &run.report.database,
        &suffixes,
        origin,
        FOUR_HOURS,
    );
    let mut t = TextTable::new(
        "Table 8: Appspot services (live)",
        &["Service type", "Services", "Flows", "C2S", "S2C"],
    )
    .aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    t.row(&[
        "BitTorrent trackers".to_string(),
        report.trackers.services.to_string(),
        report.trackers.flows.to_string(),
        human_bytes(report.trackers.bytes_c2s),
        human_bytes(report.trackers.bytes_s2c),
    ]);
    t.row(&[
        "General services".to_string(),
        report.general.services.to_string(),
        report.general.flows.to_string(),
        human_bytes(report.general.bytes_c2s),
        human_bytes(report.general.bytes_s2c),
    ]);
    t.render()
}

/// Tab. 9: fraction of useless DNS resolutions per trace.
pub fn table9(h: &mut Harness) -> String {
    let mut t = TextTable::new(
        "Table 9: Fraction of useless DNS resolutions",
        &["Trace", "Useless DNS"],
    )
    .aligns(&[Align::Left, Align::Right]);
    for run in h.all_paper_runs() {
        t.row(&[
            run.profile.name.clone(),
            pct(run.report.delays.useless_fraction()),
        ]);
    }
    t.render()
}
