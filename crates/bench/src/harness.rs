//! Lazy per-profile trace execution shared by all experiments.

use std::collections::HashMap;
use std::rc::Rc;

use dnhunter::{RealTimeSniffer, SnifferConfig, SnifferReport};
use dnhunter_net::{Packet, TransportHeader};
use dnhunter_resolver::dimensioning::ResolverEvent;
use dnhunter_simnet::{profiles, PtrZone, TraceGenerator, TraceProfile};

/// One executed trace: the sniffer's report plus simulator ground truth.
pub struct ExecutedTrace {
    /// The profile that was generated.
    pub profile: TraceProfile,
    /// The sniffer's full output over the generated frames.
    pub report: SnifferReport,
    /// The synthetic reverse zone (Tab. 3 baseline input).
    pub ptr_zone: PtrZone,
    /// Ground-truth counters from the generator.
    pub gen_stats: dnhunter_simnet::generator::GenStats,
}

/// Lazily generates and sniffs each profile once, at a common scale.
pub struct Harness {
    scale: f64,
    runs: HashMap<String, Rc<ExecutedTrace>>,
    /// Events for the Clist dimensioning sweep (§6), kept separately
    /// because they need the raw frame stream.
    dimensioning_events: Option<Rc<Vec<ResolverEvent>>>,
}

impl Harness {
    /// `scale` multiplies every profile's client population (1.0 = the
    /// defaults documented in `dnhunter-simnet::profiles`).
    pub fn new(scale: f64) -> Self {
        Harness {
            scale,
            runs: HashMap::new(),
            dimensioning_events: None,
        }
    }

    /// The scale in use.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Run (or fetch) one of the Tab. 1 traces by name, or the live trace
    /// via `"live"`.
    pub fn run(&mut self, name: &str) -> Rc<ExecutedTrace> {
        if let Some(r) = self.runs.get(name) {
            return Rc::clone(r);
        }
        let profile = profiles::profile_by_name(name)
            .unwrap_or_else(|| panic!("unknown profile '{name}'"))
            .scaled(self.scale);
        let live = name.eq_ignore_ascii_case("live");
        let executed = execute(profile, live);
        let rc = Rc::new(executed);
        self.runs.insert(name.to_string(), Rc::clone(&rc));
        rc
    }

    /// All five Tab. 1 traces, in paper order.
    pub fn all_paper_runs(&mut self) -> Vec<Rc<ExecutedTrace>> {
        ["US-3G", "EU2-ADSL", "EU1-ADSL1", "EU1-ADSL2", "EU1-FTTH"]
            .iter()
            .map(|n| self.run(n))
            .collect()
    }

    /// Resolver event stream of EU1-ADSL1 for the §6 sweep.
    pub fn dimensioning_events(&mut self) -> Rc<Vec<ResolverEvent>> {
        if let Some(ev) = &self.dimensioning_events {
            return Rc::clone(ev);
        }
        let profile = profiles::eu1_adsl1().scaled((self.scale * 0.6).min(1.0));
        let trace = TraceGenerator::new(profile, false).generate();
        let events = resolver_events_from_frames(
            trace
                .records
                .iter()
                .map(|r| (r.timestamp_micros(), r.frame.as_slice())),
        );
        let rc = Rc::new(events);
        self.dimensioning_events = Some(Rc::clone(&rc));
        rc
    }
}

/// Generate + sniff one profile.
pub fn execute(profile: TraceProfile, live: bool) -> ExecutedTrace {
    let generator = TraceGenerator::new(profile.clone(), live);
    let trace = generator.generate();
    let mut sniffer = RealTimeSniffer::new(SnifferConfig {
        warmup_micros: profile.warmup_micros,
        ..SnifferConfig::default()
    });
    for rec in &trace.records {
        sniffer.process_record(rec);
    }
    ExecutedTrace {
        profile,
        report: sniffer.finish(),
        ptr_zone: trace.ptr_zone,
        gen_stats: trace.stats,
    }
}

/// Turn a frame stream into the resolver-event workload of §6:
/// DNS responses (source port 53) become `Response`, TCP SYNs become
/// `FlowStart`.
pub fn resolver_events_from_frames<'a, I>(frames: I) -> Vec<ResolverEvent>
where
    I: Iterator<Item = (u64, &'a [u8])>,
{
    let mut events = Vec::new();
    for (_ts, frame) in frames {
        let Ok(pkt) = Packet::parse(frame) else {
            continue;
        };
        match &pkt.transport {
            TransportHeader::Udp(udp) if udp.src_port == 53 => {
                let Ok(msg) = dnhunter_dns::codec::decode(&pkt.payload) else {
                    continue;
                };
                if !msg.header.is_response {
                    continue;
                }
                let Some(fqdn) = msg.queried_fqdn().cloned() else {
                    continue;
                };
                let servers = msg.answer_addresses();
                if servers.is_empty() {
                    continue;
                }
                events.push(ResolverEvent::Response {
                    client: pkt.dst_ip(),
                    fqdn,
                    servers,
                });
            }
            TransportHeader::Tcp(tcp) if tcp.src_port == 53 => {
                // DNS-over-TCP retries carry the real answers for
                // truncated responses.
                for msg in dnhunter_dns::codec::decode_tcp_stream(&pkt.payload) {
                    if !msg.header.is_response || msg.header.truncated {
                        continue;
                    }
                    let Some(fqdn) = msg.queried_fqdn().cloned() else {
                        continue;
                    };
                    let servers = msg.answer_addresses();
                    if servers.is_empty() {
                        continue;
                    }
                    events.push(ResolverEvent::Response {
                        client: pkt.dst_ip(),
                        fqdn,
                        servers,
                    });
                }
            }
            TransportHeader::Tcp(tcp)
                if tcp.flags.syn() && !tcp.flags.ack() && tcp.dst_port != 53 =>
            {
                // Peer-wire flows never have a resolution; the paper's
                // efficiency figure is about resolvable traffic.
                if let std::net::IpAddr::V4(v4) = pkt.dst_ip() {
                    let first = v4.octets()[0];
                    if first == 171 || first == 186 {
                        continue;
                    }
                }
                events.push(ResolverEvent::FlowStart {
                    client: pkt.src_ip(),
                    server: pkt.dst_ip(),
                });
            }
            _ => {}
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_caches_runs() {
        let mut h = Harness::new(0.04);
        let a = h.run("EU1-FTTH");
        let b = h.run("EU1-FTTH");
        assert!(Rc::ptr_eq(&a, &b));
        assert!(a.report.database.len() > 10);
    }

    #[test]
    fn dimensioning_events_contain_both_kinds() {
        let mut h = Harness::new(0.04);
        let ev = h.dimensioning_events();
        let responses = ev
            .iter()
            .filter(|e| matches!(e, ResolverEvent::Response { .. }))
            .count();
        let flows = ev
            .iter()
            .filter(|e| matches!(e, ResolverEvent::FlowStart { .. }))
            .count();
        assert!(responses > 10, "responses {responses}");
        assert!(flows > 10, "flows {flows}");
    }
}
