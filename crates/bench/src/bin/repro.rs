//! `repro` — regenerate the paper's tables and figures from synthetic
//! traces.
//!
//! ```text
//! repro --all [--scale F] [--out DIR]
//! repro --table N | --figure N | --dimensioning
//! repro --list
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use dnhunter_bench::experiments::{by_id, registry};
use dnhunter_bench::Harness;

fn usage() -> &'static str {
    "usage: repro [--all] [--table N] [--figure N] [--dimensioning] \
     [--bench-sniffer [--quick]] [--scale F] [--out DIR] [--list]\n\
     --all            run every experiment (default if nothing selected)\n\
     --table N        run Table N (1-9)\n\
     --figure N       run Figure N (3-14)\n\
     --dimensioning   run the §6 Clist sizing analysis\n\
     --bench-sniffer  measure sequential vs parallel sniffer throughput and\n\
                      write BENCH_sniffer.json to the current directory\n\
     --quick          shrink --bench-sniffer to a CI smoke run\n\
     --scale F        client-population scale factor (default 0.25)\n\
     --out DIR        also write one .txt file per experiment into DIR\n\
     --list           list experiment ids and exit"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.25f64;
    let mut out_dir: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut all = false;
    let mut bench_sniffer = false;
    let mut quick = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--bench-sniffer" => bench_sniffer = true,
            "--quick" => quick = true,
            "--list" => {
                for e in registry() {
                    println!("{:<14} {}", e.id, e.description);
                }
                return ExitCode::SUCCESS;
            }
            "--table" | "--figure" => {
                let kind = if args[i] == "--table" { "table" } else { "fig" };
                i += 1;
                let Some(n) = args.get(i) else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                selected.push(format!("{kind}{n}"));
            }
            "--dimensioning" => selected.push("dimensioning".into()),
            "--scale" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(f) if f > 0.0 => scale = f,
                    _ => {
                        eprintln!("--scale needs a positive number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(d) => out_dir = Some(d.clone()),
                    None => {
                        eprintln!("--out needs a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if bench_sniffer {
        let outcome = dnhunter_bench::sniffer_bench::run(quick);
        let json = outcome.json;
        let path = "BENCH_sniffer.json";
        match std::fs::File::create(path) {
            Ok(mut f) => {
                if let Err(e) = f
                    .write_all(json.as_bytes())
                    .and_then(|()| f.write_all(b"\n"))
                {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("# wrote {path}");
            }
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("{json}");
        if !outcome.telemetry_within_budget {
            eprintln!(
                "# bench-sniffer: FAILED — telemetry-enabled ingest exceeded its overhead \
                 budget (see telemetry_overhead in {path})"
            );
            return ExitCode::FAILURE;
        }
        if !outcome.trace_within_budget {
            eprintln!(
                "# bench-sniffer: FAILED — flight-recorder-enabled ingest exceeded its \
                 overhead budget (see trace_overhead in {path})"
            );
            return ExitCode::FAILURE;
        }
        if selected.is_empty() && !all {
            return ExitCode::SUCCESS;
        }
    }

    if selected.is_empty() {
        all = true;
    }
    let experiments: Vec<_> = if all {
        registry()
    } else {
        let mut v = Vec::new();
        for id in &selected {
            match by_id(id) {
                Some(e) => v.push(e),
                None => {
                    eprintln!("unknown experiment '{id}' (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        v
    };

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut harness = Harness::new(scale);
    eprintln!(
        "# running {} experiment(s) at scale {scale} — traces are generated once and reused",
        experiments.len()
    );
    for e in experiments {
        eprintln!("# {} — {}", e.id, e.description);
        let started = std::time::Instant::now();
        let text = (e.run)(&mut harness);
        eprintln!("#   done in {:.1}s", started.elapsed().as_secs_f64());
        println!("{text}");
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{}.txt", e.id);
            match std::fs::File::create(&path) {
                Ok(mut f) => {
                    let _ = f.write_all(text.as_bytes());
                }
                Err(err) => eprintln!("cannot write {path}: {err}"),
            }
        }
    }
    ExitCode::SUCCESS
}
