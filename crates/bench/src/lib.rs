//! # dnhunter-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the paper's evaluation from synthetic traces, plus shared plumbing for
//! the Criterion micro-benchmarks.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p dnhunter-bench --bin repro -- --all
//! ```
//!
//! or a single artefact:
//!
//! ```text
//! cargo run --release -p dnhunter-bench --bin repro -- --table 2
//! cargo run --release -p dnhunter-bench --bin repro -- --figure 8
//! cargo run --release -p dnhunter-bench --bin repro -- --dimensioning
//! ```

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
/// The recorded sniffer-throughput baseline (`BENCH_sniffer.json`).
pub mod sniffer_bench;

pub use harness::Harness;
