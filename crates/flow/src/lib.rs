//! # dnhunter-flow
//!
//! The *Flow Sniffer* half of DN-Hunter's real-time component (paper §3.1):
//! reconstructs layer-4 flows by aggregating packets on the 5-tuple
//! `(clientIP, serverIP, sPort, dPort, protocol)`, tracks TCP connection
//! state, accounts bytes/packets per direction, and classifies application
//! protocols with a lightweight DPI engine:
//!
//! * [`http`] — request-line + `Host:` header parsing
//! * [`tls`] — TLS record/handshake parsing with SNI extraction and an
//!   X.509-subset certificate codec (enough to pull the subject CN, which is
//!   what the paper's certificate-inspection baseline needs)
//! * [`bittorrent`] — peer-wire handshake and HTTP tracker-announce
//!   detection (the paper's "P2P" class)
//!
//! The DPI verdicts serve as the ground truth against which the DNS-based
//! labelling is compared (Tab. 2) and as the "GT" column of Tables 6–7.

#![forbid(unsafe_code)]

pub mod bittorrent;
pub mod dpi;
pub mod http;
pub mod record;
pub mod table;
pub mod tcp_state;
pub mod tls;
pub mod tuple;

pub use dpi::AppProtocol;
pub use record::DPI_SNAP;
pub use record::{FlowDirection, FlowRecord};
pub use table::{CompactSeg, FlowEvent, FlowTable, FlowTableConfig};
pub use tcp_state::{TcpConnState, TcpTracker};
pub use tuple::{server_trace_key, CanonFlowKey, FlowKey};
