//! TLS record/handshake parsing — SNI extraction from ClientHello and
//! subject-CN extraction from the Certificate message.
//!
//! The paper compares DN-Hunter against a DPI extended to inspect TLS
//! certificates (§5.2.1, Tab. 4); the simulator emits realistic handshakes
//! through [`build_client_hello`] / [`build_server_flight`] and this module
//! decodes them the way such a DPI would.

pub mod x509;

/// TLS record content types.
pub const CONTENT_HANDSHAKE: u8 = 22;
/// Handshake message types we care about.
pub const HS_CLIENT_HELLO: u8 = 1;
pub const HS_SERVER_HELLO: u8 = 2;
pub const HS_CERTIFICATE: u8 = 11;

/// What a passive observer learned from one direction of a TLS flow.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TlsInfo {
    /// Server name from the ClientHello SNI extension.
    pub sni: Option<String>,
    /// Subject common name of the first certificate, if a Certificate
    /// message was observed.
    pub certificate_cn: Option<String>,
    /// True if a ServerHello was seen.
    pub server_hello: bool,
    /// True if a Certificate message was seen (even without a parsable CN).
    pub certificate_seen: bool,
}

/// Quick check: does this payload begin with a plausible TLS record?
// allow_lint(L1): indices 0..=2 are readable — `payload.len() >= 5` is the first conjunct
pub fn looks_like_tls(payload: &[u8]) -> bool {
    payload.len() >= 5 && (20..=23).contains(&payload[0]) && payload[1] == 3 && payload[2] <= 4
}

/// Parse all complete TLS records at the start of `payload`, accumulating
/// handshake information. Unknown/encrypted content is skipped gracefully.
// allow_lint(L1): header bytes pos..pos+5 are readable by the loop guard; body_start.. slices are clamped by the `body_end > payload.len()` branch
pub fn inspect(payload: &[u8]) -> TlsInfo {
    let mut info = TlsInfo::default();
    let mut pos = 0;
    while pos + 5 <= payload.len() {
        let ctype = payload[pos];
        if !(20..=23).contains(&ctype) || payload[pos + 1] != 3 {
            break;
        }
        let len = usize::from(u16::from_be_bytes([payload[pos + 3], payload[pos + 4]]));
        let body_start = pos + 5;
        let body_end = body_start + len;
        if body_end > payload.len() {
            // Truncated record (segment boundary); inspect what we have.
            if ctype == CONTENT_HANDSHAKE {
                inspect_handshakes(&payload[body_start..], &mut info);
            }
            break;
        }
        if ctype == CONTENT_HANDSHAKE {
            inspect_handshakes(&payload[body_start..body_end], &mut info);
        }
        pos = body_end;
    }
    info
}

/// Walk the handshake messages inside one record body.
// allow_lint(L1): the 4 header bytes are readable by the `body.len() >= 4` guard; msg_end is min-clamped to body.len(); the tail slice is guarded by the `4 + hs_len > body.len()` break
fn inspect_handshakes(mut body: &[u8], info: &mut TlsInfo) {
    while body.len() >= 4 {
        let hs_type = body[0];
        let hs_len =
            (usize::from(body[1]) << 16) | (usize::from(body[2]) << 8) | usize::from(body[3]);
        let msg_end = (4 + hs_len).min(body.len());
        let msg = &body[4..msg_end];
        match hs_type {
            HS_CLIENT_HELLO => {
                if let Some(sni) = parse_client_hello_sni(msg) {
                    info.sni = Some(sni);
                }
            }
            HS_SERVER_HELLO => info.server_hello = true,
            HS_CERTIFICATE => {
                info.certificate_seen = true;
                if let Some(cn) = parse_certificate_cn(msg) {
                    info.certificate_cn = Some(cn);
                }
            }
            _ => {}
        }
        if 4 + hs_len > body.len() {
            break;
        }
        body = &body[4 + hs_len..];
    }
}

/// Extract the SNI host name from a ClientHello body (after the 4-byte
/// handshake header).
// allow_lint(L1): extension-walk indices stay below ext_end which is min-clamped to msg.len(); SNI body indices are guarded by the d.len() checks
fn parse_client_hello_sni(msg: &[u8]) -> Option<String> {
    // version(2) random(32)
    let mut pos = 34;
    // session_id
    let sid_len = usize::from(*msg.get(pos)?);
    pos += 1 + sid_len;
    // cipher_suites
    let cs_len = usize::from(u16::from_be_bytes([*msg.get(pos)?, *msg.get(pos + 1)?]));
    pos += 2 + cs_len;
    // compression_methods
    let cm_len = usize::from(*msg.get(pos)?);
    pos += 1 + cm_len;
    // extensions
    let ext_total = usize::from(u16::from_be_bytes([*msg.get(pos)?, *msg.get(pos + 1)?]));
    pos += 2;
    let ext_end = (pos + ext_total).min(msg.len());
    while pos + 4 <= ext_end {
        let etype = u16::from_be_bytes([msg[pos], msg[pos + 1]]);
        let elen = usize::from(u16::from_be_bytes([msg[pos + 2], msg[pos + 3]]));
        let edata_start = pos + 4;
        let edata_end = (edata_start + elen).min(ext_end);
        if etype == 0 {
            // server_name: list_len(2) type(1) name_len(2) name
            let d = &msg[edata_start..edata_end];
            if d.len() >= 5 && d[2] == 0 {
                let nlen = usize::from(u16::from_be_bytes([d[3], d[4]]));
                if 5 + nlen <= d.len() {
                    return Some(String::from_utf8_lossy(&d[5..5 + nlen]).to_ascii_lowercase());
                }
            }
            return None;
        }
        pos = edata_start + elen;
    }
    None
}

/// Extract the subject CN from a Certificate message body: the message is a
/// 3-byte list length, then per-certificate 3-byte lengths + DER bytes.
// allow_lint(L1): indices 3..=5 are readable — the `msg.len() < 6` case returned None above
fn parse_certificate_cn(msg: &[u8]) -> Option<String> {
    if msg.len() < 6 {
        return None;
    }
    let first_len = (usize::from(msg[3]) << 16) | (usize::from(msg[4]) << 8) | usize::from(msg[5]);
    let der = msg.get(6..6 + first_len)?;
    x509::extract_common_name(der)
}

// ---------------------------------------------------------------------------
// Builders (used by the simulator)
// ---------------------------------------------------------------------------

fn record(ctype: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + body.len());
    out.push(ctype);
    out.extend_from_slice(&[3, 1]); // TLS 1.0 record version, as real stacks send
    out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    out.extend_from_slice(body);
    out
}

fn handshake(hs_type: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.push(hs_type);
    out.push((body.len() >> 16) as u8);
    out.push((body.len() >> 8) as u8);
    out.push(body.len() as u8);
    out.extend_from_slice(body);
    out
}

/// Build a ClientHello record, optionally carrying an SNI extension.
/// `random_seed` varies the random field deterministically.
pub fn build_client_hello(sni: Option<&str>, random_seed: u64) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&[3, 3]); // TLS 1.2
    let mut random = [0u8; 32];
    for (i, b) in random.iter_mut().enumerate() {
        *b = (random_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(i as u32)
            >> 24) as u8;
    }
    body.extend_from_slice(&random);
    body.push(0); // empty session id
    let suites: [u16; 4] = [0xc02f, 0xc030, 0x009e, 0x002f];
    body.extend_from_slice(&((suites.len() * 2) as u16).to_be_bytes());
    for s in suites {
        body.extend_from_slice(&s.to_be_bytes());
    }
    body.extend_from_slice(&[1, 0]); // one compression method: null
    let mut exts = Vec::new();
    if let Some(name) = sni {
        let name = name.as_bytes();
        let mut ext = Vec::new();
        ext.extend_from_slice(&((name.len() + 3) as u16).to_be_bytes()); // list len
        ext.push(0); // host_name
        ext.extend_from_slice(&(name.len() as u16).to_be_bytes());
        ext.extend_from_slice(name);
        exts.extend_from_slice(&0u16.to_be_bytes()); // ext type server_name
        exts.extend_from_slice(&(ext.len() as u16).to_be_bytes());
        exts.extend_from_slice(&ext);
    }
    // supported_groups extension for realism
    exts.extend_from_slice(&10u16.to_be_bytes());
    exts.extend_from_slice(&4u16.to_be_bytes());
    exts.extend_from_slice(&[0, 2, 0, 23]);
    body.extend_from_slice(&(exts.len() as u16).to_be_bytes());
    body.extend_from_slice(&exts);
    record(CONTENT_HANDSHAKE, &handshake(HS_CLIENT_HELLO, &body))
}

/// Build the server's first flight: ServerHello, plus a Certificate message
/// carrying a certificate for `cert_cn` when given (omitted on session
/// resumption, which is how the paper's 23% "no certificate" cases arise).
pub fn build_server_flight(cert_cn: Option<&str>, random_seed: u64) -> Vec<u8> {
    let mut sh = Vec::new();
    sh.extend_from_slice(&[3, 3]);
    let mut random = [0u8; 32];
    for (i, b) in random.iter_mut().enumerate() {
        *b = (random_seed
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
            .rotate_left(i as u32)
            >> 16) as u8;
    }
    sh.extend_from_slice(&random);
    sh.push(0); // empty session id
    sh.extend_from_slice(&0xc02fu16.to_be_bytes()); // chosen suite
    sh.push(0); // null compression
    sh.extend_from_slice(&0u16.to_be_bytes()); // no extensions
    let mut flight = record(CONTENT_HANDSHAKE, &handshake(HS_SERVER_HELLO, &sh));
    if let Some(cn) = cert_cn {
        let der = x509::build_certificate(cn, "DN-Hunter Synthetic CA");
        let mut certs = Vec::new();
        let total = der.len() + 3;
        certs.push((total >> 16) as u8);
        certs.push((total >> 8) as u8);
        certs.push(total as u8);
        certs.push((der.len() >> 16) as u8);
        certs.push((der.len() >> 8) as u8);
        certs.push(der.len() as u8);
        certs.extend_from_slice(&der);
        flight.extend_from_slice(&record(
            CONTENT_HANDSHAKE,
            &handshake(HS_CERTIFICATE, &certs),
        ));
    }
    flight
}

/// Build an opaque application-data record (encrypted traffic stand-in).
pub fn build_application_data(len: usize, seed: u64) -> Vec<u8> {
    let mut body = vec![0u8; len.min(16_000)];
    let mut s = seed | 1;
    for b in body.iter_mut() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (s >> 33) as u8;
    }
    record(23, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_hello_sni_roundtrip() {
        let ch = build_client_hello(Some("mail.google.com"), 42);
        assert!(looks_like_tls(&ch));
        let info = inspect(&ch);
        assert_eq!(info.sni.as_deref(), Some("mail.google.com"));
        assert!(!info.server_hello);
    }

    #[test]
    fn client_hello_without_sni() {
        let ch = build_client_hello(None, 7);
        let info = inspect(&ch);
        assert_eq!(info.sni, None);
    }

    #[test]
    fn server_flight_with_certificate() {
        let fl = build_server_flight(Some("*.google.com"), 9);
        let info = inspect(&fl);
        assert!(info.server_hello);
        assert!(info.certificate_seen);
        assert_eq!(info.certificate_cn.as_deref(), Some("*.google.com"));
    }

    #[test]
    fn resumed_session_has_no_certificate() {
        let fl = build_server_flight(None, 9);
        let info = inspect(&fl);
        assert!(info.server_hello);
        assert!(!info.certificate_seen);
        assert_eq!(info.certificate_cn, None);
    }

    #[test]
    fn multiple_records_in_one_segment() {
        let mut seg = build_client_hello(Some("x.example.com"), 1);
        seg.extend_from_slice(&build_application_data(64, 3));
        let info = inspect(&seg);
        assert_eq!(info.sni.as_deref(), Some("x.example.com"));
    }

    #[test]
    fn non_tls_is_rejected() {
        assert!(!looks_like_tls(b"GET / HTTP/1.1\r\n"));
        assert!(!looks_like_tls(&[22, 9, 9, 0, 5]));
        assert!(!looks_like_tls(&[22, 3]));
        let info = inspect(b"definitely not tls at all");
        assert_eq!(info, TlsInfo::default());
    }

    #[test]
    fn truncated_record_is_inspected_best_effort() {
        let ch = build_client_hello(Some("long.name.example.org"), 5);
        // Cut mid-record but after the SNI extension bytes.
        let cut = ch.len() - 3;
        let info = inspect(&ch[..cut]);
        assert_eq!(info.sni.as_deref(), Some("long.name.example.org"));
    }

    #[test]
    fn application_data_is_deterministic_per_seed() {
        assert_eq!(
            build_application_data(100, 5),
            build_application_data(100, 5)
        );
        assert_ne!(
            build_application_data(100, 5),
            build_application_data(100, 6)
        );
    }
}
