//! The 5-tuple flow identifier.

use std::fmt;
use std::net::IpAddr;

use dnhunter_net::IpProtocol;
use serde::{Deserialize, Serialize};

/// The oriented 5-tuple `Fid = (clientIP, serverIP, sPort, dPort, protocol)`
/// of paper §3.1. "Client" is the flow initiator (first packet seen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    pub client: IpAddr,
    pub server: IpAddr,
    pub client_port: u16,
    pub server_port: u16,
    pub protocol: u8,
}

impl FlowKey {
    /// Build an oriented key from the initiator's first packet.
    pub fn from_initiator(
        src: IpAddr,
        dst: IpAddr,
        src_port: u16,
        dst_port: u16,
        protocol: IpProtocol,
    ) -> Self {
        FlowKey {
            client: src,
            server: dst,
            client_port: src_port,
            server_port: dst_port,
            protocol: protocol.number(),
        }
    }

    /// The key as seen from the opposite direction (server → client).
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            client: self.server,
            server: self.client,
            client_port: self.server_port,
            server_port: self.client_port,
            protocol: self.protocol,
        }
    }

    /// The transport protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from(self.protocol)
    }

    /// Flight-recorder provenance key of this flow's server endpoint.
    pub fn server_trace_key(&self) -> u64 {
        server_trace_key(self.server, self.server_port)
    }

    /// Direction of a packet with the given endpoints relative to this key:
    /// `Some(true)` = client→server, `Some(false)` = server→client,
    /// `None` = not this flow.
    pub fn direction_of(
        &self,
        src: IpAddr,
        src_port: u16,
        dst: IpAddr,
        dst_port: u16,
    ) -> Option<bool> {
        if src == self.client
            && src_port == self.client_port
            && dst == self.server
            && dst_port == self.server_port
        {
            Some(true)
        } else if src == self.server
            && src_port == self.server_port
            && dst == self.client
            && dst_port == self.client_port
        {
            Some(false)
        } else {
            None
        }
    }
}

/// The direction-free form of the 5-tuple: endpoints ordered by
/// `(address, port)` instead of by who spoke first. Both directions of a
/// conversation canonicalise to the same key, so the flow table (and the
/// pipeline's routing table) resolve any segment with a *single* hash
/// probe — the oriented [`FlowKey`] needed up to two (`forward`, then
/// `reversed`) on the per-packet path the paper's real-time constraint
/// (§3.2) cares about. Orientation still exists: it lives in the value
/// (the record's [`FlowKey`]), not in the map key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonFlowKey {
    lo: (IpAddr, u16),
    hi: (IpAddr, u16),
    protocol: u8,
}

impl CanonFlowKey {
    /// Canonicalise a segment's endpoints (either direction).
    pub fn of(
        src: IpAddr,
        src_port: u16,
        dst: IpAddr,
        dst_port: u16,
        protocol: IpProtocol,
    ) -> Self {
        let a = (src, src_port);
        let b = (dst, dst_port);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        CanonFlowKey {
            lo,
            hi,
            protocol: protocol.number(),
        }
    }

    /// The canonical form of an oriented key.
    pub fn from_key(k: &FlowKey) -> Self {
        Self::of(
            k.client,
            k.client_port,
            k.server,
            k.server_port,
            k.protocol(),
        )
    }
}

/// Flight-recorder provenance key of a `(server IP, server port)`
/// endpoint: FNV-1a over the address octets then the big-endian port.
/// Engine trace events and the CLI's `--explain IP:PORT` parser both key
/// through this function, so their hashes join without storing strings.
pub fn server_trace_key(ip: IpAddr, port: u16) -> u64 {
    let mut h = dnhunter_telemetry::TraceKeyHasher::new();
    match ip {
        IpAddr::V4(v4) => h.write(&v4.octets()),
        IpAddr::V6(v6) => h.write(&v6.octets()),
    }
    h.write(&port.to_be_bytes());
    h.finish()
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.protocol(),
            self.client,
            self.client_port,
            self.server,
            self.server_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::from_initiator(
            "10.0.0.5".parse().unwrap(),
            "93.184.216.34".parse().unwrap(),
            51000,
            443,
            IpProtocol::Tcp,
        )
    }

    #[test]
    fn reversal_is_involutive() {
        let k = key();
        assert_eq!(k.reversed().reversed(), k);
        assert_ne!(k.reversed(), k);
    }

    #[test]
    fn direction_detection() {
        let k = key();
        assert_eq!(
            k.direction_of(k.client, k.client_port, k.server, k.server_port),
            Some(true)
        );
        assert_eq!(
            k.direction_of(k.server, k.server_port, k.client, k.client_port),
            Some(false)
        );
        assert_eq!(k.direction_of(k.client, 1, k.server, k.server_port), None);
    }

    #[test]
    fn display_is_oriented() {
        let s = key().to_string();
        assert!(s.starts_with("TCP 10.0.0.5:51000 ->"));
    }
}
