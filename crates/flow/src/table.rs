//! The flow table: aggregates packets into flows and emits completed flows.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::IpAddr;

use dnhunter_net::{IpProtocol, Packet, TransportHeader};
// The flow table sits on the per-packet path: every segment does one map
// lookup (paper §3.2's real-time constraint), so it uses the FNV-keyed map
// rather than the default SipHash `HashMap` (lint L2).
use dnhunter_resolver::maps::FnvHashMap;
use dnhunter_telemetry::{tm_count, tm_gauge, Metric as Tm};

use crate::record::{FlowDirection, FlowRecord};
use crate::tuple::{CanonFlowKey, FlowKey};

/// Tuning knobs for the flow table.
#[derive(Debug, Clone)]
pub struct FlowTableConfig {
    /// Idle timeout (µs) after which a flow is considered finished.
    pub idle_timeout_micros: u64,
    /// How often (µs) to scan for idle flows.
    pub eviction_interval_micros: u64,
    /// Extra linger (µs) after FIN/RST before eviction, to absorb
    /// retransmissions.
    pub terminal_linger_micros: u64,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig {
            idle_timeout_micros: 120 * 1_000_000,
            eviction_interval_micros: 10 * 1_000_000,
            terminal_linger_micros: 2 * 1_000_000,
        }
    }
}

/// A pre-parsed transport segment: everything [`FlowTable::process_seg`]
/// needs from a packet, minus the payload bytes themselves. The parallel
/// ingest dispatcher ships these (plus the few head bytes DPI still wants)
/// instead of raw frames, so shard workers never re-parse a data frame.
#[derive(Debug, Clone, Copy)]
pub struct CompactSeg {
    pub src: IpAddr,
    pub src_port: u16,
    pub dst: IpAddr,
    pub dst_port: u16,
    pub proto: IpProtocol,
    /// `None` for UDP segments.
    pub tcp_flags: Option<dnhunter_net::TcpFlags>,
    /// TCP sequence number of this segment; 0 for UDP.
    pub tcp_seq: u32,
    /// Full frame length on the wire.
    pub wire_bytes: usize,
    /// Full transport payload length (the shipped head may be shorter).
    pub payload_len: usize,
}

/// Events emitted while processing packets.
#[derive(Debug)]
pub enum FlowEvent {
    /// A new flow was created (paper: the moment the tagger queries the
    /// DNS resolver).
    FlowStarted(FlowKey),
    /// A flow finished (FIN/RST + linger, or idle timeout) and is handed off.
    FlowFinished(Box<FlowRecord>),
}

/// Aggregates packets on the 5-tuple. The *initiator* of a flow is whichever
/// endpoint sent its first observed packet, matching how a PoP-located
/// sniffer orients flows.
///
/// The map is keyed by the direction-free [`CanonFlowKey`], so the
/// per-segment path does exactly one hash probe; the oriented [`FlowKey`]
/// lives in each record and direction falls out of comparing the segment's
/// source endpoint to it.
pub struct FlowTable {
    config: FlowTableConfig,
    flows: FnvHashMap<CanonFlowKey, FlowRecord>,
    last_eviction: u64,
    /// Lazy min-heap of eviction candidates `(deadline, key)`, so each
    /// scan touches only the entries whose deadline has passed instead of
    /// filtering the whole table (the gate fires every interval; most
    /// flows are nowhere near expiry). Entries are *lower bounds*: one is
    /// pushed when a flow is created and when it turns terminal (the only
    /// events that can move a deadline down — activity only extends it),
    /// and a popped entry whose flow fails the exact predicate is pushed
    /// back at the flow's current deadline. Stale entries (evicted or
    /// replaced flows) re-check against whatever record now owns the key,
    /// which is exactly the predicate the full filter would apply.
    expiry_heap: BinaryHeap<Reverse<(u64, CanonFlowKey)>>,
    total_created: u64,
    total_finished: u64,
}

impl FlowTable {
    /// Fresh table.
    pub fn new(config: FlowTableConfig) -> Self {
        FlowTable {
            config,
            flows: FnvHashMap::default(),
            last_eviction: 0,
            expiry_heap: BinaryHeap::new(),
            total_created: 0,
            total_finished: 0,
        }
    }

    /// Number of live flows.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// First-packet timestamp of the oldest live flow, if any. The daemon's
    /// rotation horizon is clamped to this: a still-live flow will emit its
    /// finish event at `first_ts`, so no bucket at or above the minimum may
    /// be retired yet. O(live flows), called only at rotation points.
    pub fn oldest_live_first_ts(&self) -> Option<u64> {
        self.flows.values().map(|r| r.first_ts).min()
    }

    /// Flows created since start.
    pub fn total_created(&self) -> u64 {
        self.total_created
    }

    /// Flows finished (emitted) since start.
    pub fn total_finished(&self) -> u64 {
        self.total_finished
    }

    /// Feed one parsed packet; returns the events it produced.
    /// `ts` is the capture timestamp in microseconds.
    pub fn process(&mut self, ts: u64, pkt: &Packet, wire_bytes: usize) -> Vec<FlowEvent> {
        let mut events = self.process_no_scan(ts, pkt, wire_bytes);
        if matches!(pkt.transport, TransportHeader::Opaque(_)) {
            return events; // not reconstructed; never advances the scan clock
        }
        // Immediate eviction on terminal state is deferred by a linger so
        // late retransmissions don't recreate the flow; the periodic scan
        // below handles both idle and terminal flows.
        if ts.saturating_sub(self.last_eviction) >= self.config.eviction_interval_micros {
            self.last_eviction = ts;
            events.extend(self.evict(ts));
        }
        events
    }

    /// [`FlowTable::process`] without the periodic eviction scan.
    ///
    /// The parallel ingest pipeline drives scans externally: its dispatcher
    /// replicates the interval gate above and broadcasts eviction ticks to
    /// every shard worker, so all workers scan at the *same* trace times the
    /// sequential sniffer would — the key to a deterministic merge. Workers
    /// therefore feed packets through this method and call
    /// [`FlowTable::evict_idle`] only on ticks.
    pub fn process_no_scan(&mut self, ts: u64, pkt: &Packet, wire_bytes: usize) -> Vec<FlowEvent> {
        let (src_port, dst_port, tcp_flags, tcp_seq) = match &pkt.transport {
            TransportHeader::Tcp(h) => (h.src_port, h.dst_port, Some(h.flags), h.seq),
            TransportHeader::Udp(h) => (h.src_port, h.dst_port, None, 0),
            TransportHeader::Opaque(_) => return Vec::new(), // not reconstructed
        };
        let seg = CompactSeg {
            src: pkt.src_ip(),
            src_port,
            dst: pkt.dst_ip(),
            dst_port,
            proto: pkt.ip.protocol(),
            tcp_flags,
            tcp_seq,
            wire_bytes,
            payload_len: pkt.payload.len(),
        };
        self.process_seg(ts, &seg, &pkt.payload)
    }

    /// [`FlowTable::process_no_scan`] for a pre-parsed segment. `head` needs
    /// only the payload prefix [`FlowRecord::observe_seg`] documents; with
    /// the full payload the two methods are identical.
    pub fn process_seg(&mut self, ts: u64, seg: &CompactSeg, head: &[u8]) -> Vec<FlowEvent> {
        use std::collections::hash_map::Entry;
        let mut events = Vec::new();
        let ckey = CanonFlowKey::of(seg.src, seg.src_port, seg.dst, seg.dst_port, seg.proto);
        let mut inserted = false;
        let record = match self.flows.entry(ckey) {
            Entry::Occupied(mut occ) => {
                // A fresh SYN on a terminated flow starts a new flow on the
                // same 5-tuple (port reuse); emit the old record first. The
                // replacement keeps the *old* flow's orientation — exactly
                // what re-resolving the oriented key used to produce.
                let fresh_syn = seg.tcp_flags.is_some_and(|f| f.syn() && !f.ack());
                if fresh_syn && occ.get().tcp_state().is_terminal() {
                    let key = occ.get().key;
                    let old = occ.insert(FlowRecord::new(key, ts));
                    self.total_finished += 1;
                    tm_count!(Tm::FlowSynReuse);
                    tm_count!(Tm::FlowsFinished);
                    tm_gauge!(Tm::FlowTableSize, -1);
                    events.push(FlowEvent::FlowFinished(Box::new(old)));
                    events.push(FlowEvent::FlowStarted(key));
                    self.total_created += 1;
                    tm_count!(Tm::FlowsStarted);
                    tm_gauge!(Tm::FlowTableSize, 1);
                    inserted = true;
                }
                occ.into_mut()
            }
            Entry::Vacant(vacant) => {
                let key = FlowKey::from_initiator(
                    seg.src,
                    seg.dst,
                    seg.src_port,
                    seg.dst_port,
                    seg.proto,
                );
                events.push(FlowEvent::FlowStarted(key));
                self.total_created += 1;
                tm_count!(Tm::FlowsStarted);
                tm_gauge!(Tm::FlowTableSize, 1);
                // A TCP flow whose first observed segment carries no SYN
                // means the capture started mid-stream (paper §3.2: PoP
                // sniffers see flows already in flight). Count it but track
                // it normally — the tagger still gets its chance on this
                // first segment.
                if seg.tcp_flags.is_some_and(|f| !f.syn()) {
                    tm_count!(Tm::FlowMidstreamStarts);
                }
                inserted = true;
                vacant.insert(FlowRecord::new(key, ts))
            }
        };
        let was_terminal = record.tcp_state().is_terminal();
        // Oriented direction: canonical-key equality guarantees the source
        // endpoint matches exactly one side of the record's key.
        let direction = if seg.src == record.key.client && seg.src_port == record.key.client_port {
            FlowDirection::ClientToServer
        } else {
            FlowDirection::ServerToClient
        };
        record.observe_seg(
            direction,
            ts,
            seg.wire_bytes,
            head,
            seg.payload_len,
            seg.tcp_flags,
        );
        if let Some(flags) = seg.tcp_flags {
            record.observe_tcp_seq(
                matches!(direction, FlowDirection::ClientToServer),
                seg.tcp_seq,
                seg.payload_len,
                flags,
            );
        }
        // A new flow or a terminal transition is the only way a deadline
        // can move *down*; those get a heap entry at the flow's current
        // deadline. Plain activity only extends deadlines, which existing
        // entries already lower-bound.
        if inserted || (!was_terminal && record.tcp_state().is_terminal()) {
            let deadline = Self::expiry_deadline(record, &self.config);
            self.expiry_heap.push(Reverse((deadline, ckey)));
        }
        events
    }

    /// First instant at which `record` can satisfy the eviction predicate
    /// in [`FlowTable::evict`] if it sees no further traffic.
    fn expiry_deadline(record: &FlowRecord, config: &FlowTableConfig) -> u64 {
        let ttl = if record.tcp_state().is_terminal() {
            config
                .terminal_linger_micros
                .min(config.idle_timeout_micros)
        } else {
            config.idle_timeout_micros
        };
        record.last_ts.saturating_add(ttl)
    }

    /// Run one eviction scan as of `now`, emitting idle and
    /// terminated-past-linger flows in deterministic order. Public for the
    /// pipeline's dispatcher-driven tick scheme (see
    /// [`FlowTable::process_no_scan`]); [`FlowTable::process`] calls the
    /// same scan internally on its own interval gate.
    pub fn evict_idle(&mut self, now: u64) -> Vec<FlowEvent> {
        self.evict(now)
    }

    /// Evict idle/terminated flows as of time `now`. Emission order is
    /// deterministic (by first-packet time, then oriented 5-tuple) so
    /// identical inputs give identical outputs regardless of hash seeding.
    fn evict(&mut self, now: u64) -> Vec<FlowEvent> {
        let idle = self.config.idle_timeout_micros;
        let linger = self.config.terminal_linger_micros;
        // Pop every candidate whose (lower-bound) deadline has passed and
        // apply the exact predicate to whatever record owns the key today:
        // still-live flows go back at their current deadline, stale entries
        // (flow already evicted, key not reused) just drop. Every expired
        // flow is found — its heap entry can never postdate its deadline.
        let mut expired: Vec<CanonFlowKey> = Vec::new();
        while let Some(&Reverse((deadline, key))) = self.expiry_heap.peek() {
            if deadline > now {
                break;
            }
            self.expiry_heap.pop();
            let Some(r) = self.flows.get(&key) else {
                continue;
            };
            let silent = now.saturating_sub(r.last_ts);
            if silent >= idle || (r.tcp_state().is_terminal() && silent >= linger) {
                expired.push(key); // duplicates are fine: remove_all skips them
            } else {
                self.expiry_heap
                    .push(Reverse((Self::expiry_deadline(r, &self.config), key)));
            }
        }
        if expired.is_empty() {
            return Vec::new();
        }
        let ordered = Self::sorted_keys(
            expired
                .iter()
                .filter_map(|k| self.flows.get(k).map(|r| (k, r))),
        );
        self.remove_all(ordered)
    }

    /// Flush every remaining flow (end of trace), in deterministic order.
    pub fn flush(&mut self) -> Vec<FlowEvent> {
        self.expiry_heap.clear();
        let keys = Self::sorted_keys(self.flows.iter());
        self.remove_all(keys)
    }

    /// Canonical keys of the given entries, ordered by (first-packet time,
    /// oriented 5-tuple) — the deterministic emission order.
    fn sorted_keys<'a>(
        entries: impl Iterator<Item = (&'a CanonFlowKey, &'a FlowRecord)>,
    ) -> Vec<CanonFlowKey> {
        let mut keyed: Vec<(u64, FlowKey, CanonFlowKey)> =
            entries.map(|(ck, r)| (r.first_ts, r.key, *ck)).collect();
        keyed.sort_by_key(|(first_ts, k, _)| {
            (
                *first_ts,
                k.client,
                k.client_port,
                k.server,
                k.server_port,
                k.protocol,
            )
        });
        keyed.into_iter().map(|(_, _, ck)| ck).collect()
    }

    fn remove_all(&mut self, keys: Vec<CanonFlowKey>) -> Vec<FlowEvent> {
        // allow_lint(L8): one event slot per flow already resident in the
        // table — bounded by live-table size, not by a wire-claimed length
        let mut events = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(r) = self.flows.remove(&k) {
                self.total_finished += 1;
                tm_count!(Tm::FlowsFinished);
                tm_gauge!(Tm::FlowTableSize, -1);
                events.push(FlowEvent::FlowFinished(Box::new(r)));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnhunter_net::{build_tcp_v4, build_udp_v4, MacAddr, TcpFlags};
    use std::net::Ipv4Addr;

    fn client() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 3)
    }
    fn server() -> Ipv4Addr {
        Ipv4Addr::new(23, 1, 2, 3)
    }

    fn tcp_pkt(from_client: bool, flags: TcpFlags, payload: &[u8]) -> Packet {
        let (s, d, sp, dp) = if from_client {
            (client(), server(), 50000, 80)
        } else {
            (server(), client(), 80, 50000)
        };
        let frame = build_tcp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            s,
            d,
            sp,
            dp,
            1,
            1,
            flags,
            payload,
        )
        .unwrap();
        Packet::parse(&frame).unwrap()
    }

    #[test]
    fn flow_lifecycle_and_orientation() {
        let mut t = FlowTable::new(FlowTableConfig::default());
        let ev = t.process(0, &tcp_pkt(true, TcpFlags::SYN, &[]), 74);
        assert!(matches!(ev.as_slice(), [FlowEvent::FlowStarted(_)]));
        t.process(100, &tcp_pkt(false, TcpFlags::SYN | TcpFlags::ACK, &[]), 74);
        t.process(200, &tcp_pkt(true, TcpFlags::ACK, &[]), 66);
        assert_eq!(t.live_flows(), 1);
        assert_eq!(t.total_created(), 1);
        // The single flow is oriented client→server.
        let finished = t.flush();
        assert_eq!(finished.len(), 1);
        match &finished[0] {
            FlowEvent::FlowFinished(r) => {
                assert_eq!(r.key.client, IpAddr::V4(client()));
                assert_eq!(r.key.server_port, 80);
                assert_eq!(r.packets_c2s, 2);
                assert_eq!(r.packets_s2c, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn server_first_packet_orients_server_as_initiator() {
        // If the trace catches the server's packet first (mid-flow pickup),
        // the flow is oriented from the first packet seen — the documented
        // passive-monitoring behaviour.
        let mut t = FlowTable::new(FlowTableConfig::default());
        t.process(0, &tcp_pkt(false, TcpFlags::ACK, b"data"), 70);
        let finished = t.flush();
        match &finished[0] {
            FlowEvent::FlowFinished(r) => {
                assert_eq!(r.key.client, IpAddr::V4(server()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn idle_timeout_evicts() {
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_micros: 1_000,
            eviction_interval_micros: 500,
            terminal_linger_micros: 100,
        });
        t.process(0, &tcp_pkt(true, TcpFlags::SYN, &[]), 74);
        // A later unrelated packet triggers the eviction scan.
        let udp_frame = build_udp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            client(),
            Ipv4Addr::new(8, 8, 8, 8),
            40000,
            53,
            b"q",
        )
        .unwrap();
        let udp = Packet::parse(&udp_frame).unwrap();
        let ev = t.process(10_000, &udp, udp_frame.len());
        let finished: Vec<_> = ev
            .iter()
            .filter(|e| matches!(e, FlowEvent::FlowFinished(_)))
            .collect();
        assert_eq!(finished.len(), 1);
        assert_eq!(t.live_flows(), 1); // the UDP flow remains
    }

    #[test]
    fn fin_fin_evicts_after_linger() {
        let mut t = FlowTable::new(FlowTableConfig {
            idle_timeout_micros: 1_000_000,
            eviction_interval_micros: 1,
            terminal_linger_micros: 10,
        });
        t.process(0, &tcp_pkt(true, TcpFlags::SYN, &[]), 74);
        t.process(10, &tcp_pkt(false, TcpFlags::SYN | TcpFlags::ACK, &[]), 74);
        t.process(20, &tcp_pkt(true, TcpFlags::FIN | TcpFlags::ACK, &[]), 66);
        t.process(30, &tcp_pkt(false, TcpFlags::FIN | TcpFlags::ACK, &[]), 66);
        // Next packet long after linger triggers eviction of the closed flow.
        let ev = t.process(1_000, &tcp_pkt(true, TcpFlags::SYN, &[]), 74);
        // Note: same 5-tuple — the closed flow is emitted and a new one starts.
        let finished = ev.iter().any(|e| matches!(e, FlowEvent::FlowFinished(_)));
        assert!(finished);
        assert_eq!(t.total_finished(), 1);
    }

    fn tcp_pkt_seq(from_client: bool, flags: TcpFlags, seq: u32, payload: &[u8]) -> Packet {
        let (s, d, sp, dp) = if from_client {
            (client(), server(), 50000, 80)
        } else {
            (server(), client(), 80, 50000)
        };
        let frame = build_tcp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            s,
            d,
            sp,
            dp,
            seq,
            0,
            flags,
            payload,
        )
        .unwrap();
        Packet::parse(&frame).unwrap()
    }

    #[test]
    fn midstream_flow_is_counted_and_tracked() {
        use dnhunter_telemetry as telemetry;
        let registry = std::sync::Arc::new(telemetry::Registry::new());
        let _guard = telemetry::bind(registry.clone());
        let mut t = FlowTable::new(FlowTableConfig::default());
        // First observed segment of the flow carries data, no SYN: the
        // capture started mid-stream.
        let ev = t.process(
            0,
            &tcp_pkt_seq(true, TcpFlags::PSH | TcpFlags::ACK, 5_000, b"data"),
            70,
        );
        assert!(matches!(ev.as_slice(), [FlowEvent::FlowStarted(_)]));
        // Contiguous continuation: tracked cleanly, no phantom faults.
        t.process(
            10,
            &tcp_pkt_seq(true, TcpFlags::PSH | TcpFlags::ACK, 5_004, b"more"),
            70,
        );
        let snap = registry.snapshot();
        assert_eq!(snap.get(Tm::FlowMidstreamStarts), 1);
        assert_eq!(snap.get(Tm::TcpSeqGap), 0);
        assert_eq!(snap.get(Tm::TcpSeqRewind), 0);
        // Byte accounting covers every observed frame despite the missing
        // handshake.
        let finished = t.flush();
        match &finished[0] {
            FlowEvent::FlowFinished(r) => {
                assert_eq!(r.packets_c2s, 2);
                assert_eq!(r.bytes_c2s, 140);
                assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn syn_opened_flow_is_not_midstream_and_faults_are_counted() {
        use dnhunter_telemetry as telemetry;
        let registry = std::sync::Arc::new(telemetry::Registry::new());
        let _guard = telemetry::bind(registry.clone());
        let mut t = FlowTable::new(FlowTableConfig::default());
        t.process(0, &tcp_pkt_seq(true, TcpFlags::SYN, 100, &[]), 74);
        // 100+1 expected; jump to 300 = a gap; replaying 101 = a rewind.
        t.process(
            10,
            &tcp_pkt_seq(true, TcpFlags::PSH | TcpFlags::ACK, 300, b"x"),
            67,
        );
        t.process(
            20,
            &tcp_pkt_seq(true, TcpFlags::PSH | TcpFlags::ACK, 101, b"y"),
            67,
        );
        let snap = registry.snapshot();
        assert_eq!(snap.get(Tm::FlowMidstreamStarts), 0);
        assert_eq!(snap.get(Tm::TcpSeqGap), 1);
        assert_eq!(snap.get(Tm::TcpSeqRewind), 1);
    }

    #[test]
    fn udp_flows_are_tracked() {
        let mut t = FlowTable::new(FlowTableConfig::default());
        let frame = build_udp_v4(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            client(),
            Ipv4Addr::new(8, 8, 4, 4),
            40000,
            53,
            b"query",
        )
        .unwrap();
        let pkt = Packet::parse(&frame).unwrap();
        t.process(0, &pkt, frame.len());
        assert_eq!(t.live_flows(), 1);
        let finished = t.flush();
        match &finished[0] {
            FlowEvent::FlowFinished(r) => {
                assert_eq!(r.key.protocol(), IpProtocol::Udp);
                assert_eq!(r.key.server_port, 53);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    use std::net::IpAddr;
}
