//! A deliberately small X.509/DER subset: enough to build a syntactically
//! valid certificate skeleton carrying a subject common name, and to extract
//! that CN from arbitrary DER the way certificate-grepping DPI boxes do.

/// DER tag numbers used here.
const TAG_INTEGER: u8 = 0x02;
const TAG_OID: u8 = 0x06;
const TAG_UTF8STRING: u8 = 0x0c;
const TAG_PRINTABLESTRING: u8 = 0x13;
const TAG_SEQUENCE: u8 = 0x30;
const TAG_SET: u8 = 0x31;

/// OID 2.5.4.3 (id-at-commonName) in DER body form.
const OID_CN: &[u8] = &[0x55, 0x04, 0x03];

/// Encode a DER length.
fn push_len(out: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        out.push(len as u8);
    } else if len <= 0xff {
        out.push(0x81);
        out.push(len as u8);
    } else {
        out.push(0x82);
        out.extend_from_slice(&(len as u16).to_be_bytes());
    }
}

/// Encode one TLV.
fn tlv(tag: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 4);
    out.push(tag);
    push_len(&mut out, body.len());
    out.extend_from_slice(body);
    out
}

/// A `SEQUENCE` of the given encoded elements.
fn sequence(parts: &[Vec<u8>]) -> Vec<u8> {
    let body: Vec<u8> = parts.iter().flatten().copied().collect();
    tlv(TAG_SEQUENCE, &body)
}

/// One RDN: `SET { SEQUENCE { OID, string } }`.
fn rdn(oid: &[u8], value: &str, printable: bool) -> Vec<u8> {
    let tag = if printable {
        TAG_PRINTABLESTRING
    } else {
        TAG_UTF8STRING
    };
    let attr = sequence(&[tlv(TAG_OID, oid), tlv(tag, value.as_bytes())]);
    tlv(TAG_SET, &attr)
}

/// Build a minimal certificate-shaped DER blob:
/// `SEQUENCE { SEQUENCE { serial, issuerName, subjectName } }` where both
/// names are `SEQUENCE of RDN` and the subject carries CN=`subject_cn`.
/// This is not a signable certificate, but it has the exact DER name
/// structure real CN extractors walk.
pub fn build_certificate(subject_cn: &str, issuer_cn: &str) -> Vec<u8> {
    let serial = tlv(TAG_INTEGER, &[0x01, 0x7f]);
    let issuer = sequence(&[rdn(OID_CN, issuer_cn, true)]);
    let subject = sequence(&[rdn(OID_CN, subject_cn, false)]);
    let tbs = sequence(&[serial, issuer, subject]);
    sequence(&[tbs])
}

/// Read one TLV header at `pos`; returns (tag, body_start, body_end).
fn read_tlv(der: &[u8], pos: usize) -> Option<(u8, usize, usize)> {
    let tag = *der.get(pos)?;
    let first = *der.get(pos + 1)?;
    let (len, header) = if first < 0x80 {
        (usize::from(first), 2)
    } else {
        let n = usize::from(first & 0x7f);
        if n == 0 || n > 4 {
            return None;
        }
        let mut len = 0usize;
        for i in 0..n {
            len = (len << 8) | usize::from(*der.get(pos + 2 + i)?);
        }
        (len, 2 + n)
    };
    let body_start = pos + header;
    let body_end = body_start.checked_add(len)?;
    if body_end > der.len() {
        return None;
    }
    Some((tag, body_start, body_end))
}

/// Extract the *last* CN attribute in document order (subject follows issuer
/// in X.509, so the last CN is the subject's) — the same byte-scanning
/// heuristic certificate-inspection middleboxes use: find the encoded
/// id-at-commonName OID (`06 03 55 04 03`) and read the string TLV after it.
///
/// A CN is only reported when the certificate's outer TLV is *complete* in
/// the buffer. On a truncated capture the subject name is exactly the part
/// most likely to be cut, and the last CN still present would be the
/// **issuer**'s — reporting it would hand the flow tagger a bogus FQDN
/// (the CA's name). No name beats a wrong name.
// allow_lint(L1): the window i..i+needle.len() is readable by the loop guard (outer_end <= der.len() from read_tlv); vs..ve come from read_tlv, which bounds-checks them against der.len()
pub fn extract_common_name(der: &[u8]) -> Option<String> {
    let (_, _, outer_end) = read_tlv(der, 0)?;
    let mut found: Option<String> = None;
    let needle = [TAG_OID, OID_CN.len() as u8, OID_CN[0], OID_CN[1], OID_CN[2]];
    let mut i = 0;
    while i + needle.len() <= outer_end {
        if der[i..i + needle.len()] == needle {
            if let Some((tag, vs, ve)) = read_tlv(der, i + needle.len()) {
                if ve <= outer_end && (tag == TAG_UTF8STRING || tag == TAG_PRINTABLESTRING) {
                    found = Some(String::from_utf8_lossy(&der[vs..ve]).to_ascii_lowercase());
                }
            }
        }
        i += 1;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_extract_cn() {
        let der = build_certificate("www.linkedin.com", "Verisign CA");
        assert_eq!(
            extract_common_name(&der).as_deref(),
            Some("www.linkedin.com")
        );
    }

    #[test]
    fn wildcard_and_cdn_cns() {
        for cn in ["*.google.com", "a248.e.akamai.net", "SSL.example.COM"] {
            let der = build_certificate(cn, "CA");
            assert_eq!(
                extract_common_name(&der).as_deref(),
                Some(cn.to_ascii_lowercase().as_str())
            );
        }
    }

    #[test]
    fn subject_cn_wins_over_issuer_cn() {
        let der = build_certificate("subject.example.com", "issuer.example.com");
        assert_eq!(
            extract_common_name(&der).as_deref(),
            Some("subject.example.com")
        );
    }

    #[test]
    fn garbage_yields_none() {
        assert_eq!(extract_common_name(b"not der at all"), None);
        assert_eq!(extract_common_name(&[]), None);
        assert_eq!(extract_common_name(&[0x30, 0x82]), None); // truncated length
    }

    #[test]
    fn long_cn_uses_multibyte_length() {
        let long = format!("{}.example.com", "a".repeat(150));
        let der = build_certificate(&long, "CA");
        assert_eq!(extract_common_name(&der).as_deref(), Some(long.as_str()));
    }

    #[test]
    fn truncated_der_is_safe() {
        let der = build_certificate("host.example.com", "CA");
        for cut in [1, 5, der.len() / 2] {
            // Must not panic; result may be None or partial.
            let _ = extract_common_name(&der[..cut]);
        }
    }

    #[test]
    fn truncation_never_surfaces_the_issuer_cn() {
        // Cutting the subject off a certificate must not promote the
        // issuer's CN to "the" CN: every strict prefix yields None.
        let der = build_certificate("subject.example.com", "issuer-ca.example.com");
        for cut in 0..der.len() {
            assert_eq!(
                extract_common_name(&der[..cut]),
                None,
                "prefix of {cut} bytes produced a CN"
            );
        }
    }
}
