//! BitTorrent detection: the peer-wire handshake and HTTP tracker announces.
//!
//! In the paper, P2P flows are the class that DNS labelling *cannot* cover
//! (Tab. 2: ~1% hit ratio, "P2P hits are related to BitTorrent tracker
//! traffic mainly"), so the DPI must recognise both the peer wire protocol
//! (no DNS involved) and tracker announces (HTTP, preceded by DNS).

use crate::http;

/// The fixed 20-byte prefix of the peer-wire handshake.
pub const HANDSHAKE_PREFIX: &[u8] = b"\x13BitTorrent protocol";

/// True if the payload starts with the peer-wire handshake.
pub fn is_peer_handshake(payload: &[u8]) -> bool {
    payload.len() >= HANDSHAKE_PREFIX.len() && payload.starts_with(HANDSHAKE_PREFIX)
}

/// True if the payload is an HTTP tracker announce/scrape request.
///
/// Byte-wise, allocation-free equivalent of "parse the request line and
/// check the target": `classify` runs this on every flow whose head looks
/// like HTTP, so the common miss must bail after the first few target
/// bytes instead of paying `http::parse_request`'s full string parse.
pub fn is_tracker_announce(payload: &[u8]) -> bool {
    if !http::looks_like_http_request(payload) {
        return false;
    }
    // Target token = after the first space, up to the next space or end of
    // the request line (first CRLF) — same token `http::parse_request`
    // yields. The prefix check comes first: "/announce" and "/scrape"
    // contain neither space nor CRLF, so probing the prefix before finding
    // the token's end is sound, and non-tracker targets bail here.
    let Some(sp) = payload.iter().position(|&b| b == b' ') else {
        return false;
    };
    let Some(rest) = payload.get(sp + 1..) else {
        return false;
    };
    if !(rest.starts_with(b"/announce") || rest.starts_with(b"/scrape")) {
        return false;
    }
    let line_end = rest
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(rest.len());
    let line = rest.get(..line_end).unwrap_or(rest);
    let target = match line.iter().position(|&b| b == b' ') {
        Some(i) => line.get(..i).unwrap_or(line),
        None => line,
    };
    target
        .windows(b"info_hash=".len())
        .any(|w| w == b"info_hash=")
}

/// Build a peer-wire handshake payload (simulator helper).
pub fn build_peer_handshake(info_hash: [u8; 20], peer_id: [u8; 20]) -> Vec<u8> {
    let mut out = Vec::with_capacity(68);
    out.extend_from_slice(HANDSHAKE_PREFIX);
    out.extend_from_slice(&[0u8; 8]); // reserved
    out.extend_from_slice(&info_hash);
    out.extend_from_slice(&peer_id);
    out
}

/// Build an HTTP tracker announce payload (simulator helper).
pub fn build_tracker_announce(host: &str, info_hash_hex: &str, port: u16) -> Vec<u8> {
    let target = format!(
        "/announce?info_hash={info_hash_hex}&peer_id=-DH0001-000000000000&port={port}&uploaded=0&downloaded=0&left=0&compact=1"
    );
    http::build_request("GET", &target, host, "Transmission/2.42")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_detection() {
        let hs = build_peer_handshake([7u8; 20], [9u8; 20]);
        assert_eq!(hs.len(), 68);
        assert!(is_peer_handshake(&hs));
        assert!(!is_peer_handshake(b"\x13BitTorrent protoco"));
        assert!(!is_peer_handshake(b"GET /announce HTTP/1.1\r\n\r\n"));
    }

    #[test]
    fn tracker_announce_detection() {
        let ann = build_tracker_announce("tracker.example.org", "aa11bb22", 6881);
        assert!(is_tracker_announce(&ann));
        // A plain web GET is not an announce.
        let plain = http::build_request("GET", "/index.html", "example.org", "x");
        assert!(!is_tracker_announce(&plain));
        // An announce without info_hash is not an announce.
        let fake = http::build_request("GET", "/announce?x=1", "t.example.org", "x");
        assert!(!is_tracker_announce(&fake));
    }

    #[test]
    fn scrape_counts_as_tracker_traffic() {
        let s = http::build_request("GET", "/scrape?info_hash=ff", "t.example.org", "x");
        assert!(is_tracker_announce(&s));
    }
}
