//! Minimal HTTP/1.x request parsing — enough for DPI and tracker detection.

/// A parsed HTTP request line plus the headers DPI cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: String,
    pub target: String,
    pub version: String,
    /// `Host:` header value, lowercased, if present.
    pub host: Option<String>,
    /// `User-Agent:` header value, if present.
    pub user_agent: Option<String>,
}

/// HTTP methods recognised by the detector.
const METHODS: &[&str] = &[
    "GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "CONNECT", "TRACE", "PATCH",
];

/// Quick check: does this client-to-server payload begin like an HTTP request?
// allow_lint(L1): payload[m.len()] is readable — `payload.len() > m.len()` is checked first in the conjunction
pub fn looks_like_http_request(payload: &[u8]) -> bool {
    METHODS.iter().any(|m| {
        payload.len() > m.len() && payload.starts_with(m.as_bytes()) && payload[m.len()] == b' '
    })
}

/// Quick check: does this server-to-client payload begin like a response?
pub fn looks_like_http_response(payload: &[u8]) -> bool {
    payload.starts_with(b"HTTP/1.") || payload.starts_with(b"HTTP/2")
}

/// Parse the request line and headers from the start of a TCP payload.
/// Returns `None` if it does not look like HTTP at all. Tolerates a payload
/// truncated mid-headers (DPI only sees the first segment).
pub fn parse_request(payload: &[u8]) -> Option<HttpRequest> {
    if !looks_like_http_request(payload) {
        return None;
    }
    let text = String::from_utf8_lossy(payload);
    let mut lines = text.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    let version = parts.next().unwrap_or("HTTP/1.0").to_string();
    let mut host = None;
    let mut user_agent = None;
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "host" => host = Some(value.to_ascii_lowercase()),
                "user-agent" => user_agent = Some(value.to_string()),
                _ => {}
            }
        }
    }
    Some(HttpRequest {
        method,
        target,
        version,
        host,
        user_agent,
    })
}

/// Build a plausible HTTP request payload (used by the simulator).
pub fn build_request(method: &str, target: &str, host: &str, user_agent: &str) -> Vec<u8> {
    format!(
        "{method} {target} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: {user_agent}\r\nAccept: */*\r\nConnection: keep-alive\r\n\r\n"
    )
    .into_bytes()
}

/// Build a plausible HTTP response header (used by the simulator).
pub fn build_response(status: u16, content_length: usize) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status} OK\r\nServer: httpd\r\nContent-Length: {content_length}\r\nConnection: keep-alive\r\n\r\n"
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_and_parses_requests() {
        let req = build_request("GET", "/index.html", "www.Example.com", "tester/1.0");
        assert!(looks_like_http_request(&req));
        let p = parse_request(&req).unwrap();
        assert_eq!(p.method, "GET");
        assert_eq!(p.target, "/index.html");
        assert_eq!(p.version, "HTTP/1.1");
        assert_eq!(p.host.as_deref(), Some("www.example.com"));
        assert_eq!(p.user_agent.as_deref(), Some("tester/1.0"));
    }

    #[test]
    fn rejects_non_http() {
        assert!(!looks_like_http_request(b"\x16\x03\x01\x00\x50"));
        assert!(!looks_like_http_request(b"GETX / HTTP/1.1"));
        assert!(!looks_like_http_request(b""));
        assert!(parse_request(b"\x13BitTorrent protocol").is_none());
    }

    #[test]
    fn detects_responses() {
        assert!(looks_like_http_response(&build_response(200, 10)));
        assert!(!looks_like_http_response(b"nope"));
    }

    #[test]
    fn truncated_headers_still_parse() {
        let req = b"POST /api HTTP/1.1\r\nHost: api.test.co";
        let p = parse_request(req).unwrap();
        assert_eq!(p.method, "POST");
        // Truncated Host line still yields a value (best effort).
        assert_eq!(p.host.as_deref(), Some("api.test.co"));
    }

    #[test]
    fn missing_host_is_none() {
        let p = parse_request(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(p.host, None);
    }
}
