//! A compact TCP connection state machine, as seen by a passive monitor.
//!
//! A sniffer only observes segments, so this tracks the connection lifecycle
//! coarsely: handshake progress, establishment, half-closes and reset. That
//! is all the paper's flow accounting needs (flow start/end times, and
//! whether a flow ever carried data).

use serde::{Deserialize, Serialize};

use dnhunter_net::TcpFlags;

/// Connection state from the passive observer's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TcpConnState {
    /// Nothing seen yet.
    #[default]
    New,
    /// Client SYN seen.
    SynSent,
    /// Server SYN+ACK seen.
    SynAck,
    /// Three-way handshake completed (client ACK after SYN+ACK) or data seen.
    Established,
    /// One side sent FIN.
    HalfClosed,
    /// Both sides sent FIN (and the second FIN was acked or carried data).
    Closed,
    /// RST observed from either side.
    Reset,
}

impl TcpConnState {
    /// True once no further packets are expected.
    pub fn is_terminal(self) -> bool {
        matches!(self, TcpConnState::Closed | TcpConnState::Reset)
    }

    /// True once the three-way handshake completed.
    pub fn is_established(self) -> bool {
        matches!(
            self,
            TcpConnState::Established | TcpConnState::HalfClosed | TcpConnState::Closed
        )
    }
}

/// Tracks per-flow TCP state across observed segments.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TcpTracker {
    state: TcpConnState,
    client_fin: bool,
    server_fin: bool,
}

impl TcpTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state.
    pub fn state(&self) -> TcpConnState {
        self.state
    }

    /// Feed one observed segment. `from_client` is the packet direction,
    /// `payload_len` the transport payload length.
    pub fn observe(&mut self, from_client: bool, flags: TcpFlags, payload_len: usize) {
        if flags.rst() {
            self.state = TcpConnState::Reset;
            return;
        }
        if self.state.is_terminal() {
            return;
        }
        if flags.fin() {
            if from_client {
                self.client_fin = true;
            } else {
                self.server_fin = true;
            }
            self.state = if self.client_fin && self.server_fin {
                TcpConnState::Closed
            } else {
                TcpConnState::HalfClosed
            };
            return;
        }
        match self.state {
            TcpConnState::New => {
                if flags.syn() && !flags.ack() && from_client {
                    self.state = TcpConnState::SynSent;
                } else if payload_len > 0 {
                    // Mid-stream pickup (trace started after the handshake).
                    self.state = TcpConnState::Established;
                }
            }
            TcpConnState::SynSent => {
                if flags.syn() && flags.ack() && !from_client {
                    self.state = TcpConnState::SynAck;
                }
            }
            TcpConnState::SynAck => {
                if flags.ack() && from_client {
                    self.state = TcpConnState::Established;
                }
            }
            TcpConnState::Established | TcpConnState::HalfClosed => {}
            // Terminal states already returned above; if that guard ever
            // changes, a live capture must stay inert rather than panic
            // (lint L1: the sniffer's packet path is panic-free).
            TcpConnState::Closed | TcpConnState::Reset => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(bits: TcpFlags) -> TcpFlags {
        bits
    }

    #[test]
    fn normal_lifecycle() {
        let mut t = TcpTracker::new();
        t.observe(true, flags(TcpFlags::SYN), 0);
        assert_eq!(t.state(), TcpConnState::SynSent);
        t.observe(false, flags(TcpFlags::SYN | TcpFlags::ACK), 0);
        assert_eq!(t.state(), TcpConnState::SynAck);
        t.observe(true, flags(TcpFlags::ACK), 0);
        assert_eq!(t.state(), TcpConnState::Established);
        assert!(t.state().is_established());
        t.observe(true, flags(TcpFlags::PSH | TcpFlags::ACK), 100);
        t.observe(false, flags(TcpFlags::PSH | TcpFlags::ACK), 2000);
        assert_eq!(t.state(), TcpConnState::Established);
        t.observe(true, flags(TcpFlags::FIN | TcpFlags::ACK), 0);
        assert_eq!(t.state(), TcpConnState::HalfClosed);
        t.observe(false, flags(TcpFlags::FIN | TcpFlags::ACK), 0);
        assert_eq!(t.state(), TcpConnState::Closed);
        assert!(t.state().is_terminal());
    }

    #[test]
    fn reset_from_any_state() {
        let mut t = TcpTracker::new();
        t.observe(true, flags(TcpFlags::SYN), 0);
        t.observe(false, flags(TcpFlags::RST), 0);
        assert_eq!(t.state(), TcpConnState::Reset);
        // Terminal: further segments ignored.
        t.observe(true, flags(TcpFlags::SYN), 0);
        assert_eq!(t.state(), TcpConnState::Reset);
    }

    #[test]
    fn midstream_pickup_counts_as_established() {
        let mut t = TcpTracker::new();
        t.observe(false, flags(TcpFlags::ACK), 1460);
        assert_eq!(t.state(), TcpConnState::Established);
    }

    #[test]
    fn server_syn_ack_without_client_syn_stays_new() {
        let mut t = TcpTracker::new();
        t.observe(false, flags(TcpFlags::SYN | TcpFlags::ACK), 0);
        assert_eq!(t.state(), TcpConnState::New);
    }

    #[test]
    fn closed_stays_closed() {
        let mut t = TcpTracker::new();
        t.observe(true, flags(TcpFlags::FIN), 0);
        t.observe(false, flags(TcpFlags::FIN), 0);
        assert_eq!(t.state(), TcpConnState::Closed);
        t.observe(true, flags(TcpFlags::ACK), 10);
        assert_eq!(t.state(), TcpConnState::Closed);
    }
}
