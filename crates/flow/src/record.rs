//! Per-flow accounting records.

use serde::{Deserialize, Serialize};

use crate::dpi::{self, AppProtocol};
use crate::tcp_state::{TcpConnState, TcpTracker};
use crate::tls::{self, TlsInfo};
use crate::tuple::FlowKey;

/// Packet direction relative to the flow's client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowDirection {
    ClientToServer,
    ServerToClient,
}

/// How many leading payload bytes each direction keeps for DPI.
pub const DPI_SNAP: usize = 1024;

/// Accumulated state for one layer-4 flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    pub key: FlowKey,
    /// Timestamp (µs) of the first packet.
    pub first_ts: u64,
    /// Timestamp (µs) of the most recent packet.
    pub last_ts: u64,
    pub packets_c2s: u64,
    pub packets_s2c: u64,
    pub bytes_c2s: u64,
    pub bytes_s2c: u64,
    /// First payload bytes in each direction (up to [`DPI_SNAP`]).
    pub head_c2s: Vec<u8>,
    pub head_s2c: Vec<u8>,
    tcp: TcpTracker,
    /// Cached DPI verdict; recomputed lazily when new head bytes arrive.
    dpi_dirty: bool,
    dpi_cache: AppProtocol,
}

impl FlowRecord {
    /// Start a record at the first observed packet.
    pub fn new(key: FlowKey, ts: u64) -> Self {
        FlowRecord {
            key,
            first_ts: ts,
            last_ts: ts,
            packets_c2s: 0,
            packets_s2c: 0,
            bytes_c2s: 0,
            bytes_s2c: 0,
            head_c2s: Vec::new(),
            head_s2c: Vec::new(),
            tcp: TcpTracker::new(),
            dpi_dirty: true,
            dpi_cache: AppProtocol::Other,
        }
    }

    /// Account one packet. `wire_bytes` is the full frame length,
    /// `payload` the transport payload.
    pub fn observe(
        &mut self,
        direction: FlowDirection,
        ts: u64,
        wire_bytes: usize,
        payload: &[u8],
        tcp_flags: Option<dnhunter_net::TcpFlags>,
    ) {
        self.observe_seg(direction, ts, wire_bytes, payload, payload.len(), tcp_flags);
    }

    /// [`FlowRecord::observe`] when only a payload *prefix* is at hand.
    ///
    /// `head` must hold at least the first
    /// `min(DPI_SNAP - head_so_far, payload_len)` payload bytes — everything
    /// past that is never read, which is what lets the parallel ingest
    /// dispatcher ship truncated segments instead of whole frames (it
    /// mirrors each direction's head fill, so it knows exactly how many
    /// bytes the record still wants). With `head` = the full payload this is
    /// identical to [`FlowRecord::observe`].
    pub fn observe_seg(
        &mut self,
        direction: FlowDirection,
        ts: u64,
        wire_bytes: usize,
        head: &[u8],
        payload_len: usize,
        tcp_flags: Option<dnhunter_net::TcpFlags>,
    ) {
        self.last_ts = self.last_ts.max(ts);
        let from_client = matches!(direction, FlowDirection::ClientToServer);
        let (packets, bytes, head_buf) = if from_client {
            (
                &mut self.packets_c2s,
                &mut self.bytes_c2s,
                &mut self.head_c2s,
            )
        } else {
            (
                &mut self.packets_s2c,
                &mut self.bytes_s2c,
                &mut self.head_s2c,
            )
        };
        *packets += 1;
        *bytes += wire_bytes as u64;
        if payload_len > 0 && head_buf.len() < DPI_SNAP {
            let take = (DPI_SNAP - head_buf.len()).min(payload_len).min(head.len());
            // allow_lint(L1): take <= head.len() by the `.min()` above
            head_buf.extend_from_slice(&head[..take]);
            self.dpi_dirty = true;
        }
        if let Some(flags) = tcp_flags {
            self.tcp.observe(from_client, flags, payload_len);
        }
    }

    /// TCP connection state (meaningless for UDP flows).
    pub fn tcp_state(&self) -> TcpConnState {
        self.tcp.state()
    }

    /// DPI protocol verdict over the captured head bytes.
    pub fn protocol(&mut self) -> AppProtocol {
        if self.dpi_dirty {
            self.dpi_cache = dpi::classify(&self.head_c2s, &self.head_s2c, self.key.server_port);
            self.dpi_dirty = false;
        }
        self.dpi_cache
    }

    /// DPI verdict without mutation (recomputes if dirty).
    pub fn protocol_now(&self) -> AppProtocol {
        if self.dpi_dirty {
            dpi::classify(&self.head_c2s, &self.head_s2c, self.key.server_port)
        } else {
            self.dpi_cache
        }
    }

    /// TLS handshake information extracted from both directions.
    pub fn tls_info(&self) -> TlsInfo {
        let mut info = tls::inspect(&self.head_c2s);
        let server = tls::inspect(&self.head_s2c);
        info.server_hello |= server.server_hello;
        info.certificate_seen |= server.certificate_seen;
        if info.certificate_cn.is_none() {
            info.certificate_cn = server.certificate_cn;
        }
        info
    }

    /// Total packets both directions.
    pub fn packets(&self) -> u64 {
        self.packets_c2s + self.packets_s2c
    }

    /// Duration in microseconds.
    pub fn duration_micros(&self) -> u64 {
        self.last_ts - self.first_ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http;
    use dnhunter_net::{IpProtocol, TcpFlags};

    fn key() -> FlowKey {
        FlowKey::from_initiator(
            "10.0.0.1".parse().unwrap(),
            "23.4.5.6".parse().unwrap(),
            50000,
            80,
            IpProtocol::Tcp,
        )
    }

    #[test]
    fn accounting_per_direction() {
        let mut r = FlowRecord::new(key(), 1_000);
        r.observe(
            FlowDirection::ClientToServer,
            1_000,
            74,
            &[],
            Some(TcpFlags::SYN),
        );
        r.observe(
            FlowDirection::ServerToClient,
            1_100,
            74,
            &[],
            Some(TcpFlags::SYN | TcpFlags::ACK),
        );
        r.observe(
            FlowDirection::ClientToServer,
            1_200,
            66,
            &[],
            Some(TcpFlags::ACK),
        );
        let req = http::build_request("GET", "/", "a.com", "x");
        r.observe(
            FlowDirection::ClientToServer,
            1_300,
            66 + req.len(),
            &req,
            Some(TcpFlags::PSH | TcpFlags::ACK),
        );
        assert_eq!(r.packets_c2s, 3);
        assert_eq!(r.packets_s2c, 1);
        assert_eq!(r.packets(), 4);
        assert_eq!(r.duration_micros(), 300);
        assert!(r.tcp_state().is_established());
        assert_eq!(r.protocol(), AppProtocol::Http);
    }

    #[test]
    fn head_capture_is_bounded() {
        let mut r = FlowRecord::new(key(), 0);
        let big = vec![0x41u8; DPI_SNAP * 2];
        r.observe(FlowDirection::ClientToServer, 1, big.len(), &big, None);
        r.observe(FlowDirection::ClientToServer, 2, big.len(), &big, None);
        assert_eq!(r.head_c2s.len(), DPI_SNAP);
    }

    #[test]
    fn dpi_cache_updates_with_new_bytes() {
        let mut r = FlowRecord::new(key(), 0);
        assert_eq!(r.protocol(), AppProtocol::Other);
        let ch = crate::tls::build_client_hello(Some("secure.example.com"), 3);
        r.observe(FlowDirection::ClientToServer, 1, ch.len(), &ch, None);
        assert_eq!(r.protocol(), AppProtocol::Tls);
        assert_eq!(r.protocol_now(), AppProtocol::Tls);
    }

    #[test]
    fn tls_info_merges_directions() {
        let mut r = FlowRecord::new(key(), 0);
        let ch = crate::tls::build_client_hello(Some("mail.google.com"), 3);
        let fl = crate::tls::build_server_flight(Some("*.google.com"), 4);
        r.observe(FlowDirection::ClientToServer, 1, ch.len(), &ch, None);
        r.observe(FlowDirection::ServerToClient, 2, fl.len(), &fl, None);
        let info = r.tls_info();
        assert_eq!(info.sni.as_deref(), Some("mail.google.com"));
        assert_eq!(info.certificate_cn.as_deref(), Some("*.google.com"));
        assert!(info.server_hello);
    }
}
