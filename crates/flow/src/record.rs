//! Per-flow accounting records.

use serde::{Deserialize, Serialize};

use crate::dpi::{self, AppProtocol};
use crate::tcp_state::{TcpConnState, TcpTracker};
use crate::tls::{self, TlsInfo};
use crate::tuple::FlowKey;

/// Packet direction relative to the flow's client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowDirection {
    ClientToServer,
    ServerToClient,
}

/// How many leading payload bytes each direction keeps for DPI.
pub const DPI_SNAP: usize = 1024;

/// Accumulated state for one layer-4 flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    pub key: FlowKey,
    /// Timestamp (µs) of the first packet.
    pub first_ts: u64,
    /// Timestamp (µs) of the most recent packet.
    pub last_ts: u64,
    pub packets_c2s: u64,
    pub packets_s2c: u64,
    pub bytes_c2s: u64,
    pub bytes_s2c: u64,
    /// First payload bytes in each direction (up to [`DPI_SNAP`]).
    pub head_c2s: Vec<u8>,
    pub head_s2c: Vec<u8>,
    tcp: TcpTracker,
    /// Segments observed starting beyond the expected sequence number
    /// (packet loss, or the leading half of a reordering).
    pub seq_gaps: u32,
    /// Segments observed starting below the expected sequence number
    /// (duplicate, retransmission, or late reordered delivery).
    pub seq_rewinds: u32,
    /// Per-direction next-expected TCP sequence number, once initialised.
    next_seq_c2s: Option<u32>,
    next_seq_s2c: Option<u32>,
    /// Cached DPI verdict; recomputed lazily when new head bytes arrive.
    dpi_dirty: bool,
    dpi_cache: AppProtocol,
}

impl FlowRecord {
    /// Start a record at the first observed packet.
    pub fn new(key: FlowKey, ts: u64) -> Self {
        FlowRecord {
            key,
            first_ts: ts,
            last_ts: ts,
            packets_c2s: 0,
            packets_s2c: 0,
            bytes_c2s: 0,
            bytes_s2c: 0,
            head_c2s: Vec::new(),
            head_s2c: Vec::new(),
            tcp: TcpTracker::new(),
            seq_gaps: 0,
            seq_rewinds: 0,
            next_seq_c2s: None,
            next_seq_s2c: None,
            dpi_dirty: true,
            dpi_cache: AppProtocol::Other,
        }
    }

    /// Account one packet. `wire_bytes` is the full frame length,
    /// `payload` the transport payload.
    pub fn observe(
        &mut self,
        direction: FlowDirection,
        ts: u64,
        wire_bytes: usize,
        payload: &[u8],
        tcp_flags: Option<dnhunter_net::TcpFlags>,
    ) {
        self.observe_seg(direction, ts, wire_bytes, payload, payload.len(), tcp_flags);
    }

    /// [`FlowRecord::observe`] when only a payload *prefix* is at hand.
    ///
    /// `head` must hold at least the first
    /// `min(DPI_SNAP - head_so_far, payload_len)` payload bytes — everything
    /// past that is never read, which is what lets the parallel ingest
    /// dispatcher ship truncated segments instead of whole frames (it
    /// mirrors each direction's head fill, so it knows exactly how many
    /// bytes the record still wants). With `head` = the full payload this is
    /// identical to [`FlowRecord::observe`].
    pub fn observe_seg(
        &mut self,
        direction: FlowDirection,
        ts: u64,
        wire_bytes: usize,
        head: &[u8],
        payload_len: usize,
        tcp_flags: Option<dnhunter_net::TcpFlags>,
    ) {
        self.last_ts = self.last_ts.max(ts);
        let from_client = matches!(direction, FlowDirection::ClientToServer);
        let (packets, bytes, head_buf) = if from_client {
            (
                &mut self.packets_c2s,
                &mut self.bytes_c2s,
                &mut self.head_c2s,
            )
        } else {
            (
                &mut self.packets_s2c,
                &mut self.bytes_s2c,
                &mut self.head_s2c,
            )
        };
        *packets += 1;
        *bytes += wire_bytes as u64;
        if payload_len > 0 && head_buf.len() < DPI_SNAP {
            let take = (DPI_SNAP - head_buf.len()).min(payload_len).min(head.len());
            // allow_lint(L1): take <= head.len() by the `.min()` above
            head_buf.extend_from_slice(&head[..take]);
            self.dpi_dirty = true;
        }
        if let Some(flags) = tcp_flags {
            self.tcp.observe(from_client, flags, payload_len);
        }
    }

    /// Track one direction's TCP sequence progression, counting gaps
    /// (segment starts beyond the expected number: a drop or the leading
    /// half of a reordering) and rewinds (segment starts below it: a
    /// duplicate, retransmission, or late reordered delivery). Pure
    /// wrapping arithmetic — a capture that starts mid-stream or wraps the
    /// 32-bit space stays consistent. Empty rewinds (bare ACKs re-stating
    /// an old number) are ignored; they carry no stream bytes.
    pub fn observe_tcp_seq(
        &mut self,
        from_client: bool,
        seq: u32,
        payload_len: usize,
        flags: dnhunter_net::TcpFlags,
    ) {
        // SYN and FIN each consume one sequence number (RFC 9293 §3.4).
        let advance = (payload_len as u32)
            .wrapping_add(u32::from(flags.syn()))
            .wrapping_add(u32::from(flags.fin()));
        let next = if from_client {
            &mut self.next_seq_c2s
        } else {
            &mut self.next_seq_s2c
        };
        let Some(expected) = *next else {
            *next = Some(seq.wrapping_add(advance));
            return;
        };
        let delta = seq.wrapping_sub(expected) as i32;
        if delta > 0 {
            self.seq_gaps += 1;
            dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::TcpSeqGap);
            *next = Some(seq.wrapping_add(advance));
        } else if delta < 0 {
            if payload_len > 0 || flags.syn() || flags.fin() {
                self.seq_rewinds += 1;
                dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::TcpSeqRewind);
            }
            // Keep the high-water expectation unless the segment extends it.
            let end = seq.wrapping_add(advance);
            if (end.wrapping_sub(expected) as i32) > 0 {
                *next = Some(end);
            }
        } else {
            *next = Some(expected.wrapping_add(advance));
        }
    }

    /// TCP connection state (meaningless for UDP flows).
    pub fn tcp_state(&self) -> TcpConnState {
        self.tcp.state()
    }

    /// DPI protocol verdict over the captured head bytes.
    pub fn protocol(&mut self) -> AppProtocol {
        if self.dpi_dirty {
            self.dpi_cache = dpi::classify(&self.head_c2s, &self.head_s2c, self.key.server_port);
            self.dpi_dirty = false;
        }
        self.dpi_cache
    }

    /// DPI verdict without mutation (recomputes if dirty).
    pub fn protocol_now(&self) -> AppProtocol {
        if self.dpi_dirty {
            dpi::classify(&self.head_c2s, &self.head_s2c, self.key.server_port)
        } else {
            self.dpi_cache
        }
    }

    /// TLS handshake information extracted from both directions.
    pub fn tls_info(&self) -> TlsInfo {
        let mut info = tls::inspect(&self.head_c2s);
        let server = tls::inspect(&self.head_s2c);
        info.server_hello |= server.server_hello;
        info.certificate_seen |= server.certificate_seen;
        if info.certificate_cn.is_none() {
            info.certificate_cn = server.certificate_cn;
        }
        info
    }

    /// Total packets both directions.
    pub fn packets(&self) -> u64 {
        self.packets_c2s + self.packets_s2c
    }

    /// Duration in microseconds.
    pub fn duration_micros(&self) -> u64 {
        self.last_ts - self.first_ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http;
    use dnhunter_net::{IpProtocol, TcpFlags};

    fn key() -> FlowKey {
        FlowKey::from_initiator(
            "10.0.0.1".parse().unwrap(),
            "23.4.5.6".parse().unwrap(),
            50000,
            80,
            IpProtocol::Tcp,
        )
    }

    #[test]
    fn accounting_per_direction() {
        let mut r = FlowRecord::new(key(), 1_000);
        r.observe(
            FlowDirection::ClientToServer,
            1_000,
            74,
            &[],
            Some(TcpFlags::SYN),
        );
        r.observe(
            FlowDirection::ServerToClient,
            1_100,
            74,
            &[],
            Some(TcpFlags::SYN | TcpFlags::ACK),
        );
        r.observe(
            FlowDirection::ClientToServer,
            1_200,
            66,
            &[],
            Some(TcpFlags::ACK),
        );
        let req = http::build_request("GET", "/", "a.com", "x");
        r.observe(
            FlowDirection::ClientToServer,
            1_300,
            66 + req.len(),
            &req,
            Some(TcpFlags::PSH | TcpFlags::ACK),
        );
        assert_eq!(r.packets_c2s, 3);
        assert_eq!(r.packets_s2c, 1);
        assert_eq!(r.packets(), 4);
        assert_eq!(r.duration_micros(), 300);
        assert!(r.tcp_state().is_established());
        assert_eq!(r.protocol(), AppProtocol::Http);
    }

    #[test]
    fn head_capture_is_bounded() {
        let mut r = FlowRecord::new(key(), 0);
        let big = vec![0x41u8; DPI_SNAP * 2];
        r.observe(FlowDirection::ClientToServer, 1, big.len(), &big, None);
        r.observe(FlowDirection::ClientToServer, 2, big.len(), &big, None);
        assert_eq!(r.head_c2s.len(), DPI_SNAP);
    }

    #[test]
    fn dpi_cache_updates_with_new_bytes() {
        let mut r = FlowRecord::new(key(), 0);
        assert_eq!(r.protocol(), AppProtocol::Other);
        let ch = crate::tls::build_client_hello(Some("secure.example.com"), 3);
        r.observe(FlowDirection::ClientToServer, 1, ch.len(), &ch, None);
        assert_eq!(r.protocol(), AppProtocol::Tls);
        assert_eq!(r.protocol_now(), AppProtocol::Tls);
    }

    #[test]
    fn seq_tracking_counts_gaps_and_rewinds() {
        let mut r = FlowRecord::new(key(), 0);
        let fl = TcpFlags::PSH | TcpFlags::ACK;
        // Establish expectation: seq 1000, 100 bytes -> next = 1100.
        r.observe_tcp_seq(true, 1_000, 100, fl);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 0));
        // In order: no fault.
        r.observe_tcp_seq(true, 1_100, 50, fl);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 0));
        // A dropped segment: next arrives beyond expected 1150.
        r.observe_tcp_seq(true, 1_400, 50, fl);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (1, 0));
        // A retransmission of old data: below expected 1450.
        r.observe_tcp_seq(true, 1_100, 50, fl);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (1, 1));
        // An empty ACK re-stating an old number is not a rewind.
        r.observe_tcp_seq(true, 1_100, 0, TcpFlags::ACK);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (1, 1));
        // Directions are tracked independently.
        r.observe_tcp_seq(false, 9_000, 10, fl);
        r.observe_tcp_seq(false, 9_010, 10, fl);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (1, 1));
    }

    #[test]
    fn seq_tracking_survives_wraparound() {
        let mut r = FlowRecord::new(key(), 0);
        let fl = TcpFlags::PSH | TcpFlags::ACK;
        // 10 bytes covering MAX-9..=MAX: the next expected seq wraps to 0.
        r.observe_tcp_seq(true, u32::MAX - 9, 10, fl);
        // The next in-order segment starts at 0 (wrapped): no fault.
        r.observe_tcp_seq(true, 0, 10, fl);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 0));
        // And a post-wrap retransmission still counts as a rewind.
        r.observe_tcp_seq(true, 0, 10, fl);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 1));
    }

    #[test]
    fn syn_advances_expected_seq_by_one() {
        let mut r = FlowRecord::new(key(), 0);
        r.observe_tcp_seq(true, 500, 0, TcpFlags::SYN);
        // ISN+1 is in order after a SYN.
        r.observe_tcp_seq(true, 501, 20, TcpFlags::PSH | TcpFlags::ACK);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 0));
        // A duplicated SYN is a rewind even with no payload.
        r.observe_tcp_seq(true, 500, 0, TcpFlags::SYN);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 1));
    }

    #[test]
    fn fin_advances_expected_seq_by_one() {
        let mut r = FlowRecord::new(key(), 0);
        r.observe_tcp_seq(true, 500, 0, TcpFlags::SYN);
        r.observe_tcp_seq(true, 501, 20, TcpFlags::PSH | TcpFlags::ACK);
        // FIN consumes one sequence number...
        r.observe_tcp_seq(true, 521, 0, TcpFlags::FIN | TcpFlags::ACK);
        // ...so an ACK restating seq 522 after it is in order, not a gap.
        r.observe_tcp_seq(true, 522, 0, TcpFlags::ACK);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 0));
        // A retransmitted FIN is a rewind even with no payload.
        r.observe_tcp_seq(true, 521, 0, TcpFlags::FIN | TcpFlags::ACK);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 1));
    }

    #[test]
    fn midstream_flow_accounting_stays_consistent() {
        // A flow first observed mid-stream (no SYN ever): bytes/packets
        // accounting and seq tracking initialise from the first segment.
        let mut r = FlowRecord::new(key(), 10);
        let fl = TcpFlags::PSH | TcpFlags::ACK;
        r.observe(
            FlowDirection::ClientToServer,
            10,
            120,
            &[0x41; 54],
            Some(fl),
        );
        r.observe_tcp_seq(true, 77_000, 54, fl);
        r.observe(
            FlowDirection::ServerToClient,
            20,
            1_400,
            &[0x42; 1_334],
            Some(fl),
        );
        r.observe_tcp_seq(false, 12_000, 1_334, fl);
        assert_eq!(r.packets_c2s, 1);
        assert_eq!(r.packets_s2c, 1);
        assert_eq!(r.bytes_c2s, 120);
        assert_eq!(r.bytes_s2c, 1_400);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 0));
        // Contiguous continuation in both directions stays fault-free.
        r.observe_tcp_seq(true, 77_054, 10, fl);
        r.observe_tcp_seq(false, 13_334, 10, fl);
        assert_eq!((r.seq_gaps, r.seq_rewinds), (0, 0));
        assert!(!r.tcp_state().is_terminal());
    }

    #[test]
    fn tls_info_merges_directions() {
        let mut r = FlowRecord::new(key(), 0);
        let ch = crate::tls::build_client_hello(Some("mail.google.com"), 3);
        let fl = crate::tls::build_server_flight(Some("*.google.com"), 4);
        r.observe(FlowDirection::ClientToServer, 1, ch.len(), &ch, None);
        r.observe(FlowDirection::ServerToClient, 2, fl.len(), &fl, None);
        let info = r.tls_info();
        assert_eq!(info.sni.as_deref(), Some("mail.google.com"));
        assert_eq!(info.certificate_cn.as_deref(), Some("*.google.com"));
        assert!(info.server_hello);
    }
}
