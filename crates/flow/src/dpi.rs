//! The lightweight DPI classifier.
//!
//! Combines the protocol detectors over the first payload bytes of each
//! direction. This plays the role Tstat's DPI plays in the paper: a ground
//! truth for the protocol mix (Tab. 2) and the "GT" column of Tables 6–7.

use serde::{Deserialize, Serialize};

use crate::bittorrent;
use crate::http;
use crate::tls;

/// Application protocol classes the paper's evaluation distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppProtocol {
    /// Plain HTTP.
    Http,
    /// TLS/SSL (HTTPS and other TLS services).
    Tls,
    /// Peer-to-peer: BitTorrent peer-wire *or* tracker traffic.
    P2p,
    /// DNS itself (UDP port 53 payloads).
    Dns,
    /// Mail protocols (SMTP/POP3/IMAP banners).
    Mail,
    /// Messaging/chat (XMPP/MSN-style banners).
    Chat,
    /// Unknown / unclassified.
    Other,
}

impl AppProtocol {
    /// Port-only classification for the flow-record ingest regime, where
    /// no payload bytes exist to inspect. Mirrors the port tie-break sets
    /// [`classify`] uses — the best a NetFlow/IPFIX probe can offer.
    pub fn from_server_port(port: u16) -> AppProtocol {
        match port {
            80 | 8080 => AppProtocol::Http,
            443 => AppProtocol::Tls,
            53 => AppProtocol::Dns,
            25 | 110 | 143 | 587 => AppProtocol::Mail,
            5222 | 1863 => AppProtocol::Chat,
            _ => AppProtocol::Other,
        }
    }

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AppProtocol::Http => "http",
            AppProtocol::Tls => "tls",
            AppProtocol::P2p => "p2p",
            AppProtocol::Dns => "dns",
            AppProtocol::Mail => "mail",
            AppProtocol::Chat => "chat",
            AppProtocol::Other => "other",
        }
    }
}

/// Classify a flow from the first payload bytes of each direction plus the
/// server port. Payload evidence always beats port numbers; ports only
/// break ties for protocols whose first payload is server-sent banners we
/// may have missed.
// lint_root(ingest): DPI classification over attacker-controlled payload prefixes
pub fn classify(c2s: &[u8], s2c: &[u8], server_port: u16) -> AppProtocol {
    // P2P first: a tracker announce is also valid HTTP, and the paper
    // counts it as P2P.
    if bittorrent::is_peer_handshake(c2s)
        || bittorrent::is_peer_handshake(s2c)
        || bittorrent::is_tracker_announce(c2s)
    {
        return AppProtocol::P2p;
    }
    if tls::looks_like_tls(c2s) || tls::looks_like_tls(s2c) {
        return AppProtocol::Tls;
    }
    if http::looks_like_http_request(c2s) || http::looks_like_http_response(s2c) {
        return AppProtocol::Http;
    }
    if server_port == 53 {
        return AppProtocol::Dns;
    }
    if is_mail_banner(s2c) || matches!(server_port, 25 | 110 | 143 | 587) {
        return AppProtocol::Mail;
    }
    if is_chat_banner(c2s) || server_port == 5222 || server_port == 1863 {
        return AppProtocol::Chat;
    }
    AppProtocol::Other
}

/// SMTP/POP3/IMAP server banners.
fn is_mail_banner(s2c: &[u8]) -> bool {
    s2c.starts_with(b"220 ") || s2c.starts_with(b"+OK") || s2c.starts_with(b"* OK")
}

/// XMPP stream header or MSNP verb.
fn is_chat_banner(c2s: &[u8]) -> bool {
    c2s.starts_with(b"<stream:stream") || c2s.starts_with(b"<?xml") || c2s.starts_with(b"VER ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_http() {
        let req = http::build_request("GET", "/", "example.com", "x");
        assert_eq!(classify(&req, &[], 80), AppProtocol::Http);
        // Response-only evidence also works.
        let resp = http::build_response(200, 3);
        assert_eq!(classify(&[], &resp, 8080), AppProtocol::Http);
    }

    #[test]
    fn classifies_tls_even_on_odd_ports() {
        let ch = tls::build_client_hello(Some("x.com"), 1);
        assert_eq!(classify(&ch, &[], 8443), AppProtocol::Tls);
    }

    #[test]
    fn tracker_announce_is_p2p_not_http() {
        let ann = bittorrent::build_tracker_announce("t.example.org", "aa", 6881);
        assert_eq!(classify(&ann, &[], 6969), AppProtocol::P2p);
    }

    #[test]
    fn peer_handshake_is_p2p() {
        let hs = bittorrent::build_peer_handshake([1; 20], [2; 20]);
        assert_eq!(classify(&hs, &[], 51413), AppProtocol::P2p);
        assert_eq!(classify(&[], &hs, 51413), AppProtocol::P2p);
    }

    #[test]
    fn mail_banners_and_ports() {
        assert_eq!(
            classify(b"EHLO x", b"220 mail.example.com ESMTP", 2525),
            AppProtocol::Mail
        );
        assert_eq!(classify(b"", b"", 25), AppProtocol::Mail);
        assert_eq!(
            classify(b"USER x", b"+OK pop ready", 12345),
            AppProtocol::Mail
        );
    }

    #[test]
    fn dns_by_port() {
        assert_eq!(classify(&[0x12, 0x34], &[], 53), AppProtocol::Dns);
    }

    #[test]
    fn chat_detection() {
        assert_eq!(
            classify(b"<stream:stream to='gmail.com'>", b"", 5222),
            AppProtocol::Chat
        );
        assert_eq!(classify(b"VER 1 MSNP15", b"", 1863), AppProtocol::Chat);
    }

    #[test]
    fn unknown_falls_through() {
        assert_eq!(classify(b"\x00\x01\x02", b"\x00", 9999), AppProtocol::Other);
        assert_eq!(classify(&[], &[], 9999), AppProtocol::Other);
    }

    #[test]
    fn labels() {
        assert_eq!(AppProtocol::Http.label(), "http");
        assert_eq!(AppProtocol::P2p.label(), "p2p");
    }
}
