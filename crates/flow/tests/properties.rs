//! Property-based tests for flow reconstruction and DPI.

use dnhunter_flow::tls::{self, x509};
use dnhunter_flow::{bittorrent, dpi, http, AppProtocol, FlowEvent, FlowTable, FlowTableConfig};
use dnhunter_net::{build_tcp_v4, MacAddr, Packet, TcpFlags};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_host() -> impl Strategy<Value = String> {
    "[a-z]{1,10}\\.[a-z]{2,8}\\.(com|net|org)"
}

proptest! {
    /// SNI round-trips through ClientHello build + inspect for any host.
    #[test]
    fn sni_roundtrip(host in arb_host(), seed in any::<u64>()) {
        let ch = tls::build_client_hello(Some(&host), seed);
        let info = tls::inspect(&ch);
        prop_assert_eq!(info.sni.as_deref(), Some(host.as_str()));
    }

    /// Certificate CN round-trips through the X.509 subset for any
    /// hostname-ish string, including wildcards.
    #[test]
    fn cn_roundtrip(host in arb_host(), wildcard in any::<bool>()) {
        let cn = if wildcard { format!("*.{host}") } else { host };
        let der = x509::build_certificate(&cn, "Test CA");
        prop_assert_eq!(x509::extract_common_name(&der), Some(cn.to_ascii_lowercase()));
    }

    /// The DPI classifier never panics and is deterministic on arbitrary
    /// head bytes.
    #[test]
    fn dpi_total_and_deterministic(
        c2s in proptest::collection::vec(any::<u8>(), 0..120),
        s2c in proptest::collection::vec(any::<u8>(), 0..120),
        port in any::<u16>(),
    ) {
        let a = dpi::classify(&c2s, &s2c, port);
        let b = dpi::classify(&c2s, &s2c, port);
        prop_assert_eq!(a, b);
    }

    /// A valid HTTP request is always detected, whatever the path/host.
    #[test]
    fn http_detection(host in arb_host(), path in "/[a-z0-9/]{0,20}") {
        let req = http::build_request("GET", &path, &host, "agent/1.0");
        prop_assert!(http::looks_like_http_request(&req));
        let parsed = http::parse_request(&req).unwrap();
        prop_assert_eq!(parsed.host.as_deref(), Some(host.as_str()));
        prop_assert_eq!(dpi::classify(&req, &[], 80), AppProtocol::Http);
    }

    /// Tracker announces always classify as P2P regardless of port.
    #[test]
    fn tracker_is_p2p(host in arb_host(), hash in "[0-9a-f]{8,40}", port in any::<u16>()) {
        let ann = bittorrent::build_tracker_announce(&host, &hash, 6881);
        prop_assert_eq!(dpi::classify(&ann, &[], port), AppProtocol::P2p);
    }

    /// The flow table conserves packets: every processed packet is counted
    /// in exactly one emitted flow.
    #[test]
    fn flow_table_conserves_packets(
        packets in proptest::collection::vec(
            (0u8..4, 0u8..4, 1u16..5, 0u8..16, proptest::collection::vec(any::<u8>(), 0..40)),
            1..60,
        )
    ) {
        let mut table = FlowTable::new(FlowTableConfig::default());
        let mut fed = 0u64;
        let mut counted = 0u64;
        for (i, (c, s, sport, flag_bits, payload)) in packets.into_iter().enumerate() {
            let frame = build_tcp_v4(
                MacAddr::from_id(1), MacAddr::from_id(2),
                Ipv4Addr::new(10, 0, 0, c + 1),
                Ipv4Addr::new(23, 0, 0, s + 1),
                30_000 + sport,
                80,
                i as u32,
                0,
                TcpFlags(flag_bits & 0x3f),
                &payload,
            ).unwrap();
            let pkt = Packet::parse(&frame).unwrap();
            // Flows may be emitted mid-stream (port reuse after FIN/RST);
            // count those too.
            for ev in table.process(i as u64 * 1_000, &pkt, frame.len()) {
                if let FlowEvent::FlowFinished(r) = ev {
                    counted += r.packets();
                }
            }
            fed += 1;
        }
        for ev in table.flush() {
            if let FlowEvent::FlowFinished(r) = ev {
                counted += r.packets();
            }
        }
        prop_assert_eq!(counted, fed);
    }

    /// Truncated or byte-mangled HTTP request lines never panic the
    /// extractor and never fabricate a host: whatever `parse_request`
    /// returns for a mangled prefix, a `Host:` value is either absent or a
    /// substring that really occurs in the input — no bogus FQDNs fed to
    /// the tagger's ground truth.
    #[test]
    fn mangled_http_never_panics_or_fabricates(
        host in arb_host(),
        cut_seed in any::<usize>(),
        flip_pos in any::<usize>(),
        flip in any::<u8>(),
    ) {
        let mut req = http::build_request("GET", "/a/b", &host, "agent/1.0");
        let cut = 1 + cut_seed % req.len();
        req.truncate(cut);
        if let Some(b) = req.get_mut(flip_pos % cut) {
            *b ^= flip;
        }
        let _ = http::looks_like_http_request(&req); // must not panic
        if let Some(parsed) = http::parse_request(&req) {
            if let Some(h) = parsed.host {
                let hay = String::from_utf8_lossy(&req).to_lowercase();
                prop_assert!(
                    hay.contains(&h.to_lowercase()),
                    "host {h:?} not present in mangled input"
                );
            }
        }
    }

    /// Pure garbage is never parsed into an HTTP request with a host.
    #[test]
    fn garbage_http_yields_no_host(junk in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = http::looks_like_http_request(&junk);
        if let Some(parsed) = http::parse_request(&junk) {
            if let Some(h) = parsed.host {
                let hay = String::from_utf8_lossy(&junk).to_lowercase();
                prop_assert!(hay.contains(&h.to_lowercase()));
            }
        }
    }

    /// Every strict prefix of a ClientHello is handled without panicking,
    /// and an SNI is only ever reported if it is the real one — a cut
    /// handshake must never yield a corrupted server name.
    #[test]
    fn client_hello_prefixes_never_fabricate_sni(
        host in arb_host(),
        seed in any::<u64>(),
        cut_seed in any::<usize>(),
    ) {
        let ch = tls::build_client_hello(Some(&host), seed);
        let cut = cut_seed % ch.len(); // strict prefix
        let info = tls::inspect(&ch[..cut]);
        if let Some(sni) = info.sni {
            prop_assert_eq!(sni, host);
        }
    }

    /// Same for the server flight: a truncated certificate either yields
    /// no CN or the genuine one, never a mangled name.
    #[test]
    fn server_flight_prefixes_never_fabricate_cn(
        host in arb_host(),
        seed in any::<u64>(),
        cut_seed in any::<usize>(),
    ) {
        let cn = format!("*.{host}");
        let fl = tls::build_server_flight(Some(&cn), seed);
        let cut = cut_seed % fl.len();
        let info = tls::inspect(&fl[..cut]);
        if let Some(got) = info.certificate_cn {
            prop_assert_eq!(got, cn.to_ascii_lowercase());
        }
    }

    /// Truncated DER never panics the X.509 subset and never invents a CN.
    #[test]
    fn x509_prefixes_never_fabricate_cn(
        host in arb_host(),
        cut_seed in any::<usize>(),
    ) {
        let der = x509::build_certificate(&host, "Test CA");
        let cut = cut_seed % der.len();
        if let Some(got) = x509::extract_common_name(&der[..cut]) {
            prop_assert_eq!(got, host.to_ascii_lowercase());
        }
    }
}
