//! Property-based tests for the DNS codec and name handling.

use dnhunter_dns::suffix::SuffixSet;
use dnhunter_dns::{codec, DnsMessage, DomainName, QClass, QType, RData, ResourceRecord};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// A strategy for valid domain-name labels.
fn arb_label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}(-[a-z0-9]{1,8})?"
}

/// A strategy for valid domain names (1–5 labels).
fn arb_name() -> impl Strategy<Value = DomainName> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| DomainName::from_labels(labels).expect("labels are valid"))
}

proptest! {
    /// Display → parse is the identity for valid names.
    #[test]
    fn name_display_parse_roundtrip(name in arb_name()) {
        let s = name.to_string();
        let back: DomainName = s.parse().unwrap();
        prop_assert_eq!(back, name);
    }

    /// Encoded length matches the wire rule (sum of labels + len bytes + root).
    #[test]
    fn encoded_len_formula(name in arb_name()) {
        let expected: usize = 1 + name.labels().iter().map(|l| l.len() + 1).sum::<usize>();
        prop_assert_eq!(name.encoded_len(), expected);
    }

    /// A child is always a subdomain of its parent; parent shortens by one.
    #[test]
    fn child_parent_relation(name in arb_name(), label in arb_label()) {
        prop_assume!(name.encoded_len() + label.len() < 255);
        let child = name.child(&label).unwrap();
        prop_assert!(child.is_subdomain_of(&name));
        prop_assert_eq!(child.parent(), name);
    }

    /// DNS messages round-trip through the wire codec, whatever the
    /// question/answer composition.
    #[test]
    fn message_roundtrip(
        qname in arb_name(),
        id in any::<u16>(),
        answers in proptest::collection::vec((arb_name(), any::<u32>(), any::<u32>()), 0..8),
    ) {
        let q = DnsMessage::query(id, qname, QType::A);
        let rrs = answers
            .into_iter()
            .map(|(name, ttl, ip)| ResourceRecord {
                name,
                class: QClass::In,
                ttl,
                rdata: RData::A(Ipv4Addr::from(ip)),
            })
            .collect();
        let msg = DnsMessage::answer_to(&q, rrs);
        let bytes = codec::encode(&msg).unwrap();
        let back = codec::decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = codec::decode(&junk);
    }

    /// Truncating a valid message never panics and never yields a message
    /// with more records than the original.
    #[test]
    fn truncation_is_safe(qname in arb_name(), cut_seed in any::<usize>()) {
        let q = DnsMessage::query(1, qname.clone(), QType::A);
        let msg = DnsMessage::answer_to(&q, vec![ResourceRecord {
            name: qname,
            class: QClass::In,
            ttl: 60,
            rdata: RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        }]);
        let bytes = codec::encode(&msg).unwrap();
        let cut = cut_seed % bytes.len();
        let _ = codec::decode(&bytes[..cut]);
    }

    /// Tokenizer output never contains digits, uppercase, or empty/bare-N
    /// tokens.
    #[test]
    fn tokenizer_invariants(name in arb_name()) {
        let suffixes = SuffixSet::builtin();
        for token in dnhunter_dns::tokenize_fqdn(&name, &suffixes) {
            prop_assert!(!token.is_empty());
            prop_assert_ne!(token.as_str(), "N");
            for c in token.chars() {
                prop_assert!(!c.is_ascii_digit(), "digit survived in {token}");
                // 'N' is the digit-run placeholder; everything else must be
                // lowercase.
                prop_assert!(
                    c == 'N' || !c.is_ascii_uppercase(),
                    "uppercase in {token}"
                );
            }
        }
    }

    /// The second-level domain is always a suffix of the name and has at
    /// most (public suffix + 1) labels.
    #[test]
    fn sld_is_suffix(name in arb_name()) {
        let suffixes = SuffixSet::builtin();
        let sld = name.second_level_domain(&suffixes);
        prop_assert!(name.is_subdomain_of(&sld));
        prop_assert!(sld.label_count() <= name.label_count());
    }
}
