//! A compact public-suffix table.
//!
//! The paper's analytics hinge on splitting an FQDN into
//! `sub-labels . second-level-domain . TLD`, where the second-level domain
//! identifies the *organization* owning the name. Multi-label public
//! suffixes (`co.uk`, `com.au`, …) must count as part of the "TLD" for that
//! split to name the organization correctly. A full Mozilla PSL is overkill
//! for synthetic traffic; this table covers the suffixes the simulator and
//! tests use, plus the common global ones, and is extensible at runtime.

use std::collections::HashSet;

/// Single-label public suffixes (classic TLDs).
pub const SINGLE_LABEL: &[&str] = &[
    "com", "net", "org", "edu", "gov", "mil", "int", "arpa", "biz", "info", "name", "io", "tv",
    "me", "cc", "ly", "fm", "am", "it", "fr", "de", "es", "nl", "be", "ch", "at", "se", "no", "fi",
    "dk", "pl", "cz", "pt", "gr", "ie", "us", "ca", "mx", "ru", "in", "kr",
];

/// Multi-label public suffixes.
pub const MULTI_LABEL: &[&str] = &[
    "co.uk",
    "org.uk",
    "ac.uk",
    "gov.uk",
    "me.uk",
    "net.uk",
    "com.au",
    "net.au",
    "org.au",
    "co.jp",
    "ne.jp",
    "or.jp",
    "ac.jp",
    "com.br",
    "net.br",
    "org.br",
    "com.cn",
    "net.cn",
    "org.cn",
    "co.nz",
    "net.nz",
    "co.in",
    "net.in",
    "in-addr.arpa",
    "ip6.arpa",
];

/// Runtime-extensible suffix set with longest-match lookup — backs the
/// paper's second-level-domain ("organization") notion, §4.1.
#[derive(Debug, Clone)]
pub struct SuffixSet {
    suffixes: HashSet<String>,
    /// Longest suffix in the set, in labels; bounds the matching loop.
    max_labels: usize,
}

impl SuffixSet {
    /// The built-in table (common public suffixes; extend via [`SuffixSet::insert`]
    /// for deployment-specific zones, per the paper's §4.1 grouping).
    pub fn builtin() -> Self {
        let mut suffixes = HashSet::new();
        for s in SINGLE_LABEL {
            suffixes.insert((*s).to_string());
        }
        for s in MULTI_LABEL {
            suffixes.insert((*s).to_string());
        }
        SuffixSet {
            suffixes,
            max_labels: 2,
        }
    }

    /// Add a suffix (lowercased) to the set, widening the paper's §4.1
    /// organization grouping.
    pub fn insert(&mut self, suffix: &str) {
        let s = suffix.to_ascii_lowercase();
        self.max_labels = self.max_labels.max(s.split('.').count());
        self.suffixes.insert(s);
    }

    /// Number of labels of the longest public suffix matching the tail of
    /// `labels` (which must be lowercase, TLD-last). Returns 1 as a fallback
    /// for unknown TLDs, 0 for an empty name — so `sld_len = suffix + 1`,
    /// the paper's second-level domain (§4.1).
    // allow_lint(L1): take <= upper <= labels.len(), so labels.len() - take never underflows
    pub fn matching_suffix_labels(&self, labels: &[String]) -> usize {
        if labels.is_empty() {
            return 0;
        }
        let upper = self.max_labels.min(labels.len());
        for take in (1..=upper).rev() {
            let candidate = labels[labels.len() - take..].join(".");
            if self.suffixes.contains(&candidate) {
                return take;
            }
        }
        1 // unknown TLD: treat the last label as the public suffix
    }

    /// True if the exact string is a known public suffix (§4.1 grouping).
    pub fn contains(&self, suffix: &str) -> bool {
        self.suffixes.contains(&suffix.to_ascii_lowercase())
    }
}

impl Default for SuffixSet {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(s: &str) -> Vec<String> {
        s.split('.').map(str::to_string).collect()
    }

    #[test]
    fn single_label_match() {
        let set = SuffixSet::builtin();
        assert_eq!(set.matching_suffix_labels(&labels("example.com")), 1);
        assert_eq!(set.matching_suffix_labels(&labels("www.example.com")), 1);
    }

    #[test]
    fn multi_label_match_wins() {
        let set = SuffixSet::builtin();
        assert_eq!(set.matching_suffix_labels(&labels("bbc.co.uk")), 2);
        assert_eq!(set.matching_suffix_labels(&labels("news.bbc.co.uk")), 2);
    }

    #[test]
    fn unknown_tld_falls_back_to_one() {
        let set = SuffixSet::builtin();
        assert_eq!(set.matching_suffix_labels(&labels("host.weirdtld")), 1);
    }

    #[test]
    fn empty_name() {
        let set = SuffixSet::builtin();
        assert_eq!(set.matching_suffix_labels(&[]), 0);
    }

    #[test]
    fn runtime_insert_extends_matching() {
        let mut set = SuffixSet::builtin();
        assert_eq!(
            set.matching_suffix_labels(&labels("a.b.example.internal")),
            1
        );
        set.insert("example.internal");
        assert_eq!(
            set.matching_suffix_labels(&labels("a.b.example.internal")),
            2
        );
        assert!(set.contains("EXAMPLE.INTERNAL"));
    }

    #[test]
    fn reverse_zone_suffix() {
        let set = SuffixSet::builtin();
        assert_eq!(
            set.matching_suffix_labels(&labels("34.216.184.93.in-addr.arpa")),
            2
        );
    }
}
