//! FQDN tokenization — the paper's Algorithm 4 preprocessing.
//!
//! Given an FQDN, the service-tag extractor considers only the sub-labels
//! below the second-level domain, splits them on non-alphanumeric
//! characters, and replaces every digit run with a generic `N` so that
//! `smtp2.mail.google.com` yields the tokens `{smtpN, mail}` and
//! `mediaN.linkedin.com` groups all of `media1…media9` together.

use crate::name::DomainName;
use crate::suffix::SuffixSet;

/// Normalise one raw token per the paper's Algorithm 4: lowercase, digit
/// runs collapsed to a single `N`. Returns `None` when nothing but
/// separators/digits-only-noise remains.
pub fn normalize_token(raw: &str) -> Option<String> {
    if raw.is_empty() {
        return None;
    }
    let mut out = String::with_capacity(raw.len());
    let mut in_digits = false;
    for c in raw.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('N');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c.to_ascii_lowercase());
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Split one label into normalised tokens (Algorithm 4). Separators are
/// any non-alphanumeric characters (`-`, `_`).
pub fn tokenize_label(label: &str) -> Vec<String> {
    label
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter_map(normalize_token)
        .filter(|t| t != "N") // a bare number carries no service semantics
        .collect()
}

/// Tokenize a whole FQDN per Algorithm 4: drop the TLD and second-level
/// domain, tokenize every remaining label.
pub fn tokenize_fqdn(fqdn: &DomainName, suffixes: &SuffixSet) -> Vec<String> {
    fqdn.sub_labels(suffixes)
        .iter()
        .flat_map(|l| tokenize_label(l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn paper_example_smtp2_mail_google() {
        let s = SuffixSet::builtin();
        assert_eq!(
            tokenize_fqdn(&n("smtp2.mail.google.com"), &s),
            vec!["smtpN", "mail"]
        );
    }

    #[test]
    fn digit_runs_collapse_to_single_n() {
        assert_eq!(normalize_token("media123"), Some("mediaN".into()));
        assert_eq!(normalize_token("a1b22c"), Some("aNbNc".into()));
        assert_eq!(normalize_token("42"), Some("N".into()));
    }

    #[test]
    fn separators_split_tokens() {
        assert_eq!(tokenize_label("fb_client_7"), vec!["fb", "client"]);
        // A purely numeric fragment is dropped entirely.
        assert_eq!(tokenize_label("42"), Vec::<String>::new());
        assert_eq!(tokenize_label("dev3-cclough"), vec!["devN", "cclough"]);
        assert_eq!(tokenize_label("---"), Vec::<String>::new());
    }

    #[test]
    fn sld_and_tld_are_excluded() {
        let s = SuffixSet::builtin();
        assert!(tokenize_fqdn(&n("google.com"), &s).is_empty());
        assert!(tokenize_fqdn(&n("com"), &s).is_empty());
        // Multi-label public suffix: only `static` survives.
        assert_eq!(tokenize_fqdn(&n("static.bbc.co.uk"), &s), vec!["static"]);
    }

    #[test]
    fn deep_names_produce_all_sub_tokens() {
        let s = SuffixSet::builtin();
        assert_eq!(
            tokenize_fqdn(&n("streetracing.myspace2.zynga.com"), &s),
            vec!["streetracing", "myspaceN"]
        );
        assert_eq!(
            tokenize_fqdn(&n("iphone.stats.zynga.com"), &s),
            vec!["iphone", "stats"]
        );
    }

    #[test]
    fn empty_and_root() {
        let s = SuffixSet::builtin();
        assert!(tokenize_fqdn(&DomainName::root(), &s).is_empty());
        assert_eq!(normalize_token(""), None);
    }

    #[test]
    fn case_is_normalised() {
        assert_eq!(normalize_token("MeDiA5"), Some("mediaN".into()));
    }
}
