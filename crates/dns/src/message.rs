//! DNS message structure per RFC 1035 §4.1: header, questions and
//! resource records.

use std::fmt;
use std::net::IpAddr;

use crate::name::DomainName;
use crate::rdata::RData;

/// Query/record type codes (RFC 1035 §3.2.2; AAAA per RFC 3596).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QType {
    A,
    Ns,
    Cname,
    Soa,
    Ptr,
    Mx,
    Txt,
    Aaaa,
    /// `ANY` meta-query.
    Any,
    Other(u16),
}

impl QType {
    /// Wire value (RFC 1035 §3.2.2).
    pub fn value(self) -> u16 {
        match self {
            QType::A => 1,
            QType::Ns => 2,
            QType::Cname => 5,
            QType::Soa => 6,
            QType::Ptr => 12,
            QType::Mx => 15,
            QType::Txt => 16,
            QType::Aaaa => 28,
            QType::Any => 255,
            QType::Other(v) => v,
        }
    }
}

impl From<u16> for QType {
    fn from(v: u16) -> Self {
        match v {
            1 => QType::A,
            2 => QType::Ns,
            5 => QType::Cname,
            6 => QType::Soa,
            12 => QType::Ptr,
            15 => QType::Mx,
            16 => QType::Txt,
            28 => QType::Aaaa,
            255 => QType::Any,
            other => QType::Other(other),
        }
    }
}

impl fmt::Display for QType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QType::A => write!(f, "A"),
            QType::Ns => write!(f, "NS"),
            QType::Cname => write!(f, "CNAME"),
            QType::Soa => write!(f, "SOA"),
            QType::Ptr => write!(f, "PTR"),
            QType::Mx => write!(f, "MX"),
            QType::Txt => write!(f, "TXT"),
            QType::Aaaa => write!(f, "AAAA"),
            QType::Any => write!(f, "ANY"),
            QType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// Query/record class codes (RFC 1035 §3.2.4). Only IN matters in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QClass {
    In,
    Any,
    Other(u16),
}

impl QClass {
    /// Wire value (RFC 1035 §3.2.4).
    pub fn value(self) -> u16 {
        match self {
            QClass::In => 1,
            QClass::Any => 255,
            QClass::Other(v) => v,
        }
    }
}

impl From<u16> for QClass {
    fn from(v: u16) -> Self {
        match v {
            1 => QClass::In,
            255 => QClass::Any,
            other => QClass::Other(other),
        }
    }
}

/// Response codes (RFC 1035 §4.1.1, subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
    Other(u8),
}

impl Rcode {
    /// Wire value (4 bits, RFC 1035 §4.1.1).
    pub fn value(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0f,
        }
    }
}

impl From<u8> for Rcode {
    fn from(v: u8) -> Self {
        match v & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// The fixed 12-byte header (RFC 1035 §4.1.1), decomposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsHeader {
    pub id: u16,
    /// True for responses (QR bit).
    pub is_response: bool,
    pub opcode: u8,
    pub authoritative: bool,
    pub truncated: bool,
    pub recursion_desired: bool,
    pub recursion_available: bool,
    pub rcode: Rcode,
}

impl DnsHeader {
    /// Header for a standard recursive query (RFC 1035 §4.1.1 flags).
    pub fn query(id: u16) -> Self {
        DnsHeader {
            id,
            is_response: false,
            opcode: 0,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
        }
    }

    /// Header for a response to the given query id (RFC 1035 §4.1.1 flags).
    pub fn response(id: u16, rcode: Rcode) -> Self {
        DnsHeader {
            id,
            is_response: true,
            opcode: 0,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: true,
            rcode,
        }
    }
}

/// One question entry (RFC 1035 §4.1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    pub qname: DomainName,
    pub qtype: QType,
    pub qclass: QClass,
}

/// One resource record (RFC 1035 §4.1.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    pub name: DomainName,
    pub class: QClass,
    pub ttl: u32,
    pub rdata: RData,
}

/// A whole DNS message (RFC 1035 §4.1): header plus four sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    pub header: DnsHeader,
    pub questions: Vec<Question>,
    pub answers: Vec<ResourceRecord>,
    pub authorities: Vec<ResourceRecord>,
    pub additionals: Vec<ResourceRecord>,
}

impl DnsMessage {
    /// A standard A/AAAA/PTR/... query for `name` (RFC 1035 §4.1).
    pub fn query(id: u16, name: DomainName, qtype: QType) -> Self {
        DnsMessage {
            header: DnsHeader::query(id),
            questions: vec![Question {
                qname: name,
                qtype,
                qclass: QClass::In,
            }],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// A NOERROR response answering `query` with the given records
    /// (RFC 1035 §4.1).
    pub fn answer_to(query: &DnsMessage, answers: Vec<ResourceRecord>) -> Self {
        DnsMessage {
            header: DnsHeader::response(query.header.id, Rcode::NoError),
            questions: query.questions.clone(),
            answers,
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// An NXDOMAIN (or other error, RFC 1035 §4.1.1) response to `query`.
    pub fn error_to(query: &DnsMessage, rcode: Rcode) -> Self {
        DnsMessage {
            header: DnsHeader::response(query.header.id, rcode),
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// The question name, if there is exactly one question (the common case
    /// the paper's sniffer relies on, §3.1).
    pub fn question_name(&self) -> Option<&DomainName> {
        match self.questions.as_slice() {
            [q] => Some(&q.qname),
            _ => None,
        }
    }

    /// All server IP addresses carried in answer A/AAAA records — the
    /// "answer list" of the paper. CNAME chains contribute nothing here;
    /// their terminal A records do.
    pub fn answer_addresses(&self) -> Vec<IpAddr> {
        self.answers.iter().filter_map(|rr| rr.rdata.ip()).collect()
    }

    /// The FQDN that was queried, following CNAME indirection: the paper tags
    /// flows with the *queried* name, not the canonical one.
    pub fn queried_fqdn(&self) -> Option<&DomainName> {
        self.question_name()
    }

    /// Minimum TTL across answers (how long a client may cache the mapping —
    /// the horizon the paper's §4.2 dimensioning reasons about); `None` when
    /// there are no answers.
    pub fn min_answer_ttl(&self) -> Option<u32> {
        self.answers.iter().map(|rr| rr.ttl).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn a_record(n: &str, ttl: u32, ip: [u8; 4]) -> ResourceRecord {
        ResourceRecord {
            name: name(n),
            class: QClass::In,
            ttl,
            rdata: RData::A(Ipv4Addr::from(ip)),
        }
    }

    #[test]
    fn qtype_roundtrip() {
        for v in [1u16, 2, 5, 6, 12, 15, 16, 28, 255, 999] {
            assert_eq!(QType::from(v).value(), v);
        }
    }

    #[test]
    fn qclass_and_rcode_roundtrip() {
        for v in [1u16, 255, 4] {
            assert_eq!(QClass::from(v).value(), v);
        }
        for v in 0u8..16 {
            assert_eq!(Rcode::from(v).value(), v);
        }
    }

    #[test]
    fn query_builder() {
        let q = DnsMessage::query(0x1234, name("itunes.apple.com"), QType::A);
        assert!(!q.header.is_response);
        assert!(q.header.recursion_desired);
        assert_eq!(q.question_name(), Some(&name("itunes.apple.com")));
        assert!(q.answer_addresses().is_empty());
    }

    #[test]
    fn answer_builder_and_addresses() {
        let q = DnsMessage::query(7, name("data.flurry.com"), QType::A);
        let r = DnsMessage::answer_to(
            &q,
            vec![
                a_record("data.flurry.com", 60, [216, 74, 41, 8]),
                a_record("data.flurry.com", 60, [216, 74, 41, 10]),
                a_record("data.flurry.com", 30, [216, 74, 41, 12]),
            ],
        );
        assert!(r.header.is_response);
        assert_eq!(r.header.id, 7);
        assert_eq!(r.answer_addresses().len(), 3);
        assert_eq!(r.min_answer_ttl(), Some(30));
        assert_eq!(r.queried_fqdn(), Some(&name("data.flurry.com")));
    }

    #[test]
    fn error_response() {
        let q = DnsMessage::query(9, name("nope.example"), QType::A);
        let r = DnsMessage::error_to(&q, Rcode::NxDomain);
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert!(r.answers.is_empty());
        assert_eq!(r.min_answer_ttl(), None);
    }

    #[test]
    fn multi_question_has_no_single_name() {
        let mut q = DnsMessage::query(1, name("a.com"), QType::A);
        q.questions.push(Question {
            qname: name("b.com"),
            qtype: QType::A,
            qclass: QClass::In,
        });
        assert_eq!(q.question_name(), None);
    }

    #[test]
    fn cname_answers_do_not_contribute_addresses() {
        let q = DnsMessage::query(2, name("www.zynga.com"), QType::A);
        let r = DnsMessage::answer_to(
            &q,
            vec![
                ResourceRecord {
                    name: name("www.zynga.com"),
                    class: QClass::In,
                    ttl: 300,
                    rdata: RData::Cname(name("www.zynga.com.edgekey.net")),
                },
                a_record("www.zynga.com.edgekey.net", 20, [23, 3, 4, 5]),
            ],
        );
        assert_eq!(r.answer_addresses().len(), 1);
    }
}
