//! Error type for DNS parsing and building.
//!
//! Limits and malformation cases follow RFC 1035; the sniffer treats any
//! of these errors as "not DNS" and moves on, as the paper's passive
//! observer must (§3.1).

use std::fmt;

/// Errors raised while handling DNS names and messages (limits per
/// RFC 1035 §2.3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// A domain-name string failed validation.
    BadName(String),
    /// The wire message is truncated or internally inconsistent.
    Malformed(String),
    /// A compression pointer loop or forward pointer was detected.
    BadPointer(String),
    /// A name would exceed the 255-octet limit.
    NameTooLong(usize),
    /// A label would exceed the 63-octet limit.
    LabelTooLong(usize),
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::BadName(d) => write!(f, "invalid domain name: {d}"),
            DnsError::Malformed(d) => write!(f, "malformed DNS message: {d}"),
            DnsError::BadPointer(d) => write!(f, "bad compression pointer: {d}"),
            DnsError::NameTooLong(n) => write!(f, "domain name too long ({n} octets, max 255)"),
            DnsError::LabelTooLong(n) => write!(f, "label too long ({n} octets, max 63)"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Convenience alias for DNS parsing results (errors per RFC 1035 limits).
pub type Result<T> = std::result::Result<T, DnsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DnsError::BadName("x".into())
            .to_string()
            .contains("invalid"));
        assert!(DnsError::NameTooLong(300).to_string().contains("300"));
        assert!(DnsError::LabelTooLong(64).to_string().contains("64"));
    }
}
