//! Domain names: validation, normalisation, and the label arithmetic the
//! paper's analytics are built on.

use std::fmt;
use std::str::FromStr;

use crate::error::{DnsError, Result};
use crate::suffix::SuffixSet;

/// Maximum encoded name length in octets (RFC 1035 §2.3.4).
pub const MAX_NAME_OCTETS: usize = 255;
/// Maximum label length in octets.
pub const MAX_LABEL_OCTETS: usize = 63;

/// A validated, lowercase domain name (limits per RFC 1035 §2.3.4) stored
/// as its label sequence, most-specific label first (`www`, `example`,
/// `com`) — the unit the paper's label analytics (§4.1) operate on.
///
/// The root name has zero labels and displays as `.`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName {
    labels: Vec<String>,
}

impl serde::Serialize for DomainName {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> serde::Deserialize<'de> for DomainName {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

impl DomainName {
    /// The root name (zero labels, RFC 1035 §3.1).
    pub fn root() -> Self {
        DomainName { labels: Vec::new() }
    }

    /// Build from pre-validated lowercase labels (used by the codec).
    pub(crate) fn from_labels_unchecked(labels: Vec<String>) -> Self {
        DomainName { labels }
    }

    /// Build from labels with full validation (RFC 1035 §2.3.4 limits).
    pub fn from_labels<I, S>(labels: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Vec::new();
        let mut octets = 1; // trailing root byte
        for l in labels {
            let l = l.as_ref();
            validate_label(l)?;
            octets += l.len() + 1;
            out.push(l.to_ascii_lowercase());
        }
        if octets > MAX_NAME_OCTETS {
            return Err(DnsError::NameTooLong(octets));
        }
        Ok(DomainName { labels: out })
    }

    /// The labels, most-specific first (wire order, RFC 1035 §3.1).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The name's flight-recorder provenance key: FNV-1a over the
    /// dotted lowercase form (names compare case-insensitively, RFC 1035
    /// §2.3.3), computed label-by-label so the record path never
    /// allocates. `--explain` hashes its FQDN argument through the
    /// same parse-then-key path, so keys match by construction.
    pub fn trace_key(&self) -> u64 {
        let mut h = dnhunter_telemetry::TraceKeyHasher::new();
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                h.write_u8(b'.');
            }
            h.write(label.as_bytes());
        }
        h.finish()
    }

    /// Number of labels — the depth the paper's Fig. 8 CDF is taken over.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True for the root name (RFC 1035 §3.1).
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Encoded length in octets (labels + length bytes + root byte,
    /// RFC 1035 §3.1).
    pub fn encoded_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// The top-level domain (`com` for `www.example.com`), if any — level 1
    /// in the paper's §4.1 naming.
    pub fn tld(&self) -> Option<&str> {
        self.labels.last().map(String::as_str)
    }

    /// The *second-level domain* in the paper's sense: the organization name
    /// — the public suffix plus one label. `www.example.com` → `example.com`;
    /// `news.bbc.co.uk` → `bbc.co.uk`. Names that *are* a public suffix (or
    /// shorter) return themselves.
    // allow_lint(L1): keep <= labels.len() by the `.min()` above, so the slice start is in bounds
    pub fn second_level_domain(&self, suffixes: &SuffixSet) -> DomainName {
        let suffix_labels = suffixes.matching_suffix_labels(&self.labels);
        let keep = (suffix_labels + 1).min(self.labels.len());
        DomainName {
            labels: self.labels[self.labels.len() - keep..].to_vec(),
        }
    }

    /// The sub-labels *below* the second-level domain, most-specific first.
    /// `smtp2.mail.google.com` → `["smtp2", "mail"]`. These feed Algorithm 4.
    // allow_lint(L1): keep <= labels.len() by the `.min()` above, so the slice end is in bounds
    pub fn sub_labels(&self, suffixes: &SuffixSet) -> &[String] {
        let suffix_labels = suffixes.matching_suffix_labels(&self.labels);
        let keep = (suffix_labels + 1).min(self.labels.len());
        &self.labels[..self.labels.len() - keep]
    }

    /// True if `self` equals `other` or is a subdomain of it (label-suffix
    /// containment, the paper's §4.1 hierarchy).
    // allow_lint(L1): offset <= labels.len() — the early return rejects `other` longer than `self`
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..] == other.labels[..]
    }

    /// Prepend a label, producing the child name (stays within RFC 1035
    /// §2.3.4 length limits).
    pub fn child(&self, label: &str) -> Result<DomainName> {
        validate_label(label)?;
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.to_ascii_lowercase());
        labels.extend_from_slice(&self.labels);
        let name = DomainName { labels };
        if name.encoded_len() > MAX_NAME_OCTETS {
            return Err(DnsError::NameTooLong(name.encoded_len()));
        }
        Ok(name)
    }

    /// The parent name (drop the most-specific label, one level up in the
    /// paper's §4.1 hierarchy); root's parent is root.
    // allow_lint(L1): labels[1..] is valid — the empty case returned early, so len >= 1
    pub fn parent(&self) -> DomainName {
        if self.labels.is_empty() {
            return self.clone();
        }
        DomainName {
            labels: self.labels[1..].to_vec(),
        }
    }
}

/// Validate one label: 1–63 octets of letters, digits, `-` or `_`, not
/// beginning or ending with `-`. Underscore is accepted because service
/// labels (`_sip._tcp`) occur in real traffic.
fn validate_label(l: &str) -> Result<()> {
    if l.is_empty() {
        return Err(DnsError::BadName("empty label".into()));
    }
    if l.len() > MAX_LABEL_OCTETS {
        return Err(DnsError::LabelTooLong(l.len()));
    }
    if l.starts_with('-') || l.ends_with('-') {
        return Err(DnsError::BadName(format!(
            "label '{l}' begins or ends with a hyphen"
        )));
    }
    for c in l.chars() {
        if !(c.is_ascii_alphanumeric() || c == '-' || c == '_') {
            return Err(DnsError::BadName(format!(
                "label '{l}' contains invalid character '{c}'"
            )));
        }
    }
    Ok(())
}

impl FromStr for DomainName {
    type Err = DnsError;

    fn from_str(s: &str) -> Result<Self> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(DomainName::root());
        }
        DomainName::from_labels(s.split('.'))
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        write!(f, "{}", self.labels.join("."))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("www.Example.COM").to_string(), "www.example.com");
        assert_eq!(n("www.example.com.").to_string(), "www.example.com");
        assert_eq!(DomainName::root().to_string(), ".");
        assert_eq!("".parse::<DomainName>().unwrap(), DomainName::root());
        assert_eq!(".".parse::<DomainName>().unwrap(), DomainName::root());
    }

    #[test]
    fn rejects_bad_labels() {
        assert!("ex ample.com".parse::<DomainName>().is_err());
        assert!("-bad.com".parse::<DomainName>().is_err());
        assert!("bad-.com".parse::<DomainName>().is_err());
        assert!("a..b".parse::<DomainName>().is_err());
        let long = "a".repeat(64);
        assert!(format!("{long}.com").parse::<DomainName>().is_err());
    }

    #[test]
    fn rejects_overlong_names() {
        let label = "a".repeat(60);
        let name = [label.as_str(); 5].join(".");
        assert!(matches!(
            name.parse::<DomainName>(),
            Err(DnsError::NameTooLong(_))
        ));
    }

    #[test]
    fn underscore_labels_accepted() {
        assert_eq!(n("_sip._tcp.example.com").label_count(), 4);
    }

    #[test]
    fn tld_and_sld() {
        let s = SuffixSet::builtin();
        assert_eq!(n("www.example.com").tld(), Some("com"));
        assert_eq!(
            n("www.example.com").second_level_domain(&s).to_string(),
            "example.com"
        );
        assert_eq!(
            n("news.bbc.co.uk").second_level_domain(&s).to_string(),
            "bbc.co.uk"
        );
        // A bare public suffix maps to itself.
        assert_eq!(n("com").second_level_domain(&s).to_string(), "com");
        assert_eq!(n("co.uk").second_level_domain(&s).to_string(), "co.uk");
    }

    #[test]
    fn sub_labels_for_tokenizer() {
        let s = SuffixSet::builtin();
        assert_eq!(
            n("smtp2.mail.google.com").sub_labels(&s),
            &["smtp2".to_string(), "mail".to_string()]
        );
        assert!(n("google.com").sub_labels(&s).is_empty());
        assert_eq!(n("media4.static.bbc.co.uk").sub_labels(&s).len(), 2);
    }

    #[test]
    fn subdomain_relation() {
        assert!(n("www.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(!n("example.com").is_subdomain_of(&n("www.example.com")));
        assert!(!n("badexample.com").is_subdomain_of(&n("example.com")));
        assert!(n("anything.at.all").is_subdomain_of(&DomainName::root()));
    }

    #[test]
    fn child_and_parent() {
        let base = n("example.com");
        let www = base.child("WWW").unwrap();
        assert_eq!(www.to_string(), "www.example.com");
        assert_eq!(www.parent(), base);
        assert_eq!(DomainName::root().parent(), DomainName::root());
        assert!(base.child("bad label").is_err());
    }

    #[test]
    fn encoded_len_matches_wire_rule() {
        assert_eq!(DomainName::root().encoded_len(), 1);
        assert_eq!(n("a.bc").encoded_len(), 1 + 2 + 3); // 1a 2bc 0
    }

    #[test]
    fn ordering_is_stable_for_map_keys() {
        let mut v = vec![n("b.com"), n("a.com"), n("a.com")];
        v.sort();
        v.dedup();
        assert_eq!(v, vec![n("a.com"), n("b.com")]);
    }
}
