//! # dnhunter-dns
//!
//! A from-scratch DNS implementation sized for passive monitoring:
//!
//! * [`name::DomainName`] — a validated, case-normalised domain name with the
//!   label structure the paper's analytics operate on (TLD, second-level
//!   domain, FQDN sub-labels).
//! * [`suffix`] — a compact public-suffix table so that `bbc.co.uk` yields
//!   `bbc.co.uk` as its *second-level domain* (the "organization" in the
//!   paper's terminology) rather than `co.uk`.
//! * [`message`] / [`rdata`] / [`codec`] — the RFC 1035 wire format with
//!   name-compression on encode and pointer-chasing (loop-safe) on decode,
//!   covering the record types a flow-tagging sniffer sees in practice
//!   (A, AAAA, CNAME, PTR, NS, MX, TXT, SOA).
//! * [`tokenizer`] — the FQDN tokenization of the paper's Algorithm 4
//!   (drop TLD + second-level domain, split the remaining labels on
//!   non-alphanumeric characters, collapse digit runs to `N`).

pub mod codec;
pub mod error;
pub mod message;
pub mod name;
pub mod rdata;
pub mod suffix;
pub mod tokenizer;

pub use error::{DnsError, Result};
pub use message::{DnsHeader, DnsMessage, QClass, QType, Question, Rcode, ResourceRecord};
pub use name::DomainName;
pub use rdata::RData;
pub use tokenizer::{tokenize_fqdn, tokenize_label};
