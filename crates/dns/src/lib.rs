//! # dnhunter-dns
//!
//! A from-scratch DNS implementation sized for passive monitoring:
//!
//! * [`name::DomainName`] — a validated, case-normalised domain name with the
//!   label structure the paper's analytics operate on (TLD, second-level
//!   domain, FQDN sub-labels).
//! * [`suffix`] — a compact public-suffix table so that `bbc.co.uk` yields
//!   `bbc.co.uk` as its *second-level domain* (the "organization" in the
//!   paper's terminology) rather than `co.uk`.
//! * [`message`] / [`rdata`] / [`codec`] — the RFC 1035 wire format with
//!   name-compression on encode and pointer-chasing (loop-safe) on decode,
//!   covering the record types a flow-tagging sniffer sees in practice
//!   (A, AAAA, CNAME, PTR, NS, MX, TXT, SOA).
//! * [`tokenizer`] — the FQDN tokenization of the paper's Algorithm 4
//!   (drop TLD + second-level domain, split the remaining labels on
//!   non-alphanumeric characters, collapse digit runs to `N`).

#![forbid(unsafe_code)]

/// RFC 1035 §4 wire codec (name compression, pointer chasing).
pub mod codec;
/// Error type for DNS parsing; limits per RFC 1035 §2.3.4.
pub mod error;
/// Message structure per RFC 1035 §4.1: header, questions, records.
pub mod message;
/// Validated domain names and the label splits the paper's §4 analytics use.
pub mod name;
/// Resource-record payloads (RFC 1035 §3.3 / RFC 3596).
pub mod rdata;
/// Public-suffix table backing the paper's second-level-domain notion (§4.1).
pub mod suffix;
/// FQDN tokenization of the paper's Algorithm 4.
pub mod tokenizer;

pub use error::{DnsError, Result};
pub use message::{DnsHeader, DnsMessage, QClass, QType, Question, Rcode, ResourceRecord};
pub use name::DomainName;
pub use rdata::RData;
pub use tokenizer::{tokenize_fqdn, tokenize_label};
