//! Resource-record data (RFC 1035 §3.3; AAAA per RFC 3596) for the record
//! types passive monitoring encounters.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::message::QType;
use crate::name::DomainName;

/// Typed RDATA (RFC 1035 §3.3; AAAA per RFC 3596).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 host address.
    A(Ipv4Addr),
    /// IPv6 host address.
    Aaaa(Ipv6Addr),
    /// Canonical name alias.
    Cname(DomainName),
    /// Reverse pointer.
    Ptr(DomainName),
    /// Delegation.
    Ns(DomainName),
    /// Mail exchange.
    Mx {
        preference: u16,
        exchange: DomainName,
    },
    /// Text strings.
    Txt(Vec<String>),
    /// Start of authority.
    Soa {
        mname: DomainName,
        rname: DomainName,
        serial: u32,
        refresh: u32,
        retry: u32,
        expire: u32,
        minimum: u32,
    },
    /// Anything else, preserved raw.
    Unknown { rtype: u16, data: Vec<u8> },
}

impl RData {
    /// The record type this data corresponds to (RFC 1035 §3.2.2).
    pub fn rtype(&self) -> QType {
        match self {
            RData::A(_) => QType::A,
            RData::Aaaa(_) => QType::Aaaa,
            RData::Cname(_) => QType::Cname,
            RData::Ptr(_) => QType::Ptr,
            RData::Ns(_) => QType::Ns,
            RData::Mx { .. } => QType::Mx,
            RData::Txt(_) => QType::Txt,
            RData::Soa { .. } => QType::Soa,
            RData::Unknown { rtype, .. } => QType::Other(*rtype),
        }
    }

    /// The address carried, if this is an A/AAAA record — the server side of
    /// the paper's §3.1 (client, server) → FQDN binding.
    pub fn ip(&self) -> Option<std::net::IpAddr> {
        match self {
            RData::A(a) => Some(std::net::IpAddr::V4(*a)),
            RData::Aaaa(a) => Some(std::net::IpAddr::V6(*a)),
            _ => None,
        }
    }
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "A {a}"),
            RData::Aaaa(a) => write!(f, "AAAA {a}"),
            RData::Cname(n) => write!(f, "CNAME {n}"),
            RData::Ptr(n) => write!(f, "PTR {n}"),
            RData::Ns(n) => write!(f, "NS {n}"),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "MX {preference} {exchange}"),
            RData::Txt(strings) => write!(f, "TXT {}", strings.join(" ")),
            RData::Soa { mname, serial, .. } => write!(f, "SOA {mname} serial={serial}"),
            RData::Unknown { rtype, data } => write!(f, "TYPE{rtype} ({} bytes)", data.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtype_mapping() {
        assert_eq!(RData::A(Ipv4Addr::LOCALHOST).rtype(), QType::A);
        assert_eq!(RData::Aaaa(Ipv6Addr::LOCALHOST).rtype(), QType::Aaaa);
        assert_eq!(RData::Cname("a.com".parse().unwrap()).rtype(), QType::Cname);
        assert_eq!(
            RData::Unknown {
                rtype: 99,
                data: vec![]
            }
            .rtype(),
            QType::Other(99)
        );
    }

    #[test]
    fn ip_extraction() {
        assert_eq!(
            RData::A(Ipv4Addr::new(1, 2, 3, 4)).ip(),
            Some("1.2.3.4".parse().unwrap())
        );
        assert_eq!(
            RData::Aaaa("2001:db8::1".parse().unwrap()).ip(),
            Some("2001:db8::1".parse().unwrap())
        );
        assert_eq!(RData::Txt(vec![]).ip(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RData::A(Ipv4Addr::new(1, 2, 3, 4)).to_string(), "A 1.2.3.4");
        assert_eq!(
            RData::Mx {
                preference: 10,
                exchange: "mx.example.com".parse().unwrap()
            }
            .to_string(),
            "MX 10 mx.example.com"
        );
        assert!(RData::Unknown {
            rtype: 250,
            data: vec![1, 2]
        }
        .to_string()
        .contains("TYPE250"));
    }
}
