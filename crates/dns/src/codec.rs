//! RFC 1035 wire codec with name compression.

// Lint L2 forbids default-hasher HashMaps on per-packet paths, and this
// crate cannot depend on `resolver::maps` (the resolver depends on `dns`),
// so the compression table is a BTreeMap: at most a handful of suffixes per
// message, where the tree walk beats hashing the whole suffix string anyway.
use std::collections::BTreeMap;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::{DnsError, Result};
use crate::message::{DnsHeader, DnsMessage, QClass, QType, Question, Rcode, ResourceRecord};
use crate::name::DomainName;
use crate::rdata::RData;

/// Encode a message to wire bytes (RFC 1035 §4 format, suitable for a
/// UDP payload).
pub fn encode(msg: &DnsMessage) -> Result<Vec<u8>> {
    let mut enc = Encoder::new();
    enc.header(msg)?;
    for q in &msg.questions {
        enc.question(q)?;
    }
    for rr in &msg.answers {
        enc.record(rr)?;
    }
    for rr in &msg.authorities {
        enc.record(rr)?;
    }
    for rr in &msg.additionals {
        enc.record(rr)?;
    }
    Ok(enc.buf)
}

/// Decode a message from wire bytes (RFC 1035 §4).
///
/// Telemetry: successful decodes count into
/// `dnh_dns_messages_decoded_total`, failures into
/// `dnh_dns_decode_errors_total` (both stable — every driver decodes each
/// DNS payload the same number of times).
// lint_root(ingest): DNS wire-format decode of untrusted payloads
pub fn decode(buf: &[u8]) -> Result<DnsMessage> {
    match decode_inner(buf) {
        Ok(msg) => {
            dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::DnsMessagesDecoded);
            Ok(msg)
        }
        Err(e) => {
            dnhunter_telemetry::tm_count!(dnhunter_telemetry::Metric::DnsDecodeErrors);
            Err(e)
        }
    }
}

/// Cap on the *pre-allocated* capacity per message section. Header counts
/// are attacker-controlled u16s (RFC 1035 §4.1.1): a hostile 12-byte header
/// can claim 65535 records, so sizing `Vec`s straight from the count turns
/// one datagram into a 4×65535-slot allocation. Records below the cap still
/// decode — the vectors just grow normally past it, bounded by the actual
/// buffer contents.
const MAX_SECTION_PREALLOC: usize = 256;

fn decode_inner(buf: &[u8]) -> Result<DnsMessage> {
    let mut dec = Decoder { buf, pos: 0 };
    let (header, counts) = dec.header()?;
    let mut questions = Vec::with_capacity((counts.0 as usize).min(MAX_SECTION_PREALLOC));
    for _ in 0..counts.0 {
        questions.push(dec.question()?);
    }
    let mut answers = Vec::with_capacity((counts.1 as usize).min(MAX_SECTION_PREALLOC));
    for _ in 0..counts.1 {
        answers.push(dec.record()?);
    }
    let mut authorities = Vec::with_capacity((counts.2 as usize).min(MAX_SECTION_PREALLOC));
    for _ in 0..counts.2 {
        authorities.push(dec.record()?);
    }
    let mut additionals = Vec::with_capacity((counts.3 as usize).min(MAX_SECTION_PREALLOC));
    for _ in 0..counts.3 {
        additionals.push(dec.record()?);
    }
    Ok(DnsMessage {
        header,
        questions,
        answers,
        authorities,
        additionals,
    })
}

/// Encode a message for a TCP transport: two-byte big-endian length prefix
/// followed by the wire message (RFC 1035 §4.2.2).
pub fn encode_tcp(msg: &DnsMessage) -> Result<Vec<u8>> {
    let body = encode(msg)?;
    if body.len() > usize::from(u16::MAX) {
        return Err(DnsError::Malformed(format!(
            "message of {} bytes cannot be framed over TCP",
            body.len()
        )));
    }
    let mut out = Vec::with_capacity(body.len() + 2);
    out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decode every complete length-prefixed message (RFC 1035 §4.2.2) at the
/// start of a TCP payload. Trailing partial data (a message split across segments) is
/// ignored; malformed messages stop the scan.
// allow_lint(L1): pos+1 is readable by the `pos + 2 <= buf.len()` loop guard; start..end is readable because `end > buf.len()` breaks first
// lint_root(ingest): TCP-framed DNS decode of untrusted payloads
pub fn decode_tcp_stream(buf: &[u8]) -> Vec<DnsMessage> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos + 2 <= buf.len() {
        let len = usize::from(u16::from_be_bytes([buf[pos], buf[pos + 1]]));
        let start = pos + 2;
        let end = start + len;
        if len == 0 || end > buf.len() {
            break;
        }
        match decode(&buf[start..end]) {
            Ok(msg) => out.push(msg),
            Err(_) => break,
        }
        pos = end;
    }
    out
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Encoder {
    buf: Vec<u8>,
    /// Suffix (as dotted string) → offset where it was first written.
    compression: BTreeMap<String, u16>,
}

impl Encoder {
    fn new() -> Self {
        Encoder {
            buf: Vec::with_capacity(512),
            compression: BTreeMap::new(),
        }
    }

    fn header(&mut self, msg: &DnsMessage) -> Result<()> {
        let h = &msg.header;
        self.buf.extend_from_slice(&h.id.to_be_bytes());
        let mut b2 = 0u8;
        if h.is_response {
            b2 |= 0x80;
        }
        b2 |= (h.opcode & 0x0f) << 3;
        if h.authoritative {
            b2 |= 0x04;
        }
        if h.truncated {
            b2 |= 0x02;
        }
        if h.recursion_desired {
            b2 |= 0x01;
        }
        let mut b3 = 0u8;
        if h.recursion_available {
            b3 |= 0x80;
        }
        b3 |= h.rcode.value();
        self.buf.push(b2);
        self.buf.push(b3);
        for count in [
            msg.questions.len(),
            msg.answers.len(),
            msg.authorities.len(),
            msg.additionals.len(),
        ] {
            if count > usize::from(u16::MAX) {
                return Err(DnsError::Malformed(format!(
                    "section count {count} too large"
                )));
            }
            self.buf.extend_from_slice(&(count as u16).to_be_bytes());
        }
        Ok(())
    }

    /// Write a name with compression: at every suffix, if that suffix was
    /// written before at a pointer-reachable offset, emit a pointer instead.
    // allow_lint(L1): i ranges over 0..labels.len(), so labels[i] and labels[i..] are in bounds
    fn name(&mut self, name: &DomainName) -> Result<()> {
        let labels = name.labels();
        for i in 0..labels.len() {
            let suffix = labels[i..].join(".");
            if let Some(&off) = self.compression.get(&suffix) {
                let ptr = 0xc000 | off;
                self.buf.extend_from_slice(&ptr.to_be_bytes());
                return Ok(());
            }
            let here = self.buf.len();
            if here <= 0x3fff {
                self.compression.insert(suffix, here as u16);
            }
            let label = labels[i].as_bytes();
            debug_assert!(label.len() <= 63);
            self.buf.push(label.len() as u8);
            self.buf.extend_from_slice(label);
        }
        self.buf.push(0);
        Ok(())
    }

    fn question(&mut self, q: &Question) -> Result<()> {
        self.name(&q.qname)?;
        self.buf.extend_from_slice(&q.qtype.value().to_be_bytes());
        self.buf.extend_from_slice(&q.qclass.value().to_be_bytes());
        Ok(())
    }

    fn record(&mut self, rr: &ResourceRecord) -> Result<()> {
        self.name(&rr.name)?;
        self.buf
            .extend_from_slice(&rr.rdata.rtype().value().to_be_bytes());
        self.buf.extend_from_slice(&rr.class.value().to_be_bytes());
        self.buf.extend_from_slice(&rr.ttl.to_be_bytes());
        // RDLENGTH is written after the fact.
        let len_pos = self.buf.len();
        self.buf.extend_from_slice(&[0, 0]);
        let data_start = self.buf.len();
        match &rr.rdata {
            RData::A(a) => self.buf.extend_from_slice(&a.octets()),
            RData::Aaaa(a) => self.buf.extend_from_slice(&a.octets()),
            RData::Cname(n) | RData::Ptr(n) | RData::Ns(n) => self.name(n)?,
            RData::Mx {
                preference,
                exchange,
            } => {
                self.buf.extend_from_slice(&preference.to_be_bytes());
                self.name(exchange)?;
            }
            RData::Txt(strings) => {
                for s in strings {
                    let b = s.as_bytes();
                    if b.len() > 255 {
                        return Err(DnsError::Malformed("TXT string over 255 bytes".into()));
                    }
                    self.buf.push(b.len() as u8);
                    self.buf.extend_from_slice(b);
                }
            }
            RData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                self.name(mname)?;
                self.name(rname)?;
                for v in [serial, refresh, retry, expire, minimum] {
                    self.buf.extend_from_slice(&v.to_be_bytes());
                }
            }
            RData::Unknown { data, .. } => self.buf.extend_from_slice(data),
        }
        let rdlen = self.buf.len() - data_start;
        if rdlen > usize::from(u16::MAX) {
            return Err(DnsError::Malformed(format!(
                "RDATA length {rdlen} too large"
            )));
        }
        // allow_lint(L1): len_pos points at the two placeholder bytes appended before the RDATA body
        self.buf[len_pos..len_pos + 2].copy_from_slice(&(rdlen as u16).to_be_bytes());
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    // allow_lint(L1): pos..pos+n is readable — the `pos + n > buf.len()` check above returns Malformed first
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(DnsError::Malformed(format!(
                "truncated at offset {} (need {n} more bytes)",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    // allow_lint(L1): take(2) returned a slice of exactly 2 bytes
    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    // allow_lint(L1): take(4) returned a slice of exactly 4 bytes
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn header(&mut self) -> Result<(DnsHeader, (u16, u16, u16, u16))> {
        let id = self.u16()?;
        let b2 = self.u8()?;
        let b3 = self.u8()?;
        let qd = self.u16()?;
        let an = self.u16()?;
        let ns = self.u16()?;
        let ar = self.u16()?;
        Ok((
            DnsHeader {
                id,
                is_response: b2 & 0x80 != 0,
                opcode: (b2 >> 3) & 0x0f,
                authoritative: b2 & 0x04 != 0,
                truncated: b2 & 0x02 != 0,
                recursion_desired: b2 & 0x01 != 0,
                recursion_available: b3 & 0x80 != 0,
                rcode: Rcode::from(b3 & 0x0f),
            },
            (qd, an, ns, ar),
        ))
    }

    /// Decode a (possibly compressed) name starting at the cursor.
    fn name(&mut self) -> Result<DomainName> {
        let mut labels = Vec::new();
        let mut pos = self.pos;
        let mut jumped = false;
        let mut jumps = 0usize;
        let mut total_octets = 1usize;
        loop {
            let len = *self
                .buf
                .get(pos)
                .ok_or_else(|| DnsError::Malformed("name runs off buffer".into()))?
                as usize;
            if len & 0xc0 == 0xc0 {
                // Compression pointer.
                let b2 = *self
                    .buf
                    .get(pos + 1)
                    .ok_or_else(|| DnsError::Malformed("pointer truncated".into()))?
                    as usize;
                let target = ((len & 0x3f) << 8) | b2;
                if target >= pos {
                    return Err(DnsError::BadPointer(format!(
                        "forward pointer {target} at offset {pos}"
                    )));
                }
                jumps += 1;
                if jumps > 32 {
                    return Err(DnsError::BadPointer("pointer chain too long".into()));
                }
                if !jumped {
                    self.pos = pos + 2;
                    jumped = true;
                }
                pos = target;
                continue;
            }
            if len & 0xc0 != 0 {
                return Err(DnsError::Malformed(format!(
                    "reserved label type {len:#04x} at offset {pos}"
                )));
            }
            if len == 0 {
                if !jumped {
                    self.pos = pos + 1;
                }
                break;
            }
            let start = pos + 1;
            let end = start + len;
            if end > self.buf.len() {
                return Err(DnsError::Malformed("label runs off buffer".into()));
            }
            total_octets += len + 1;
            if total_octets > crate::name::MAX_NAME_OCTETS {
                return Err(DnsError::NameTooLong(total_octets));
            }
            // allow_lint(L1): start..end is readable — the `end > buf.len()` check above returns Malformed first
            let raw = &self.buf[start..end];
            let label = String::from_utf8_lossy(raw).to_ascii_lowercase();
            labels.push(label);
            pos = end;
        }
        Ok(DomainName::from_labels_unchecked(labels))
    }

    fn question(&mut self) -> Result<Question> {
        let qname = self.name()?;
        let qtype = QType::from(self.u16()?);
        let qclass = QClass::from(self.u16()?);
        Ok(Question {
            qname,
            qtype,
            qclass,
        })
    }

    fn record(&mut self) -> Result<ResourceRecord> {
        let name = self.name()?;
        let rtype = self.u16()?;
        let class = QClass::from(self.u16()?);
        let ttl = self.u32()?;
        let rdlen = usize::from(self.u16()?);
        let data_end = self.pos + rdlen;
        if data_end > self.buf.len() {
            return Err(DnsError::Malformed("RDATA runs off buffer".into()));
        }
        let rdata = match QType::from(rtype) {
            QType::A => {
                if rdlen != 4 {
                    return Err(DnsError::Malformed(format!("A RDATA length {rdlen}")));
                }
                let b = self.take(4)?;
                // allow_lint(L1): take(4) returned a slice of exactly 4 bytes
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            QType::Aaaa => {
                if rdlen != 16 {
                    return Err(DnsError::Malformed(format!("AAAA RDATA length {rdlen}")));
                }
                let b = self.take(16)?;
                let mut o = [0u8; 16];
                o.copy_from_slice(b);
                RData::Aaaa(Ipv6Addr::from(o))
            }
            QType::Cname => RData::Cname(self.name_bounded(data_end)?),
            QType::Ptr => RData::Ptr(self.name_bounded(data_end)?),
            QType::Ns => RData::Ns(self.name_bounded(data_end)?),
            QType::Mx => {
                let preference = self.u16()?;
                RData::Mx {
                    preference,
                    exchange: self.name_bounded(data_end)?,
                }
            }
            QType::Txt => {
                let mut strings = Vec::new();
                while self.pos < data_end {
                    let len = usize::from(self.u8()?);
                    if self.pos + len > data_end {
                        return Err(DnsError::Malformed("TXT string runs past RDATA".into()));
                    }
                    let raw = self.take(len)?;
                    strings.push(String::from_utf8_lossy(raw).into_owned());
                }
                RData::Txt(strings)
            }
            QType::Soa => {
                let mname = self.name_bounded(data_end)?;
                let rname = self.name_bounded(data_end)?;
                RData::Soa {
                    mname,
                    rname,
                    serial: self.u32()?,
                    refresh: self.u32()?,
                    retry: self.u32()?,
                    expire: self.u32()?,
                    minimum: self.u32()?,
                }
            }
            _ => {
                let data = self.take(rdlen)?.to_vec();
                RData::Unknown { rtype, data }
            }
        };
        if self.pos != data_end {
            return Err(DnsError::Malformed(format!(
                "RDATA length mismatch: ended at {} expected {data_end}",
                self.pos
            )));
        }
        Ok(ResourceRecord {
            name,
            class,
            ttl,
            rdata,
        })
    }

    /// Decode a name that must not advance the cursor past `bound`.
    fn name_bounded(&mut self, bound: usize) -> Result<DomainName> {
        let n = self.name()?;
        if self.pos > bound {
            return Err(DnsError::Malformed("name runs past RDATA bound".into()));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::DnsMessage;

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn a(n: &str, ip: [u8; 4]) -> ResourceRecord {
        ResourceRecord {
            name: name(n),
            class: QClass::In,
            ttl: 120,
            rdata: RData::A(Ipv4Addr::from(ip)),
        }
    }

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::query(0xbeef, name("itunes.apple.com"), QType::A);
        let bytes = encode(&q).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn response_roundtrip_with_compression() {
        let q = DnsMessage::query(1, name("data.flurry.com"), QType::A);
        let r = DnsMessage::answer_to(
            &q,
            vec![
                a("data.flurry.com", [216, 74, 41, 8]),
                a("data.flurry.com", [216, 74, 41, 10]),
                a("data.flurry.com", [216, 74, 41, 12]),
            ],
        );
        let bytes = encode(&r).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, r);
        // Compression must actually shrink repeated names: the name occurs 4
        // times (question + 3 answers); uncompressed it is 17 bytes each.
        let uncompressed_estimate = 12 + 4 * (17 + 4) + 3 * (10 + 4);
        assert!(bytes.len() < uncompressed_estimate);
    }

    #[test]
    fn cname_chain_roundtrip() {
        let q = DnsMessage::query(2, name("www.zynga.com"), QType::A);
        let r = DnsMessage::answer_to(
            &q,
            vec![
                ResourceRecord {
                    name: name("www.zynga.com"),
                    class: QClass::In,
                    ttl: 300,
                    rdata: RData::Cname(name("www.zynga.com.edgekey.net")),
                },
                a("www.zynga.com.edgekey.net", [23, 7, 7, 7]),
            ],
        );
        let bytes = encode(&r).unwrap();
        assert_eq!(decode(&bytes).unwrap(), r);
    }

    #[test]
    fn all_rdata_types_roundtrip() {
        let q = DnsMessage::query(3, name("example.com"), QType::Any);
        let r = DnsMessage::answer_to(
            &q,
            vec![
                a("example.com", [93, 184, 216, 34]),
                ResourceRecord {
                    name: name("example.com"),
                    class: QClass::In,
                    ttl: 60,
                    rdata: RData::Aaaa("2606:2800:220:1::1946".parse().unwrap()),
                },
                ResourceRecord {
                    name: name("example.com"),
                    class: QClass::In,
                    ttl: 60,
                    rdata: RData::Ns(name("ns1.example.com")),
                },
                ResourceRecord {
                    name: name("example.com"),
                    class: QClass::In,
                    ttl: 60,
                    rdata: RData::Mx {
                        preference: 10,
                        exchange: name("mx.example.com"),
                    },
                },
                ResourceRecord {
                    name: name("example.com"),
                    class: QClass::In,
                    ttl: 60,
                    rdata: RData::Txt(vec!["v=spf1 -all".into(), "second".into()]),
                },
                ResourceRecord {
                    name: name("example.com"),
                    class: QClass::In,
                    ttl: 60,
                    rdata: RData::Soa {
                        mname: name("ns1.example.com"),
                        rname: name("hostmaster.example.com"),
                        serial: 20121101,
                        refresh: 7200,
                        retry: 3600,
                        expire: 1209600,
                        minimum: 300,
                    },
                },
                ResourceRecord {
                    name: name("example.com"),
                    class: QClass::In,
                    ttl: 60,
                    rdata: RData::Unknown {
                        rtype: 99,
                        data: vec![1, 2, 3],
                    },
                },
            ],
        );
        let bytes = encode(&r).unwrap();
        assert_eq!(decode(&bytes).unwrap(), r);
    }

    #[test]
    fn ptr_roundtrip() {
        let q = DnsMessage::query(4, name("8.41.74.216.in-addr.arpa"), QType::Ptr);
        let r = DnsMessage::answer_to(
            &q,
            vec![ResourceRecord {
                name: name("8.41.74.216.in-addr.arpa"),
                class: QClass::In,
                ttl: 3600,
                rdata: RData::Ptr(name("srv8.flurry.com")),
            }],
        );
        let bytes = encode(&r).unwrap();
        assert_eq!(decode(&bytes).unwrap(), r);
    }

    #[test]
    fn rejects_truncated_message() {
        let q = DnsMessage::query(5, name("example.com"), QType::A);
        let bytes = encode(&q).unwrap();
        for cut in [1, 5, 11, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_pointer_loop() {
        // Header claiming 1 question, then a name that is a pointer to itself.
        let mut buf = vec![0u8; 12];
        buf[4..6].copy_from_slice(&1u16.to_be_bytes()); // QDCOUNT=1
        buf.extend_from_slice(&[0xc0, 12]); // pointer to offset 12 (itself)
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(decode(&buf), Err(DnsError::BadPointer(_))));
    }

    #[test]
    fn rejects_forward_pointer() {
        let mut buf = vec![0u8; 12];
        buf[4..6].copy_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&[0xc0, 40]); // forward pointer
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(decode(&buf), Err(DnsError::BadPointer(_))));
    }

    #[test]
    fn rejects_bad_rdata_length() {
        let q = DnsMessage::query(6, name("x.com"), QType::A);
        let r = DnsMessage::answer_to(&q, vec![a("x.com", [1, 2, 3, 4])]);
        let mut bytes = encode(&r).unwrap();
        // Find and corrupt the RDLENGTH of the A record (last 6 bytes are
        // rdlen(2) + rdata(4)).
        let p = bytes.len() - 6;
        bytes[p..p + 2].copy_from_slice(&3u16.to_be_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn tcp_framing_roundtrip() {
        let q = DnsMessage::query(0xaaaa, name("big.example.com"), QType::A);
        let answers: Vec<ResourceRecord> = (0..20)
            .map(|i| a("big.example.com", [8, 8, (i >> 8) as u8, i as u8]))
            .collect();
        let r = DnsMessage::answer_to(&q, answers);
        let framed = encode_tcp(&r).unwrap();
        let back = decode_tcp_stream(&framed);
        assert_eq!(back, vec![r.clone()]);
        // Two messages back to back.
        let mut two = framed.clone();
        two.extend_from_slice(&encode_tcp(&q).unwrap());
        assert_eq!(decode_tcp_stream(&two), vec![r, q]);
    }

    #[test]
    fn tcp_stream_ignores_partial_tail() {
        let q = DnsMessage::query(1, name("x.example.com"), QType::A);
        let framed = encode_tcp(&q).unwrap();
        // Full message + truncated second one.
        let mut buf = framed.clone();
        buf.extend_from_slice(&framed[..framed.len() / 2]);
        assert_eq!(decode_tcp_stream(&buf), vec![q]);
        // Garbage yields nothing, no panic.
        assert!(decode_tcp_stream(&[0xff, 0xff, 1, 2, 3]).is_empty());
        assert!(decode_tcp_stream(&[]).is_empty());
    }

    #[test]
    fn decoded_names_are_lowercase() {
        // Encode with mixed case by hand-building labels.
        let mut buf = vec![0u8; 12];
        buf[4..6].copy_from_slice(&1u16.to_be_bytes());
        buf.push(3);
        buf.extend_from_slice(b"WwW");
        buf.push(7);
        buf.extend_from_slice(b"ExAmPlE");
        buf.push(3);
        buf.extend_from_slice(b"CoM");
        buf.push(0);
        buf.extend_from_slice(&[0, 1, 0, 1]);
        let m = decode(&buf).unwrap();
        assert_eq!(m.questions[0].qname.to_string(), "www.example.com");
    }
}
