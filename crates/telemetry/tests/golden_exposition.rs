//! Golden-file pin of the Prometheus text exposition.
//!
//! The exposition is consumed by external scrapers, so its exact byte
//! layout is a public contract: metric order (the catalog order), the
//! `# HELP`/`# TYPE` comments, cumulative `le` buckets, `_sum`/`_count`
//! rows. This test renders a registry populated with fixed values and
//! compares byte-for-byte against `tests/golden/exposition.prom`.
//!
//! To regenerate after an intentional format or catalog change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p dnhunter-telemetry --test golden_exposition
//! ```

use std::sync::Arc;

use dnhunter_telemetry as telemetry;
use telemetry::{Metric, Registry};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("exposition.prom")
}

fn jsonl_golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("snapshot.jsonl")
}

/// A registry with one fixed, nonzero value per metric so the golden file
/// exercises every row the renderer can emit.
fn sample_registry() -> Arc<Registry> {
    let reg = Arc::new(Registry::new());
    for (i, m) in Metric::ALL.iter().copied().enumerate() {
        match m.info().kind {
            telemetry::Kind::Counter => reg.counter_add(m, 100 + i as u64),
            telemetry::Kind::Gauge => reg.gauge_add(m, 7 + i as i64),
            telemetry::Kind::Histogram => {
                reg.observe(m, 0);
                reg.observe(m, 3);
                reg.observe(m, 1 << 10);
                reg.observe(m, 1 << 25); // overflow bucket
            }
        }
    }
    reg
}

#[test]
fn exposition_matches_golden_file() {
    let text = telemetry::prometheus(&sample_registry().snapshot(), true);
    let path = golden_path();
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, &text).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect(
        "golden file missing — run with GOLDEN_UPDATE=1 to create tests/golden/exposition.prom",
    );
    assert_eq!(
        text, golden,
        "Prometheus exposition changed; if intentional, regenerate with GOLDEN_UPDATE=1"
    );
}

/// Same contract for the JSONL renderer: two consecutive snapshot lines
/// (seq 0 and 1) pinned byte-for-byte, including the monotonic `seq`
/// field consumers use to detect dropped or reordered lines.
#[test]
fn jsonl_snapshot_matches_golden_file() {
    let snap = sample_registry().snapshot();
    let text = format!(
        "{}{}",
        telemetry::jsonl(&snap, 0, 1_000_000, true),
        telemetry::jsonl(&snap, 1, 2_000_000, true)
    );
    let path = jsonl_golden_path();
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, &text).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect(
        "golden file missing — run with GOLDEN_UPDATE=1 to create tests/golden/snapshot.jsonl",
    );
    assert_eq!(
        text, golden,
        "JSONL snapshot format changed; if intentional, regenerate with GOLDEN_UPDATE=1"
    );
    // The seq field leads each line and increments across the stream.
    let mut lines = text.lines();
    assert!(lines.next().is_some_and(|l| l.starts_with("{\"seq\":0,")));
    assert!(lines.next().is_some_and(|l| l.starts_with("{\"seq\":1,")));
}

/// Minimal Prometheus text-format parser: enough to prove a scraper can
/// consume the exposition (comments well-formed, every sample line is
/// `name[{labels}] integer`, TYPE declarations precede their samples).
#[test]
fn exposition_parses_as_prometheus_text() {
    let text = telemetry::prometheus(&sample_registry().snapshot(), true);
    let mut typed: Option<(String, String)> = None;
    let mut samples = 0usize;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            assert!(
                rest.split_once(' ').is_some(),
                "HELP without text: {line:?}"
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ').expect("TYPE has name and kind");
            assert!(
                matches!(ty, "counter" | "gauge" | "histogram"),
                "unknown TYPE {ty:?}"
            );
            typed = Some((name.to_string(), ty.to_string()));
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line:?}");
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<i64>().is_ok(),
            "non-integer sample value: {line:?}"
        );
        let name = series.split('{').next().unwrap_or(series);
        let (base, ty) = typed.as_ref().expect("sample before any TYPE");
        // Histogram samples append _bucket/_sum/_count to the base name.
        let belongs = match ty.as_str() {
            "histogram" => {
                name == format!("{base}_bucket")
                    || name == format!("{base}_sum")
                    || name == format!("{base}_count")
            }
            _ => name == *base,
        };
        assert!(belongs, "sample {name:?} outside its TYPE block ({base})");
        if ty == "counter" {
            assert!(
                base.ends_with("_total"),
                "counter {base:?} must end in _total"
            );
        }
        if let Some(labels) = series.strip_prefix(format!("{name}{{").as_str()) {
            let labels = labels.strip_suffix('}').expect("closing brace");
            for pair in labels.split(',') {
                let (k, v) = pair.split_once('=').expect("label k=v");
                assert!(!k.is_empty() && v.starts_with('"') && v.ends_with('"'));
            }
        }
        samples += 1;
    }
    // Every catalog metric contributed at least one sample row.
    assert!(samples >= Metric::COUNT, "only {samples} sample rows");
}

/// Cross-bucket invariant a scraper relies on: `le` buckets are cumulative
/// and the `+Inf` bucket equals `_count`.
#[test]
fn histogram_buckets_are_cumulative() {
    let text = telemetry::prometheus(&sample_registry().snapshot(), true);
    let mut last: Option<u64> = None;
    let mut inf: Option<u64> = None;
    let mut count: Option<u64> = None;
    for line in text.lines() {
        if line.starts_with("dnh_pipeline_ring_occupancy_bucket") {
            let v: u64 = line
                .rsplit_once(' ')
                .and_then(|(_, v)| v.parse().ok())
                .expect("bucket value");
            if let Some(prev) = last {
                assert!(v >= prev, "buckets must be cumulative: {line:?}");
            }
            last = Some(v);
            if line.contains("+Inf") {
                inf = Some(v);
            }
        } else if let Some(v) = line.strip_prefix("dnh_pipeline_ring_occupancy_count ") {
            count = v.parse().ok();
        }
    }
    assert_eq!(inf.expect("+Inf bucket"), count.expect("_count row"));
}
