//! The metrics registry: one relaxed-atomic cell per metric.
//!
//! A [`Registry`] is a flat `[AtomicU64; Metric::COUNT]` plus a few
//! histogram cell blocks. Updates are single `fetch_add(Relaxed)` calls —
//! no locks, no allocation, safe from any thread — and a [`Snapshot`]
//! is a plain-value copy suitable for rendering, diffing, and merging.
//!
//! Merging is what makes parallel runs deterministic: every stable-class
//! update is additive (counters, ±delta gauges, histogram cells), so the
//! element-wise sum of per-shard registries equals the sequential run's
//! registry regardless of scheduling (DESIGN.md "Telemetry and live
//! monitoring").

use std::sync::atomic::{AtomicU64, Ordering};

use crate::log2hist::{log2_bucket_index, log2_bucket_le};
use crate::metric::{Metric, HIST_COUNT, HIST_METRICS};

/// Number of finite log2 buckets: upper bounds `2^0 ..= 2^(BUCKETS-1)`.
pub const BUCKETS: usize = 20;
/// Finite buckets plus the overflow (`+Inf`) cell.
pub const BUCKET_CELLS: usize = BUCKETS + 1;

/// Bucket slot for an observed value: `v <= 2^i` lands in slot `i`,
/// anything above `2^(BUCKETS-1)` in the overflow cell.
#[inline]
fn bucket_index(v: u64) -> usize {
    log2_bucket_index(v, BUCKETS)
}

/// Inclusive upper bound of finite bucket `i` (the Prometheus `le` label).
#[inline]
pub fn bucket_le(i: usize) -> u64 {
    log2_bucket_le(i)
}

/// Cells backing one histogram metric.
#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; BUCKET_CELLS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        if let Some(cell) = self.buckets.get(bucket_index(v)) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| {
                self.buckets.get(i).map_or(0, |c| c.load(Ordering::Relaxed))
            }),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket (non-cumulative) counts; last cell is overflow.
    pub buckets: [u64; BUCKET_CELLS],
    /// Sum of observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKET_CELLS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistSnapshot {
    fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.count = self.count.wrapping_add(other.count);
    }
}

/// The live metric cells. Cheap to create (a few hundred zeroed words);
/// one per sniffer run, plus one per pipeline worker.
#[derive(Debug)]
pub struct Registry {
    scalars: [AtomicU64; Metric::COUNT],
    hists: [HistCells; HIST_COUNT],
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A registry with every cell zero.
    pub fn new() -> Self {
        Registry {
            scalars: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| HistCells::new()),
        }
    }

    /// Add `n` to a counter cell (relaxed; hot-path safe).
    #[inline]
    pub fn counter_add(&self, m: Metric, n: u64) {
        if let Some(cell) = self.scalars.get(m.idx()) {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Apply a signed delta to a gauge cell. The cell stores the running
    /// sum two's-complement, so concurrent ± updates commute.
    #[inline]
    pub fn gauge_add(&self, m: Metric, delta: i64) {
        if let Some(cell) = self.scalars.get(m.idx()) {
            cell.fetch_add(delta as u64, Ordering::Relaxed);
        }
    }

    /// Record one observation into a histogram metric; no-op for
    /// non-histogram metrics.
    #[inline]
    pub fn observe(&self, m: Metric, v: u64) {
        if let Some(h) = m.hist_idx().and_then(|i| self.hists.get(i)) {
            h.record(v);
        }
    }

    /// Point-in-time copy of every cell.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            scalars: std::array::from_fn(|i| {
                self.scalars.get(i).map_or(0, |c| c.load(Ordering::Relaxed))
            }),
            hists: std::array::from_fn(|i| {
                self.hists
                    .get(i)
                    .map_or_else(HistSnapshot::default, HistCells::snapshot)
            }),
        }
    }

    /// Fold another registry's cells into this one (element-wise add).
    /// Used by `ParallelSniffer::finish()` after joining its workers, so
    /// the happens-before edge of the join makes the relaxed reads exact.
    pub fn merge_from(&self, other: &Registry) {
        for (dst, src) in self.scalars.iter().zip(other.scalars.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        for (dst, src) in self.hists.iter().zip(other.hists.iter()) {
            for (d, s) in dst.buckets.iter().zip(src.buckets.iter()) {
                let v = s.load(Ordering::Relaxed);
                if v != 0 {
                    d.fetch_add(v, Ordering::Relaxed);
                }
            }
            dst.sum
                .fetch_add(src.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            dst.count
                .fetch_add(src.count.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// Plain-value copy of a [`Registry`]; the unit exporters consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    scalars: [u64; Metric::COUNT],
    hists: [HistSnapshot; HIST_COUNT],
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            scalars: [0; Metric::COUNT],
            hists: [HistSnapshot::default(); HIST_COUNT],
        }
    }
}

impl Snapshot {
    /// Raw cell value (counter sum, or a gauge's two's-complement level).
    #[inline]
    pub fn get(&self, m: Metric) -> u64 {
        self.scalars.get(m.idx()).copied().unwrap_or_default()
    }

    /// Gauge level as a signed value.
    #[inline]
    pub fn gauge(&self, m: Metric) -> i64 {
        self.get(m) as i64
    }

    /// Histogram cells for a histogram metric.
    pub fn hist(&self, m: Metric) -> Option<&HistSnapshot> {
        m.hist_idx().and_then(|i| self.hists.get(i))
    }

    /// Element-wise sum with another snapshot (live-mode aggregation of
    /// per-worker registries before the final merge).
    pub fn merge(&mut self, other: &Snapshot) {
        for (a, b) in self.scalars.iter_mut().zip(other.scalars.iter()) {
            *a = a.wrapping_add(*b);
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Histogram metrics present in this snapshot, with their cells, in
    /// catalog order.
    pub fn histograms(&self) -> impl Iterator<Item = (Metric, &HistSnapshot)> {
        HIST_METRICS.iter().copied().zip(self.hists.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 19), 19);
        assert_eq!(bucket_index((1 << 19) + 1), BUCKETS);
        assert_eq!(bucket_index(u64::MAX), BUCKETS);
        assert_eq!(bucket_le(0), 1);
        assert_eq!(bucket_le(19), 1 << 19);
    }

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let r = Registry::new();
        r.counter_add(Metric::IngestFrames, 3);
        r.counter_add(Metric::IngestFrames, 2);
        r.gauge_add(Metric::FlowTableSize, 5);
        r.gauge_add(Metric::FlowTableSize, -2);
        r.observe(Metric::RingOccupancy, 0);
        r.observe(Metric::RingOccupancy, 3);
        r.observe(Metric::RingOccupancy, 1 << 30);
        // observe() on a non-histogram metric is a no-op, not a crash.
        r.observe(Metric::IngestFrames, 9);

        let s = r.snapshot();
        assert_eq!(s.get(Metric::IngestFrames), 5);
        assert_eq!(s.gauge(Metric::FlowTableSize), 3);
        let h = s.hist(Metric::RingOccupancy).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 3 + (1 << 30));
        assert_eq!(h.buckets[0], 1); // v = 0
        assert_eq!(h.buckets[2], 1); // v = 3
        assert_eq!(h.buckets[BUCKETS], 1); // overflow
        assert!(s.hist(Metric::IngestFrames).is_none());
    }

    #[test]
    fn gauge_can_go_negative() {
        let r = Registry::new();
        r.gauge_add(Metric::FlowTableSize, -4);
        assert_eq!(r.snapshot().gauge(Metric::FlowTableSize), -4);
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter_add(Metric::TagHits, 1);
        b.counter_add(Metric::TagHits, 2);
        b.gauge_add(Metric::ClistOccupancy, 7);
        a.observe(Metric::BatchItems, 10);
        b.observe(Metric::BatchItems, 100);
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.get(Metric::TagHits), 3);
        assert_eq!(s.gauge(Metric::ClistOccupancy), 7);
        let h = s.hist(Metric::BatchItems).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 110);

        // Snapshot::merge agrees with Registry::merge_from.
        let sa = Registry::new();
        sa.counter_add(Metric::TagHits, 1);
        sa.observe(Metric::BatchItems, 10);
        let sb = Registry::new();
        sb.counter_add(Metric::TagHits, 2);
        sb.gauge_add(Metric::ClistOccupancy, 7);
        sb.observe(Metric::BatchItems, 100);
        let mut snap = sa.snapshot();
        snap.merge(&sb.snapshot());
        assert_eq!(snap, s);
    }
}
