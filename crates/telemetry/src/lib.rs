//! `dnhunter-telemetry` — always-on observability for the ingest pipeline.
//!
//! The paper's operational claim is that DN-Hunter runs *live* at an ISP
//! vantage point; a production deployment therefore needs to see drop
//! rates, table occupancy, and tag hit ratios while the sniffer runs, not
//! only in the post-hoc `SnifferReport`. This crate provides that layer
//! with three hard constraints:
//!
//! 1. **Hot-path safe.** An update is a thread-local load, a branch, and
//!    (when enabled) one relaxed `fetch_add`. No locks, no allocation, no
//!    formatting. When no registry is bound the branch falls through and
//!    the cost is a few nanoseconds — cheap enough to leave compiled in.
//! 2. **Deterministic.** Snapshots are scheduled on *packet* timestamps
//!    ([`SnapshotEmitter`]), and metrics are split into [`Class::Stable`]
//!    (a pure function of the input trace; identical between sequential
//!    and merged parallel runs) and [`Class::Runtime`] (timings, queue
//!    depths). Default exposition renders only stable metrics, so final
//!    snapshots are byte-identical at any worker count.
//! 3. **Zero dependencies.** Plain `std`; the Prometheus and JSONL
//!    renderers are hand-rolled over static names and integers.
//!
//! Instrumentation sites use the macros:
//!
//! ```
//! use dnhunter_telemetry::{self as telemetry, Metric, Registry};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let _guard = telemetry::bind(registry.clone());
//! dnhunter_telemetry::tm_count!(Metric::IngestFrames);
//! dnhunter_telemetry::tm_gauge!(Metric::FlowTableSize, 1);
//! dnhunter_telemetry::tm_observe!(Metric::BatchItems, 128);
//! assert_eq!(registry.snapshot().get(Metric::IngestFrames), 1);
//! ```

#![forbid(unsafe_code)]

mod emitter;
mod export;
mod flight;
mod log2hist;
mod metric;
mod recorder;
mod registry;
mod trace;
mod trace_export;

pub use emitter::SnapshotEmitter;
pub use export::{jsonl, prometheus};
pub use flight::{
    fault_dump_now, install_fault_dump, trace_bind, trace_enabled, trace_note, trace_note_wall,
    trace_set, FlightRecorder, LaneKind, LaneSnapshot, TraceBindGuard, TraceRecord, TraceSet,
    TRACE_RING_CAP,
};
pub use log2hist::{log2_bucket_index, log2_bucket_le, HistUnderflow, Log2Hist};
pub use metric::{Class, Kind, Metric, MetricInfo, HIST_COUNT, HIST_METRICS};
pub use recorder::{
    bind, counter_add, gauge_add, is_bound, merge_into_bound, observe, span, BindGuard, Span,
};
pub use registry::{bucket_le, HistSnapshot, Registry, Snapshot, BUCKETS, BUCKET_CELLS};
pub use trace::{ArgKind, TraceClass, TraceEvent, TraceEventInfo, TraceKeyHasher};
pub use trace_export::{chrome_trace, explain, trace_jsonl, ExplainTarget};

/// Increment a counter: `tm_count!(Metric::X)` or `tm_count!(Metric::X, n)`.
#[macro_export]
macro_rules! tm_count {
    ($m:expr) => {
        $crate::counter_add($m, 1)
    };
    ($m:expr, $n:expr) => {
        $crate::counter_add($m, $n)
    };
}

/// Apply a signed delta to a gauge: `tm_gauge!(Metric::X, -1)`.
#[macro_export]
macro_rules! tm_gauge {
    ($m:expr, $delta:expr) => {
        $crate::gauge_add($m, $delta)
    };
}

/// Record a histogram observation: `tm_observe!(Metric::X, value)`.
#[macro_export]
macro_rules! tm_observe {
    ($m:expr, $v:expr) => {
        $crate::observe($m, $v)
    };
}

/// Time a scope into a nanosecond counter: `let _t = tm_span!(Metric::X);`.
#[macro_export]
macro_rules! tm_span {
    ($m:expr) => {
        $crate::span($m)
    };
}

/// Record a Stable-class flight-recorder event with an explicit packet
/// timestamp: `tm_trace!(TraceEvent::X, seq, ts, a, b)`. No-op when no
/// recorder is bound; lint L10 checks every site against the catalog.
#[macro_export]
macro_rules! tm_trace {
    ($e:expr, $seq:expr, $ts:expr, $a:expr, $b:expr) => {
        $crate::trace_note($e, $seq, $ts, $a, $b)
    };
}

/// Record a Runtime-class flight-recorder event stamped with wall-clock
/// microseconds: `tm_trace_wall!(TraceEvent::X, seq, a, b)`.
#[macro_export]
macro_rules! tm_trace_wall {
    ($e:expr, $seq:expr, $a:expr, $b:expr) => {
        $crate::trace_note_wall($e, $seq, $a, $b)
    };
}
