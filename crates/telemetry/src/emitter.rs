//! Packet-clock snapshot scheduling.
//!
//! A live deployment would snapshot on wall time; replaying a pcap on
//! wall time would make output depend on host speed. [`SnapshotEmitter`]
//! instead advances on the *packet* timestamps already flowing through
//! the sniffer: the first observed timestamp arms the emitter, and every
//! `interval` of trace time after it one snapshot falls due. Replays of
//! the same trace therefore emit the same number of snapshots at the
//! same trace times on any machine — and on a live capture the packet
//! clock *is* wall time, so the same code serves both.

/// Decides when a periodic snapshot falls due, driven by packet
/// timestamps (µs). Pure state machine: no wall clock, no I/O.
#[derive(Debug, Clone)]
pub struct SnapshotEmitter {
    interval_micros: u64,
    next_due: Option<u64>,
    /// Set when the schedule saturated at `u64::MAX`; nothing is due
    /// after that (timestamps cannot advance past it).
    exhausted: bool,
    /// Snapshots this emitter has declared due — the monotonic `seq`
    /// stamped into JSONL lines so consumers can detect gaps.
    emitted: u64,
}

impl SnapshotEmitter {
    /// An emitter firing every `interval_micros` of trace time
    /// (clamped to at least 1µs).
    pub fn new(interval_micros: u64) -> Self {
        SnapshotEmitter {
            interval_micros: interval_micros.max(1),
            next_due: None,
            exhausted: false,
            emitted: 0,
        }
    }

    /// Feed the next packet timestamp; `true` means one snapshot is due.
    ///
    /// The first call arms the emitter (no snapshot at trace start —
    /// every cell would be zero). A gap spanning several intervals
    /// yields a single `true` and the schedule realigns past `ts`, so a
    /// quiet trace region cannot produce a burst of identical
    /// snapshots.
    pub fn poll(&mut self, ts_micros: u64) -> bool {
        if self.exhausted {
            return false;
        }
        match self.next_due {
            None => {
                self.next_due = Some(ts_micros.saturating_add(self.interval_micros));
                false
            }
            Some(due) if ts_micros >= due => {
                let mut next = due;
                while next <= ts_micros {
                    let stepped = next.saturating_add(self.interval_micros);
                    if stepped == next {
                        // Saturated at u64::MAX: never due again.
                        self.exhausted = true;
                        break;
                    }
                    next = stepped;
                }
                self.next_due = Some(next);
                self.emitted = self.emitted.saturating_add(1);
                true
            }
            Some(_) => false,
        }
    }

    /// Trace timestamp of the next due snapshot (`None` until armed).
    pub fn next_due_micros(&self) -> Option<u64> {
        self.next_due
    }

    /// Snapshots declared due so far. The line just emitted after a
    /// `true` poll carries `seq = emitted() - 1`; a final shutdown
    /// snapshot continues the stream at `emitted()`.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_every_interval_of_trace_time() {
        let mut e = SnapshotEmitter::new(10);
        assert!(!e.poll(100)); // arms at 110
        assert!(!e.poll(105));
        assert_eq!(e.emitted(), 0);
        assert!(e.poll(110));
        assert_eq!(e.emitted(), 1);
        assert!(!e.poll(115));
        assert!(e.poll(121));
        assert_eq!(e.next_due_micros(), Some(130));
        assert_eq!(e.emitted(), 2);
    }

    #[test]
    fn long_gap_yields_single_emission() {
        let mut e = SnapshotEmitter::new(10);
        assert!(!e.poll(0));
        assert!(e.poll(1_000)); // ~100 intervals late: one snapshot
        assert!(!e.poll(1_001));
        assert!(e.poll(1_010));
    }

    #[test]
    fn zero_interval_and_saturation_are_safe() {
        let mut e = SnapshotEmitter::new(0); // clamped to 1
        assert!(!e.poll(5));
        assert!(e.poll(6));
        let mut e = SnapshotEmitter::new(u64::MAX);
        assert!(!e.poll(10));
        assert!(e.poll(u64::MAX)); // due saturates; fires once, then never
        assert!(!e.poll(u64::MAX));
    }
}
