//! The static trace-event catalog — every flight-recorder event the
//! pipeline can emit, declared in one place with the same discipline as
//! the [`metrics!`](crate::metric) catalog.
//!
//! A trace record is four machine words: a catalog id + frame sequence
//! number, a timestamp, and two opaque `u64` arguments. What the
//! arguments *mean* is part of the catalog entry ([`ArgKind`]): a plain
//! value, an FQDN provenance key, or a server provenance key. Provenance
//! keys are FNV-1a hashes ([`TraceKeyHasher`]) computed by the owning
//! crates (`dnhunter-dns` hashes names, `dnhunter-flow` hashes server
//! endpoints) so the explain renderer can join DNS, resolver, and flow
//! events for one target without ever storing a string on the record
//! path.
//!
//! Events are classed like metrics:
//!
//! * [`TraceClass::Stable`] — a pure function of the input trace
//!   (parse faults, DNS responses, resolver and flow decisions). Stable
//!   events carry *packet* timestamps and their multiset is identical
//!   across worker counts, which is what makes `--explain` output
//!   golden-testable.
//! * [`TraceClass::Runtime`] — scheduling events (ring batches, routing
//!   token hand-offs, worker drains) stamped with wall-clock
//!   microseconds; these exist for the Chrome-trace profile view and are
//!   never part of deterministic output.
//!
//! Lint L10 (`cargo xtask lint`) keeps this catalog honest: every
//! `tm_trace!`/`tm_trace_wall!` site must name a cataloged event, every
//! cataloged event must have at least one site, and record lines must be
//! free of allocation, locking, and formatting.

/// Determinism class of a trace event (mirrors [`crate::Class`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClass {
    /// Pure function of the input trace; packet-timestamped.
    Stable,
    /// Scheduling/timing event; wall-clock-timestamped.
    Runtime,
}

/// What a record's `a`/`b` argument holds — the join key the explain
/// renderer matches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgKind {
    /// FNV-1a key of a fully-qualified domain name.
    FqdnKey,
    /// FNV-1a key of a `(server IP, server port)` endpoint.
    ServerKey,
    /// A plain integer (count, byte total, fault code, lane index...).
    Value,
}

/// Static metadata for one cataloged trace event.
#[derive(Debug, Clone, Copy)]
pub struct TraceEventInfo {
    /// Short snake_case event name used in every rendered form.
    pub name: &'static str,
    /// Determinism class (see module docs).
    pub class: TraceClass,
    /// Kind of the `a` argument.
    pub a_kind: ArgKind,
    /// Rendered label of the `a` argument.
    pub a_label: &'static str,
    /// Kind of the `b` argument.
    pub b_kind: ArgKind,
    /// Rendered label of the `b` argument.
    pub b_label: &'static str,
    /// One-line description.
    pub help: &'static str,
}

macro_rules! trace_events {
    ($($variant:ident => $name:literal, $class:ident,
        $akind:ident($alabel:literal), $bkind:ident($blabel:literal),
        $help:literal;)+) => {
        /// A cataloged trace event. See the module docs for the catalog
        /// discipline; the numeric discriminant is the on-ring event id.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(u16)]
        pub enum TraceEvent {
            $(#[doc = $help] $variant,)+
        }

        impl TraceEvent {
            /// Number of cataloged events.
            pub const COUNT: usize = [$(TraceEvent::$variant,)+].len();

            /// Every event, in catalog order.
            pub const ALL: [TraceEvent; Self::COUNT] = [$(TraceEvent::$variant,)+];

            /// Static metadata for this event.
            pub const fn info(self) -> TraceEventInfo {
                match self {
                    $(TraceEvent::$variant => TraceEventInfo {
                        name: $name,
                        class: TraceClass::$class,
                        a_kind: ArgKind::$akind,
                        a_label: $alabel,
                        b_kind: ArgKind::$bkind,
                        b_label: $blabel,
                        help: $help,
                    },)+
                }
            }

            /// Recover an event from its on-ring id; `None` for ids the
            /// running catalog does not know (stale dump, corrupt ring).
            pub fn from_id(id: u16) -> Option<TraceEvent> {
                Self::ALL.get(id as usize).copied()
            }
        }
    };
}

trace_events! {
    // -- Stable events: pure functions of the input trace ----------------
    FrameParse => "frame_parse", Stable,
        Value("fault"), Value("wire_bytes"),
        "A frame failed to parse; `fault` is the FrameFault discriminant.";
    DnsResponse => "dns_response", Stable,
        FqdnKey("fqdn"), Value("answers"),
        "A DNS response for `fqdn` carried `answers` A/AAAA records.";
    ResolverBind => "resolver_bind", Stable,
        FqdnKey("fqdn"), Value("bound"),
        "The resolver bound `bound` new (client,server) entries to `fqdn`.";
    ResolverEvict => "resolver_evict", Stable,
        FqdnKey("fqdn"), Value("evicted"),
        "Inserting `fqdn` evicted `evicted` older Clist entries.";
    ResolverHit => "resolver_hit", Stable,
        ServerKey("server"), FqdnKey("fqdn"),
        "A flow to `server` matched the Clist entry for `fqdn`.";
    ResolverMiss => "resolver_miss", Stable,
        ServerKey("server"), Value("warmup"),
        "A flow to `server` found no Clist entry (`warmup`=1 inside warm-up).";
    FlowOpen => "flow_open", Stable,
        ServerKey("server"), Value("port"),
        "A new flow opened towards `server` on destination `port`.";
    FlowVerdict => "flow_verdict", Stable,
        ServerKey("server"), Value("protocol"),
        "DPI classified a flow to `server`; `protocol` is the AppProtocol id.";
    FlowFinish => "flow_finish", Stable,
        ServerKey("server"), Value("bytes"),
        "A flow to `server` finished having carried `bytes` payload bytes.";
    SinkFlow => "sink_flow", Stable,
        ServerKey("server"), Value("bytes"),
        "Streaming analytics consumed a finished flow to `server`.";
    // -- Runtime events: scheduling, for the Chrome-trace view -----------
    RingSendBatch => "ring_send_batch", Runtime,
        Value("shard"), Value("batches"),
        "A dispatcher flushed `batches` outbox batches to worker `shard`.";
    RingRecvBatch => "ring_recv_batch", Runtime,
        Value("ring"), Value("batches"),
        "A worker drained `batches` batches from inbound ring `ring`.";
    TokenAcquire => "token_acquire", Runtime,
        Value("dispatcher"), Value("seq"),
        "A dispatcher received the routing token (serialized phase start).";
    TokenRelease => "token_release", Runtime,
        Value("dispatcher"), Value("held_nanos"),
        "A dispatcher passed the routing token on after `held_nanos`.";
    WorkerDrain => "worker_drain", Runtime,
        Value("items"), Value("busy_nanos"),
        "A worker processed `items` segments in one drain sweep.";
}

/// Incremental FNV-1a/64 over raw bytes — the provenance-key hash.
///
/// Lives here (the zero-dependency crate every other crate can see) so
/// `dnhunter-dns` can key domain names and `dnhunter-flow` can key server
/// endpoints with the *same* function the CLI uses to hash an `--explain`
/// target, without any of them allocating on the record path.
#[derive(Debug, Clone)]
pub struct TraceKeyHasher(u64);

impl TraceKeyHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    /// Start a fresh hash.
    pub const fn new() -> Self {
        TraceKeyHasher(Self::OFFSET)
    }

    /// Fold `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Fold a single byte into the hash.
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    /// The finished 64-bit key.
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for TraceKeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_consistent() {
        let mut seen = std::collections::HashSet::new();
        for (i, ev) in TraceEvent::ALL.iter().enumerate() {
            let info = ev.info();
            assert!(!info.name.is_empty());
            assert!(
                info.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '_'),
                "{} must be snake_case",
                info.name
            );
            assert!(seen.insert(info.name), "duplicate name {}", info.name);
            assert!(!info.help.is_empty());
            assert_eq!(TraceEvent::from_id(i as u16), Some(*ev));
        }
        assert_eq!(TraceEvent::from_id(TraceEvent::COUNT as u16), None);
    }

    #[test]
    fn stable_events_precede_runtime_events() {
        // The explain renderer relies on discriminant order as a stable
        // tie-break; keep the catalog grouped Stable-first so related
        // provenance events sort together.
        let first_runtime = TraceEvent::ALL
            .iter()
            .position(|e| e.info().class == TraceClass::Runtime)
            .unwrap_or(TraceEvent::COUNT);
        for ev in &TraceEvent::ALL[first_runtime..] {
            assert_eq!(ev.info().class, TraceClass::Runtime);
        }
    }

    #[test]
    fn key_hasher_matches_reference_vector() {
        // FNV-1a("a") from the published reference vectors.
        let mut h = TraceKeyHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h2 = TraceKeyHasher::new();
        h2.write_u8(b'a');
        assert_eq!(h2.finish(), h.finish());
    }
}
