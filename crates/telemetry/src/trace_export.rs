//! Flight-recorder consumers: Chrome `trace_event` JSON, post-mortem
//! JSONL dumps, and the deterministic `--explain` provenance renderer.
//!
//! All three are hand-rolled string renderers over the decoded
//! [`LaneSnapshot`]s — the zero-dependency rule of this crate applies to
//! exports too. None of this runs on the record path; allocation and
//! formatting are fine here.
//!
//! * [`chrome_trace`] targets `chrome://tracing` / Perfetto: one thread
//!   lane per driver/dispatcher/worker plus a synthetic **token** lane
//!   rebuilt from `token_acquire`/`token_release` pairs, so the
//!   serialized routing phase shows up as back-to-back slices.
//! * [`trace_jsonl`] is the dump-on-fault format: self-describing, one
//!   JSON object per line, decodable without the catalog at hand.
//! * [`explain`] filters Stable-class events down to the causal chain
//!   for one FQDN or server endpoint and renders it sorted on
//!   `(packet ts, frame seq, catalog id, a, b)` — a pure function of the
//!   Stable event multiset, hence byte-identical at any worker count and
//!   golden-file testable.

use std::fmt::Write as _;

use crate::flight::{LaneKind, TraceRecord, TraceSet};
use crate::trace::{ArgKind, TraceClass, TraceEvent};

/// Chrome-trace pid hosting wall-clock (Runtime) lanes.
const PID_WALL: u32 = 1;
/// Chrome-trace pid hosting packet-clock (Stable) lanes.
const PID_TRACE: u32 = 2;
/// Synthetic lane showing who holds the routing token.
const TID_TOKEN: u32 = 2;

fn lane_tid(kind: LaneKind, index: u16) -> u32 {
    match kind {
        LaneKind::Driver => 1,
        LaneKind::Dispatcher => 10 + u32::from(index),
        LaneKind::Worker => 100 + u32::from(index),
    }
}

fn push_meta(out: &mut String, pid: u32, tid: u32, what: &str, name: &str) {
    let _ = writeln!(
        out,
        "{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{name}\"}}}},"
    );
}

fn arg_json(kind: ArgKind, v: u64) -> String {
    match kind {
        ArgKind::Value => format!("{v}"),
        ArgKind::FqdnKey | ArgKind::ServerKey => format!("\"0x{v:016x}\""),
    }
}

fn push_instant(out: &mut String, pid: u32, tid: u32, ts: u64, r: &TraceRecord) {
    let info = r.event.info();
    let _ = writeln!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\
         \"tid\":{tid},\"args\":{{\"seq\":{},\"{}\":{},\"{}\":{}}}}},",
        info.name,
        r.seq,
        info.a_label,
        arg_json(info.a_kind, r.a),
        info.b_label,
        arg_json(info.b_kind, r.b),
    );
}

fn push_slice(
    out: &mut String,
    pid: u32,
    tid: u32,
    name: &str,
    ts: u64,
    dur: u64,
    args: &[(&str, u64)],
) {
    let _ = write!(out, "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":{{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    }
    out.push_str("}},\n");
}

/// Render the whole set as Chrome `trace_event` JSON (the object form,
/// `{"traceEvents":[...]}`), loadable in `chrome://tracing` or Perfetto.
pub fn chrome_trace(set: &TraceSet) -> String {
    let lanes = set.lanes();
    let mut out = String::from("{\"traceEvents\":[\n");
    push_meta(
        &mut out,
        PID_WALL,
        0,
        "process_name",
        "dn-hunter wall clock",
    );
    push_meta(
        &mut out,
        PID_TRACE,
        0,
        "process_name",
        "dn-hunter packet clock",
    );
    push_meta(
        &mut out,
        PID_WALL,
        TID_TOKEN,
        "thread_name",
        "routing token",
    );
    for lane in &lanes {
        let tid = lane_tid(lane.kind, lane.index);
        let mut name = String::new();
        let _ = write!(name, "{} {}", lane.kind.name(), lane.index);
        push_meta(&mut out, PID_WALL, tid, "thread_name", &name);
        push_meta(&mut out, PID_TRACE, tid, "thread_name", &name);
    }
    for lane in &lanes {
        let tid = lane_tid(lane.kind, lane.index);
        // Pair token acquire/release in lane order for the token lane.
        let mut acquired: Option<&TraceRecord> = None;
        for r in &lane.records {
            match r.event.info().class {
                TraceClass::Stable => push_instant(&mut out, PID_TRACE, tid, r.ts, r),
                TraceClass::Runtime => match r.event {
                    TraceEvent::TokenAcquire => acquired = Some(r),
                    TraceEvent::TokenRelease => {
                        if let Some(acq) = acquired.take() {
                            let dur = r.ts.saturating_sub(acq.ts);
                            let mut name = String::new();
                            let _ = write!(name, "token d{}", r.a);
                            push_slice(
                                &mut out,
                                PID_WALL,
                                TID_TOKEN,
                                &name,
                                acq.ts,
                                dur,
                                &[("dispatcher", r.a), ("held_nanos", r.b)],
                            );
                            push_slice(
                                &mut out,
                                PID_WALL,
                                tid,
                                "route",
                                acq.ts,
                                dur,
                                &[("dispatcher", r.a)],
                            );
                        }
                    }
                    TraceEvent::WorkerDrain => {
                        let dur_us = r.b / 1_000;
                        push_slice(
                            &mut out,
                            PID_WALL,
                            tid,
                            "drain",
                            r.ts.saturating_sub(dur_us),
                            dur_us,
                            &[("items", r.a), ("busy_nanos", r.b)],
                        );
                    }
                    _ => push_instant(&mut out, PID_WALL, tid, r.ts, r),
                },
            }
        }
    }
    // Trailing metadata entry avoids dangling-comma special-casing.
    let _ = writeln!(
        out,
        "{{\"name\":\"trace_events_dropped\",\"ph\":\"M\",\"pid\":{PID_WALL},\"tid\":0,\
         \"args\":{{\"dropped\":{}}}}}",
        set.dropped_total()
    );
    out.push_str("]}\n");
    out
}

fn class_name(c: TraceClass) -> &'static str {
    match c {
        TraceClass::Stable => "stable",
        TraceClass::Runtime => "runtime",
    }
}

/// Render the whole set as self-describing JSONL — the dump-on-fault
/// format. One header object per lane, then one object per record.
pub fn trace_jsonl(set: &TraceSet) -> String {
    let mut out = String::new();
    for lane in set.lanes() {
        let _ = writeln!(
            out,
            "{{\"lane\":\"{}\",\"index\":{},\"dropped\":{},\"records\":{}}}",
            lane.kind.name(),
            lane.index,
            lane.dropped,
            lane.records.len()
        );
        for r in &lane.records {
            let info = r.event.info();
            let _ = writeln!(
                out,
                "{{\"lane\":\"{}\",\"index\":{},\"event\":\"{}\",\"class\":\"{}\",\
                 \"seq\":{},\"ts\":{},\"{}\":{},\"{}\":{}}}",
                lane.kind.name(),
                lane.index,
                info.name,
                class_name(info.class),
                r.seq,
                r.ts,
                info.a_label,
                arg_json(info.a_kind, r.a),
                info.b_label,
                arg_json(info.b_kind, r.b),
            );
        }
    }
    out
}

/// What `--explain` is asking about: a provenance key plus the label it
/// was derived from. Build with [`ExplainTarget::fqdn`] /
/// [`ExplainTarget::server`].
pub struct ExplainTarget {
    pub label: String,
    pub kind: ArgKind,
    pub key: u64,
}

impl ExplainTarget {
    /// Explain the tag chain of a domain name (key from
    /// `DomainName::trace_key`).
    pub fn fqdn(label: impl Into<String>, key: u64) -> Self {
        ExplainTarget {
            label: label.into(),
            kind: ArgKind::FqdnKey,
            key,
        }
    }

    /// Explain the tag chain of a `(server IP, port)` endpoint (key from
    /// `server_trace_key`).
    pub fn server(label: impl Into<String>, key: u64) -> Self {
        ExplainTarget {
            label: label.into(),
            kind: ArgKind::ServerKey,
            key,
        }
    }
}

fn matches_key(r: &TraceRecord, kind: ArgKind, key: u64) -> bool {
    let info = r.event.info();
    (info.a_kind == kind && r.a == key) || (info.b_kind == kind && r.b == key)
}

/// Render the causal chain for `target` from the set's Stable events —
/// deterministic for a deterministic input trace (see module docs).
pub fn explain(set: &TraceSet, target: &ExplainTarget) -> String {
    let mut stable: Vec<TraceRecord> = Vec::new();
    let mut dropped = 0u64;
    for lane in set.lanes() {
        dropped += lane.dropped;
        stable.extend(
            lane.records
                .iter()
                .filter(|r| r.event.info().class == TraceClass::Stable),
        );
    }

    // Pass 1: events naming the target key directly.
    let direct: Vec<TraceRecord> = stable
        .iter()
        .filter(|r| matches_key(r, target.kind, target.key))
        .copied()
        .collect();

    // Pass 2: keys of the *other* kind the direct events join to — a
    // resolver hit carries (server, fqdn), linking the two domains.
    let linked_kind = match target.kind {
        ArgKind::FqdnKey => ArgKind::ServerKey,
        _ => ArgKind::FqdnKey,
    };
    let mut linked: Vec<u64> = direct
        .iter()
        .flat_map(|r| {
            let info = r.event.info();
            [(info.a_kind, r.a), (info.b_kind, r.b)]
        })
        .filter(|(k, _)| *k == linked_kind)
        .map(|(_, v)| v)
        .collect();
    linked.sort_unstable();
    linked.dedup();

    let mut chain: Vec<TraceRecord> = stable
        .iter()
        .filter(|r| {
            matches_key(r, target.kind, target.key)
                || linked.iter().any(|k| matches_key(r, linked_kind, *k))
        })
        .copied()
        .collect();
    chain.sort_by_key(|r| (r.ts, r.seq, r.event, r.a, r.b));

    let mut out = String::new();
    let _ = write!(
        out,
        "explain {}\n  target {} key 0x{:016x}\n  {} linked key(s), {} event(s), {} record(s) dropped\n\n",
        target.label,
        match target.kind {
            ArgKind::FqdnKey => "fqdn",
            _ => "server",
        },
        target.key,
        linked.len(),
        chain.len(),
        dropped
    );
    for r in &chain {
        let info = r.event.info();
        let _ = writeln!(
            out,
            "  ts={:<12} seq={:<8} {:<14} {}={} {}={}",
            r.ts,
            r.seq,
            info.name,
            info.a_label,
            arg_text(info.a_kind, r.a),
            info.b_label,
            arg_text(info.b_kind, r.b),
        );
    }
    out
}

fn arg_text(kind: ArgKind, v: u64) -> String {
    match kind {
        ArgKind::Value => format!("{v}"),
        ArgKind::FqdnKey | ArgKind::ServerKey => format!("0x{v:016x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{trace_bind, TraceSet};

    fn seeded_set() -> std::sync::Arc<TraceSet> {
        let set = TraceSet::new();
        {
            let _g = trace_bind(&set, LaneKind::Worker, 0);
            // fqdn 0xF1 resolves and binds; server 0x51 hits it; a flow
            // opens, gets a verdict, finishes; an unrelated server 0x99.
            crate::tm_trace!(TraceEvent::DnsResponse, 1, 100, 0xf1, 2);
            crate::tm_trace!(TraceEvent::ResolverBind, 1, 100, 0xf1, 2);
            crate::tm_trace!(TraceEvent::ResolverHit, 2, 200, 0x51, 0xf1);
            crate::tm_trace!(TraceEvent::FlowOpen, 2, 200, 0x51, 443);
            crate::tm_trace!(TraceEvent::FlowFinish, 3, 300, 0x51, 900);
            crate::tm_trace!(TraceEvent::ResolverMiss, 4, 400, 0x99, 0);
            crate::tm_trace_wall!(TraceEvent::TokenAcquire, 0, 0, 0);
            crate::tm_trace_wall!(TraceEvent::TokenRelease, 0, 0, 1234);
        }
        set
    }

    #[test]
    fn explain_fqdn_joins_server_events_and_skips_unrelated() {
        let set = seeded_set();
        let text = explain(&set, &ExplainTarget::fqdn("www.example.com", 0xf1));
        assert!(text.starts_with("explain www.example.com\n"));
        for needle in [
            "dns_response",
            "resolver_bind",
            "resolver_hit",
            "flow_open",
            "flow_finish",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // The unrelated server and all Runtime events stay out.
        assert!(!text.contains("resolver_miss"));
        assert!(!text.contains("token_acquire"));
        assert!(text.contains("1 linked key(s), 5 event(s), 0 record(s) dropped"));
    }

    #[test]
    fn explain_server_joins_fqdn_events() {
        let set = seeded_set();
        let text = explain(&set, &ExplainTarget::server("10.0.0.1:443", 0x51));
        for needle in ["resolver_hit", "flow_open", "dns_response", "resolver_bind"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(!text.contains("resolver_miss"));
    }

    #[test]
    fn explain_is_insensitive_to_lane_assignment() {
        // Same stable multiset split across different lanes renders
        // identically — the property the worker-count grid test relies on.
        let split = TraceSet::new();
        {
            let _g = trace_bind(&split, LaneKind::Worker, 1);
            crate::tm_trace!(TraceEvent::ResolverHit, 2, 200, 0x51, 0xf1);
            crate::tm_trace!(TraceEvent::FlowOpen, 2, 200, 0x51, 443);
        }
        {
            let _g = trace_bind(&split, LaneKind::Worker, 0);
            crate::tm_trace!(TraceEvent::DnsResponse, 1, 100, 0xf1, 2);
        }
        let merged = TraceSet::new();
        {
            let _g = trace_bind(&merged, LaneKind::Driver, 0);
            crate::tm_trace!(TraceEvent::DnsResponse, 1, 100, 0xf1, 2);
            crate::tm_trace!(TraceEvent::ResolverHit, 2, 200, 0x51, 0xf1);
            crate::tm_trace!(TraceEvent::FlowOpen, 2, 200, 0x51, 443);
        }
        let t = ExplainTarget::fqdn("www.example.com", 0xf1);
        assert_eq!(explain(&split, &t), explain(&merged, &t));
    }

    #[test]
    fn chrome_trace_builds_token_lane_and_parses_shape() {
        let set = seeded_set();
        let json = chrome_trace(&set);
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"routing token\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"token d0\""));
        assert!(json.contains("\"held_nanos\":1234"));
        assert!(json.contains("\"name\":\"dns_response\""));
    }

    #[test]
    fn trace_jsonl_is_one_object_per_line() {
        let set = seeded_set();
        let dump = trace_jsonl(&set);
        let lines: Vec<&str> = dump.lines().collect();
        // 1 lane header + 8 records.
        assert_eq!(lines.len(), 9);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line {l}");
        }
        assert!(lines[0].contains("\"lane\":\"worker\""));
        assert!(dump.contains("\"event\":\"token_release\""));
        assert!(dump.contains("\"server\":\"0x0000000000000051\""));
    }
}
