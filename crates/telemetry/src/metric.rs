//! The static metric catalog.
//!
//! Every observable in the pipeline is one variant of [`Metric`]; the
//! registry is a flat array indexed by the variant, so an update is a
//! single relaxed atomic RMW with no map lookup, no lock, and no
//! allocation. Adding a metric means adding a variant, a row in
//! [`Metric::ALL`], and an arm in [`Metric::info`] — the compiler then
//! sizes every registry and snapshot for it.

/// How a metric's scalar cell is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone non-negative sum; exported as `*_total`.
    Counter,
    /// Signed level tracked by additive deltas (stored two's-complement
    /// in the same `u64` cell so updates stay a single `fetch_add`).
    Gauge,
    /// Log2-bucketed distribution with `sum` and `count` cells.
    Histogram,
}

/// Determinism class (see DESIGN.md "Telemetry and live monitoring").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Fully determined by the input trace: sequential and merged
    /// parallel runs agree exactly. Only these appear in the default
    /// exposition, which is what makes final snapshots byte-identical
    /// across worker counts.
    Stable,
    /// Depends on run shape (timings, batching, queue depths, parse-call
    /// counts that differ between the sequential and two-stage drivers).
    /// Exported only when runtime metrics are explicitly requested.
    Runtime,
}

/// Static description of one metric.
#[derive(Debug, Clone, Copy)]
pub struct MetricInfo {
    /// Prometheus exposition name (`dnh_` prefix, `_total` for counters).
    pub name: &'static str,
    /// One-line `# HELP` text.
    pub help: &'static str,
    pub kind: Kind,
    pub class: Class,
}

macro_rules! metrics {
    ($( $variant:ident => $name:literal, $kind:ident, $class:ident, $help:literal; )+) => {
        /// Every metric the pipeline records. Discriminants are the
        /// registry array indices.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Metric {
            $( $variant, )+
        }

        impl Metric {
            /// Number of metrics (registry/snapshot array length).
            pub const COUNT: usize = [$( Metric::$variant, )+].len();

            /// All metrics in declaration (= exposition) order.
            pub const ALL: [Metric; Metric::COUNT] = [$( Metric::$variant, )+];

            /// Static name/help/kind/class for this metric.
            pub const fn info(self) -> MetricInfo {
                match self {
                    $( Metric::$variant => MetricInfo {
                        name: $name,
                        help: $help,
                        kind: Kind::$kind,
                        class: Class::$class,
                    }, )+
                }
            }
        }
    };
}

metrics! {
    // --- Stable: determined by the trace alone -------------------------
    IngestFrames => "dnh_ingest_frames_total", Counter, Stable,
        "Frames fed to the sniffer ingest loop";
    IngestDnsQueries => "dnh_ingest_dns_queries_total", Counter, Stable,
        "Client DNS queries observed (used for response-time pairing)";
    NetFramesMalformed => "dnh_net_frames_malformed_total", Counter, Stable,
        "Frames rejected by the Ethernet/IP/transport parser (other than truncation or checksum failure)";
    NetFramesTruncated => "dnh_net_frames_truncated_total", Counter, Stable,
        "Frames cut short of a header or length field (snaplen truncation at the capture point)";
    NetChecksumErrors => "dnh_net_checksum_errors_total", Counter, Stable,
        "Frames rejected by a failed header checksum (on-the-wire corruption)";
    DnsMessagesDecoded => "dnh_dns_messages_decoded_total", Counter, Stable,
        "DNS messages decoded successfully (UDP payloads and TCP stream records)";
    DnsDecodeErrors => "dnh_dns_decode_errors_total", Counter, Stable,
        "DNS payloads that failed to decode";
    DnsResponsesSniffed => "dnh_dns_responses_total", Counter, Stable,
        "DNS responses handed to the resolver (Algorithm 1 insert path)";
    ResolverLookups => "dnh_resolver_lookups_total", Counter, Stable,
        "Resolver lookups on flow start";
    ResolverHits => "dnh_resolver_hits_total", Counter, Stable,
        "Resolver lookups that returned an FQDN";
    ResolverBindings => "dnh_resolver_bindings_total", Counter, Stable,
        "(server IP, client) -> FQDN bindings created";
    ResolverEvictions => "dnh_resolver_evictions_total", Counter, Stable,
        "Clist FIFO slots recycled";
    ResolverConfusion => "dnh_resolver_label_confusion_total", Counter, Stable,
        "Bindings that replaced an existing binding with a different FQDN";
    ClistOccupancy => "dnh_resolver_clist_occupancy", Gauge, Stable,
        "Live entries across the resolver's circular lists";
    FlowsStarted => "dnh_flow_started_total", Counter, Stable,
        "TCP/UDP flows opened in the flow table";
    FlowsFinished => "dnh_flow_finished_total", Counter, Stable,
        "Flows closed (FIN/RST, idle eviction, SYN reuse, or final flush)";
    FlowSynReuse => "dnh_flow_syn_reuse_total", Counter, Stable,
        "Flows terminated early because their 4-tuple was reused by a new SYN";
    FlowMidstreamStarts => "dnh_flow_midstream_starts_total", Counter, Stable,
        "TCP flows whose first observed segment carried no SYN (capture started mid-stream)";
    TcpSeqGap => "dnh_tcp_seq_gap_total", Counter, Stable,
        "TCP segments starting beyond the expected sequence number (packet loss or reordering gap)";
    TcpSeqRewind => "dnh_tcp_seq_rewind_total", Counter, Stable,
        "TCP segments starting below the expected sequence number (duplicate, retransmission, or late reordered delivery)";
    FlowTableSize => "dnh_flow_table_size", Gauge, Stable,
        "Flows currently live in the flow table";
    TagAttempts => "dnh_tag_attempts_total", Counter, Stable,
        "Flow starts that consulted the resolver for a tag (post-warmup)";
    TagHits => "dnh_tag_hits_total", Counter, Stable,
        "Flow starts tagged with an FQDN at SYN time (post-warmup)";
    DpiHttp => "dnh_dpi_verdict_http_total", Counter, Stable,
        "Finished flows classified HTTP by the DPI baseline";
    DpiTls => "dnh_dpi_verdict_tls_total", Counter, Stable,
        "Finished flows classified TLS by the DPI baseline";
    DpiP2p => "dnh_dpi_verdict_p2p_total", Counter, Stable,
        "Finished flows classified P2P by the DPI baseline";
    DpiDns => "dnh_dpi_verdict_dns_total", Counter, Stable,
        "Finished flows classified DNS by the DPI baseline";
    DpiMail => "dnh_dpi_verdict_mail_total", Counter, Stable,
        "Finished flows classified mail by the DPI baseline";
    DpiChat => "dnh_dpi_verdict_chat_total", Counter, Stable,
        "Finished flows classified chat by the DPI baseline";
    DpiOther => "dnh_dpi_verdict_other_total", Counter, Stable,
        "Finished flows the DPI baseline could not classify";
    FlowrecDnsRecords => "dnh_flowrec_dns_records_total", Counter, Stable,
        "DNS answer records ingested from a flow-record export stream";
    FlowrecFlowRecords => "dnh_flowrec_flow_records_total", Counter, Stable,
        "Flow export records ingested from a flow-record export stream";
    FlowrecDecodeErrors => "dnh_flowrec_decode_errors_total", Counter, Stable,
        "Flow-record stream records rejected by the codec or the DNS decoder";
    FlowrecSkewOverflow => "dnh_flowrec_skew_overflow_total", Counter, Stable,
        "Flow-record reorder-buffer overflows: a record released early because the skew buffer hit capacity";
    FlowrecLateRecords => "dnh_flowrec_late_records_total", Counter, Stable,
        "Flow-record stream records that arrived later than the reorder watermark allows (processed anyway, possibly mis-ordered)";
    DaemonRotations => "dnh_daemon_rotations_total", Counter, Stable,
        "Daemon state rotations driven by the packet clock";
    WindowBucketsRetired => "dnh_window_buckets_retired_total", Counter, Stable,
        "Windowed-analytics buckets retired and emitted by state rotation";
    WindowLateEvents => "dnh_window_late_events_total", Counter, Stable,
        "Windowed-analytics events that arrived for an already-retired bucket (possible only under injected reordering)";

    // --- Runtime: depends on driver shape / wall clock -----------------
    NetParses => "dnh_net_parses_total", Counter, Runtime,
        "Successful frame parses (the parallel driver parses DNS frames twice)";
    PipelineItemsRouted => "dnh_pipeline_items_routed_total", Counter, Runtime,
        "Frames routed to a worker shard by the dispatcher";
    PipelineBatchesSent => "dnh_pipeline_batches_total", Counter, Runtime,
        "Batches flushed into worker rings";
    PipelineSendStalls => "dnh_pipeline_send_stalls_total", Counter, Runtime,
        "Blocking sends that found a worker ring full (backpressure stalls)";
    PipelineTicks => "dnh_pipeline_ticks_total", Counter, Runtime,
        "Time ticks broadcast to workers (one per worker per tick)";
    DispatchBusyNanos => "dnh_pipeline_dispatch_busy_nanos_total", Counter, Runtime,
        "Dispatcher busy time outside blocking channel sends, in nanoseconds";
    SendWaitNanos => "dnh_pipeline_send_wait_nanos_total", Counter, Runtime,
        "Dispatcher time blocked in channel sends, in nanoseconds";
    WorkerBusyNanos => "dnh_pipeline_worker_busy_nanos_total", Counter, Runtime,
        "Worker busy time processing batches, in nanoseconds";
    MergeNanos => "dnh_report_merge_nanos_total", Counter, Runtime,
        "Time spent assembling/merging the final report, in nanoseconds";
    RingOccupancy => "dnh_pipeline_ring_occupancy", Histogram, Runtime,
        "Worker-ring depth (batches queued) observed at each blocking send";
    BatchItems => "dnh_pipeline_batch_items", Histogram, Runtime,
        "Items per batch flushed to a worker ring";
    TraceEventsDropped => "dnh_trace_events_dropped_total", Counter, Runtime,
        "Flight-recorder records overwritten before export (trace ring wrapped)";
    WindowRetractUnderflow => "dnh_window_retract_underflow_total", Counter, Runtime,
        "Windowed-analytics retractions that underflowed and fell back to a merge-only rebuild (an invariant breach; expected zero)";
}

/// Metrics with histogram cells, in registry histogram-slot order.
pub const HIST_METRICS: [Metric; 2] = [Metric::RingOccupancy, Metric::BatchItems];

/// Number of histogram slots in a registry.
pub const HIST_COUNT: usize = HIST_METRICS.len();

impl Metric {
    /// Registry scalar index.
    #[inline]
    pub const fn idx(self) -> usize {
        self as usize
    }

    /// Histogram slot for histogram metrics, `None` otherwise.
    #[inline]
    pub const fn hist_idx(self) -> Option<usize> {
        match self {
            Metric::RingOccupancy => Some(0),
            Metric::BatchItems => Some(1),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_consistent() {
        assert_eq!(Metric::ALL.len(), Metric::COUNT);
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.idx(), i, "{m:?} discriminant mismatch");
        }
        // Names are unique and well-formed.
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.info().name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::COUNT, "duplicate metric name");
        for m in Metric::ALL {
            let info = m.info();
            assert!(info.name.starts_with("dnh_"), "{}", info.name);
            if info.kind == Kind::Counter {
                assert!(info.name.ends_with("_total"), "{}", info.name);
            }
            assert!(!info.help.is_empty());
        }
    }

    #[test]
    fn hist_slots_match_catalog() {
        for (slot, m) in HIST_METRICS.iter().enumerate() {
            assert_eq!(m.hist_idx(), Some(slot));
            assert_eq!(m.info().kind, Kind::Histogram);
        }
        let hist_count = Metric::ALL
            .iter()
            .filter(|m| m.info().kind == Kind::Histogram)
            .count();
        assert_eq!(hist_count, HIST_COUNT);
        for m in Metric::ALL {
            assert_eq!(m.hist_idx().is_some(), m.info().kind == Kind::Histogram);
        }
    }
}
