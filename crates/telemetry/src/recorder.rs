//! Thread-local registry binding — how instrumented code finds its cells.
//!
//! Instrumentation sites call the free functions ([`counter_add`],
//! [`gauge_add`], [`observe`], [`span`]) via the `tm_*!` macros; each
//! consults a thread-local `Option<Arc<Registry>>`. When no registry is
//! bound (the default, and always in loom/proptest runs) an update is a
//! TLS load plus one predictable branch — effectively free — which is how
//! the bench measures "enabled vs. disabled" overhead in a single binary.
//!
//! [`bind`] installs a registry for the current thread and returns a
//! guard restoring the previous binding on drop, so nested scopes (tests
//! running under a bound harness) compose. Pipeline workers bind their
//! per-shard registry for the lifetime of their thread.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

use crate::metric::Metric;
use crate::registry::Registry;

thread_local! {
    static CURRENT: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// Restores the previously bound registry (if any) when dropped.
/// Deliberately `!Send`: a binding belongs to one thread.
#[must_use = "dropping the guard immediately unbinds the registry"]
pub struct BindGuard {
    prev: Option<Arc<Registry>>,
    restore: bool,
    _thread_bound: PhantomData<*const ()>,
}

impl Drop for BindGuard {
    fn drop(&mut self) {
        if self.restore {
            let prev = self.prev.take();
            let _ = CURRENT.try_with(|c| {
                if let Ok(mut slot) = c.try_borrow_mut() {
                    *slot = prev;
                }
            });
        }
    }
}

/// Bind `registry` as the current thread's metric sink until the guard
/// drops.
pub fn bind(registry: Arc<Registry>) -> BindGuard {
    let prev = CURRENT
        .try_with(|c| match c.try_borrow_mut() {
            Ok(mut slot) => Some(slot.replace(registry)),
            Err(_) => None,
        })
        .ok()
        .flatten();
    match prev {
        Some(prev) => BindGuard {
            prev,
            restore: true,
            _thread_bound: PhantomData,
        },
        // TLS unavailable (thread teardown) or re-entrant borrow: nothing
        // was installed, so there is nothing to restore.
        None => BindGuard {
            prev: None,
            restore: false,
            _thread_bound: PhantomData,
        },
    }
}

/// Whether the current thread has a registry bound (telemetry enabled).
#[inline]
pub fn is_bound() -> bool {
    CURRENT
        .try_with(|c| c.try_borrow().map(|slot| slot.is_some()).unwrap_or(false))
        .unwrap_or(false)
}

#[inline]
fn with_registry(f: impl FnOnce(&Registry)) {
    let _ = CURRENT.try_with(|c| {
        if let Ok(slot) = c.try_borrow() {
            if let Some(reg) = slot.as_deref() {
                f(reg);
            }
        }
    });
}

/// Add `n` to a counter on the bound registry; no-op when unbound.
#[inline]
pub fn counter_add(m: Metric, n: u64) {
    with_registry(|r| r.counter_add(m, n));
}

/// Apply a signed delta to a gauge on the bound registry.
#[inline]
pub fn gauge_add(m: Metric, delta: i64) {
    with_registry(|r| r.gauge_add(m, delta));
}

/// Record a histogram observation on the bound registry.
#[inline]
pub fn observe(m: Metric, v: u64) {
    with_registry(|r| r.observe(m, v));
}

/// Fold another registry's cells into the current thread's bound registry
/// (element-wise add); no-op when unbound. `ParallelSniffer::finish` uses
/// this to sum its joined workers' registries into the dispatcher's.
pub fn merge_into_bound(other: &Registry) {
    with_registry(|r| r.merge_from(other));
}

/// A lightweight stage timer: measures wall time from construction to
/// drop and adds the elapsed nanoseconds to a counter metric. When no
/// registry is bound at construction the clock is never read.
pub struct Span {
    metric: Metric,
    start: Option<Instant>,
}

impl Span {
    /// Abandon the span without recording (e.g. on an error path).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start.take() {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            counter_add(self.metric, nanos);
        }
    }
}

/// Start a [`Span`] accumulating into counter metric `m`.
#[inline]
pub fn span(m: Metric) -> Span {
    Span {
        metric: m,
        start: if is_bound() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbound_updates_are_noops() {
        assert!(!is_bound());
        counter_add(Metric::IngestFrames, 1);
        gauge_add(Metric::FlowTableSize, 1);
        observe(Metric::RingOccupancy, 1);
        drop(span(Metric::MergeNanos));
        assert!(!is_bound());
    }

    #[test]
    fn bind_routes_updates_and_nests() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        {
            let _g1 = bind(outer.clone());
            assert!(is_bound());
            counter_add(Metric::TagHits, 1);
            {
                let _g2 = bind(inner.clone());
                counter_add(Metric::TagHits, 10);
            }
            // Inner guard dropped: back on the outer registry.
            counter_add(Metric::TagHits, 2);
        }
        assert!(!is_bound());
        counter_add(Metric::TagHits, 100); // lost: nothing bound
        assert_eq!(outer.snapshot().get(Metric::TagHits), 3);
        assert_eq!(inner.snapshot().get(Metric::TagHits), 10);
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let reg = Arc::new(Registry::new());
        {
            let _g = bind(reg.clone());
            let s = span(Metric::MergeNanos);
            std::hint::black_box(0u64);
            drop(s);
            let cancelled = span(Metric::DispatchBusyNanos);
            cancelled.cancel();
        }
        // Elapsed time is nonnegative; the cell was touched exactly once.
        let s = reg.snapshot();
        assert_eq!(s.get(Metric::DispatchBusyNanos), 0);
        // A span across ~nothing can still legitimately read 0ns on a
        // coarse clock, so only assert it did not underflow.
        assert!(s.get(Metric::MergeNanos) < u64::MAX);
    }

    #[test]
    fn bindings_are_per_thread() {
        let reg = Arc::new(Registry::new());
        let _g = bind(reg.clone());
        counter_add(Metric::IngestFrames, 1);
        let reg2 = reg.clone();
        std::thread::spawn(move || {
            assert!(!is_bound());
            counter_add(Metric::IngestFrames, 50); // unbound thread: lost
            let _g = bind(reg2);
            counter_add(Metric::IngestFrames, 7);
        })
        .join()
        .expect("worker thread");
        assert_eq!(reg.snapshot().get(Metric::IngestFrames), 8);
    }
}
