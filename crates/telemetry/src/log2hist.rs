//! Plain (non-atomic) log2 histogram, sharing the bucket math of the
//! registry's atomic histograms.
//!
//! The streaming-analytics layer (DESIGN.md "Streaming analytics and
//! bounded-memory summaries") needs the same counter-based summary shape
//! the telemetry registry uses — per-power-of-two buckets plus sum and
//! count — but as a value type it can hold inside mergeable per-worker
//! state, and with a configurable finite range (DNS-to-flow delays span
//! microseconds to hours, wider than the registry's fixed 20 buckets).
//!
//! Merging is element-wise addition, so folding per-worker histograms in
//! any order yields the same cells as a sequential run: the property the
//! deterministic parallel merge relies on.

/// Bucket slot for an observed value given `finite` finite buckets:
/// `v <= 2^i` lands in slot `i`, anything above `2^(finite-1)` in the
/// overflow cell (index `finite`).
#[inline]
pub fn log2_bucket_index(v: u64, finite: usize) -> usize {
    if v <= 1 {
        0
    } else {
        let ceil_log2 = (64 - (v - 1).leading_zeros()) as usize;
        ceil_log2.min(finite)
    }
}

/// Hard ceiling on the finite bucket count: a `u64` has 64 bit positions,
/// so `log2_bucket_index` can never produce a slot above 63. Allocation
/// sizes are pinned under this cap at every construction site.
pub const MAX_FINITE_BUCKETS: usize = 63;

/// Inclusive upper bound of finite bucket `i` (the Prometheus `le` label).
#[inline]
pub fn log2_bucket_le(i: usize) -> u64 {
    1u64 << i.min(MAX_FINITE_BUCKETS)
}

/// Subtractive merge failed: `other` was not contained in `self`.
///
/// Returned by [`Log2Hist::sub_merge`] when any cell (a bucket, the sum,
/// or the count) would go negative. The receiver is left unchanged apart
/// from a possible layout widening, which does not alter the histogram's
/// value — underflow is a checked error, never a silent wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistUnderflow;

impl std::fmt::Display for HistUnderflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("log2 histogram subtractive merge would underflow")
    }
}

/// A mergeable, non-atomic log2 histogram: `finite` power-of-two buckets
/// plus one overflow cell, a value sum, and an observation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    finite: usize,
    buckets: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Log2Hist {
    /// An empty histogram with `finite` finite buckets (upper bounds
    /// `2^0 ..= 2^(finite-1)`) plus the overflow cell.
    pub fn new(finite: usize) -> Self {
        let finite = finite.clamp(1, MAX_FINITE_BUCKETS);
        Log2Hist {
            finite,
            buckets: vec![0; finite.min(MAX_FINITE_BUCKETS) + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let i = log2_bucket_index(v, self.finite);
        if let Some(cell) = self.buckets.get_mut(i) {
            *cell = cell.wrapping_add(1);
        }
        self.sum = self.sum.wrapping_add(v);
        self.count = self.count.wrapping_add(1);
    }

    /// Element-wise sum with another histogram. Histograms of different
    /// widths merge into the wider layout (narrow cells keep their slots,
    /// the narrow overflow is folded into the wide overflow's tail slot).
    pub fn merge(&mut self, other: &Log2Hist) {
        if other.finite > self.finite {
            let mut grown = vec![0u64; other.finite.min(MAX_FINITE_BUCKETS) + 1];
            for (i, v) in self.buckets.iter().enumerate() {
                let slot = if i == self.finite { other.finite } else { i };
                if let Some(cell) = grown.get_mut(slot) {
                    *cell = cell.wrapping_add(*v);
                }
            }
            self.buckets = grown;
            self.finite = other.finite;
        }
        for (i, v) in other.buckets.iter().enumerate() {
            let slot = if i == other.finite { self.finite } else { i };
            if let Some(cell) = self.buckets.get_mut(slot) {
                *cell = cell.wrapping_add(*v);
            }
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.count = self.count.wrapping_add(other.count);
    }

    /// Checked element-wise subtraction: the exact inverse of [`merge`].
    ///
    /// `a.merge(&b); a.sub_merge(&b)` restores `a` bucket-exactly, and the
    /// empty histogram is a fixed point. When `other` is not contained in
    /// `self` (any bucket, the sum, or the count would go negative) the
    /// call returns [`HistUnderflow`] and no cell is modified — the only
    /// permitted side effect is widening `self` to `other`'s layout first,
    /// which re-slots existing counts without changing the histogram's
    /// value (the same widening [`merge`] performs).
    ///
    /// [`merge`]: Log2Hist::merge
    pub fn sub_merge(&mut self, other: &Log2Hist) -> Result<(), HistUnderflow> {
        if other.finite > self.finite {
            let mut grown = vec![0u64; other.finite.min(MAX_FINITE_BUCKETS) + 1];
            for (i, v) in self.buckets.iter().enumerate() {
                let slot = if i == self.finite { other.finite } else { i };
                if let Some(cell) = grown.get_mut(slot) {
                    *cell = cell.wrapping_add(*v);
                }
            }
            self.buckets = grown;
            self.finite = other.finite;
        }
        // Validate every cell before touching any, so a failed call never
        // leaves a half-subtracted histogram behind.
        for (i, v) in other.buckets.iter().enumerate() {
            let slot = if i == other.finite { self.finite } else { i };
            let have = self.buckets.get(slot).copied().unwrap_or(0);
            if have < *v {
                return Err(HistUnderflow);
            }
        }
        if self.sum < other.sum || self.count < other.count {
            return Err(HistUnderflow);
        }
        for (i, v) in other.buckets.iter().enumerate() {
            let slot = if i == other.finite { self.finite } else { i };
            if let Some(cell) = self.buckets.get_mut(slot) {
                *cell -= *v;
            }
        }
        self.sum -= other.sum;
        self.count -= other.count;
        Ok(())
    }

    /// Number of finite buckets.
    pub fn finite(&self) -> usize {
        self.finite
    }

    /// Per-bucket (non-cumulative) counts; last cell is overflow.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`0.0 ..= 1.0`), or `None` when empty. The overflow cell reports
    /// `u64::MAX`.
    pub fn quantile_le(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, v) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*v);
            if seen >= rank {
                return Some(if i == self.finite {
                    u64::MAX
                } else {
                    log2_bucket_le(i)
                });
            }
        }
        Some(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_matches_registry_shape() {
        assert_eq!(log2_bucket_index(0, 20), 0);
        assert_eq!(log2_bucket_index(1, 20), 0);
        assert_eq!(log2_bucket_index(2, 20), 1);
        assert_eq!(log2_bucket_index(3, 20), 2);
        assert_eq!(log2_bucket_index(1 << 19, 20), 19);
        assert_eq!(log2_bucket_index((1 << 19) + 1, 20), 20);
        assert_eq!(log2_bucket_index(u64::MAX, 20), 20);
        assert_eq!(log2_bucket_le(0), 1);
        assert_eq!(log2_bucket_le(19), 1 << 19);
    }

    #[test]
    fn record_and_merge_are_elementwise() {
        let mut a = Log2Hist::new(40);
        let mut b = Log2Hist::new(40);
        a.record(0);
        a.record(3);
        b.record(1 << 30);
        b.record(u64::MAX);
        let mut seq = Log2Hist::new(40);
        for v in [0, 3, 1 << 30, u64::MAX] {
            seq.record(v);
        }
        a.merge(&b);
        assert_eq!(a, seq);
        assert_eq!(a.count(), 4);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[2], 1);
        assert_eq!(a.buckets()[30], 1);
        assert_eq!(a.buckets()[40], 1); // overflow
    }

    #[test]
    fn merge_widens_to_larger_layout() {
        let mut narrow = Log2Hist::new(4);
        narrow.record(2); // slot 1
        narrow.record(1 << 10); // overflow of the narrow layout (slot 4)
        let mut wide = Log2Hist::new(8);
        wide.record(1 << 6); // slot 6

        let mut a = narrow.clone();
        a.merge(&wide);
        assert_eq!(a.finite(), 8);
        assert_eq!(a.buckets()[1], 1);
        assert_eq!(a.buckets()[6], 1);
        assert_eq!(a.buckets()[8], 1); // narrow overflow folded into wide overflow

        let mut b = wide.clone();
        b.merge(&narrow);
        assert_eq!(b, a);
    }

    #[test]
    fn sub_merge_inverts_merge_bucket_exactly() {
        let mut a = Log2Hist::new(40);
        for v in [0, 3, 7, 1 << 20] {
            a.record(v);
        }
        let mut b = Log2Hist::new(40);
        for v in [1, 3, u64::MAX] {
            b.record(v);
        }
        let before = a.clone();
        a.merge(&b);
        assert_ne!(a, before);
        a.sub_merge(&b).expect("merged histogram contains its part");
        assert_eq!(a, before, "merge then sub_merge must round-trip");
    }

    #[test]
    fn sub_merge_zero_histogram_is_fixed_point() {
        let mut a = Log2Hist::new(20);
        for v in [5, 900, 1 << 15] {
            a.record(v);
        }
        let before = a.clone();
        a.sub_merge(&Log2Hist::new(20)).expect("zero subtracts");
        assert_eq!(a, before);
        // And the zero histogram minus itself stays zero.
        let mut z = Log2Hist::new(20);
        z.sub_merge(&Log2Hist::new(20)).expect("zero - zero");
        assert!(z.is_empty());
    }

    #[test]
    fn sub_merge_underflow_is_checked_and_non_destructive() {
        let mut a = Log2Hist::new(20);
        a.record(4);
        let mut b = Log2Hist::new(20);
        b.record(4);
        b.record(4);
        let before = a.clone();
        assert_eq!(a.sub_merge(&b), Err(HistUnderflow));
        assert_eq!(a, before, "failed sub_merge must not mutate cells");
        // Same count, different buckets: bucket check must catch it.
        let mut c = Log2Hist::new(20);
        c.record(1 << 10);
        let before = a.clone();
        assert_eq!(a.sub_merge(&c), Err(HistUnderflow));
        assert_eq!(a, before);
    }

    #[test]
    fn sub_merge_handles_width_mismatches_like_merge() {
        // Wider minus narrower: the narrow overflow maps to the wide tail.
        let mut narrow = Log2Hist::new(4);
        narrow.record(2);
        narrow.record(1 << 10); // narrow overflow
        let mut wide = Log2Hist::new(8);
        wide.merge(&narrow);
        wide.record(1 << 6);
        wide.sub_merge(&narrow).expect("contained");
        assert_eq!(wide.count(), 1);
        assert_eq!(wide.buckets()[6], 1);
        assert_eq!(wide.buckets()[8], 0);

        // Narrower minus wider: the receiver widens first (value-neutral),
        // then subtracts; round-trips against merge the same way.
        let mut a = Log2Hist::new(4);
        a.record(3);
        let mut b = Log2Hist::new(8);
        b.record(1 << 6);
        let mut merged = a.clone();
        merged.merge(&b);
        merged.sub_merge(&b).expect("contained");
        assert_eq!(merged.finite(), 8);
        assert_eq!(merged.count(), 1);
        assert_eq!(merged.buckets()[2], 1);
    }

    #[test]
    fn quantile_le_reports_bucket_upper_bounds() {
        let mut h = Log2Hist::new(20);
        assert_eq!(h.quantile_le(0.5), None);
        for v in [1, 1, 1, 1000] {
            h.record(v);
        }
        assert_eq!(h.quantile_le(0.5), Some(1));
        assert_eq!(h.quantile_le(1.0), Some(1024));
        h.record(u64::MAX);
        assert_eq!(h.quantile_le(1.0), Some(u64::MAX));
    }
}
