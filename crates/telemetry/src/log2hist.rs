//! Plain (non-atomic) log2 histogram, sharing the bucket math of the
//! registry's atomic histograms.
//!
//! The streaming-analytics layer (DESIGN.md "Streaming analytics and
//! bounded-memory summaries") needs the same counter-based summary shape
//! the telemetry registry uses — per-power-of-two buckets plus sum and
//! count — but as a value type it can hold inside mergeable per-worker
//! state, and with a configurable finite range (DNS-to-flow delays span
//! microseconds to hours, wider than the registry's fixed 20 buckets).
//!
//! Merging is element-wise addition, so folding per-worker histograms in
//! any order yields the same cells as a sequential run: the property the
//! deterministic parallel merge relies on.

/// Bucket slot for an observed value given `finite` finite buckets:
/// `v <= 2^i` lands in slot `i`, anything above `2^(finite-1)` in the
/// overflow cell (index `finite`).
#[inline]
pub fn log2_bucket_index(v: u64, finite: usize) -> usize {
    if v <= 1 {
        0
    } else {
        let ceil_log2 = (64 - (v - 1).leading_zeros()) as usize;
        ceil_log2.min(finite)
    }
}

/// Inclusive upper bound of finite bucket `i` (the Prometheus `le` label).
#[inline]
pub fn log2_bucket_le(i: usize) -> u64 {
    1u64 << i.min(63)
}

/// A mergeable, non-atomic log2 histogram: `finite` power-of-two buckets
/// plus one overflow cell, a value sum, and an observation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    finite: usize,
    buckets: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Log2Hist {
    /// An empty histogram with `finite` finite buckets (upper bounds
    /// `2^0 ..= 2^(finite-1)`) plus the overflow cell.
    pub fn new(finite: usize) -> Self {
        let finite = finite.clamp(1, 63);
        Log2Hist {
            finite,
            buckets: vec![0; finite + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let i = log2_bucket_index(v, self.finite);
        if let Some(cell) = self.buckets.get_mut(i) {
            *cell = cell.wrapping_add(1);
        }
        self.sum = self.sum.wrapping_add(v);
        self.count = self.count.wrapping_add(1);
    }

    /// Element-wise sum with another histogram. Histograms of different
    /// widths merge into the wider layout (narrow cells keep their slots,
    /// the narrow overflow is folded into the wide overflow's tail slot).
    pub fn merge(&mut self, other: &Log2Hist) {
        if other.finite > self.finite {
            let mut grown = vec![0u64; other.finite + 1];
            for (i, v) in self.buckets.iter().enumerate() {
                let slot = if i == self.finite { other.finite } else { i };
                if let Some(cell) = grown.get_mut(slot) {
                    *cell = cell.wrapping_add(*v);
                }
            }
            self.buckets = grown;
            self.finite = other.finite;
        }
        for (i, v) in other.buckets.iter().enumerate() {
            let slot = if i == other.finite { self.finite } else { i };
            if let Some(cell) = self.buckets.get_mut(slot) {
                *cell = cell.wrapping_add(*v);
            }
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.count = self.count.wrapping_add(other.count);
    }

    /// Number of finite buckets.
    pub fn finite(&self) -> usize {
        self.finite
    }

    /// Per-bucket (non-cumulative) counts; last cell is overflow.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`0.0 ..= 1.0`), or `None` when empty. The overflow cell reports
    /// `u64::MAX`.
    pub fn quantile_le(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, v) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*v);
            if seen >= rank {
                return Some(if i == self.finite {
                    u64::MAX
                } else {
                    log2_bucket_le(i)
                });
            }
        }
        Some(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_matches_registry_shape() {
        assert_eq!(log2_bucket_index(0, 20), 0);
        assert_eq!(log2_bucket_index(1, 20), 0);
        assert_eq!(log2_bucket_index(2, 20), 1);
        assert_eq!(log2_bucket_index(3, 20), 2);
        assert_eq!(log2_bucket_index(1 << 19, 20), 19);
        assert_eq!(log2_bucket_index((1 << 19) + 1, 20), 20);
        assert_eq!(log2_bucket_index(u64::MAX, 20), 20);
        assert_eq!(log2_bucket_le(0), 1);
        assert_eq!(log2_bucket_le(19), 1 << 19);
    }

    #[test]
    fn record_and_merge_are_elementwise() {
        let mut a = Log2Hist::new(40);
        let mut b = Log2Hist::new(40);
        a.record(0);
        a.record(3);
        b.record(1 << 30);
        b.record(u64::MAX);
        let mut seq = Log2Hist::new(40);
        for v in [0, 3, 1 << 30, u64::MAX] {
            seq.record(v);
        }
        a.merge(&b);
        assert_eq!(a, seq);
        assert_eq!(a.count(), 4);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[2], 1);
        assert_eq!(a.buckets()[30], 1);
        assert_eq!(a.buckets()[40], 1); // overflow
    }

    #[test]
    fn merge_widens_to_larger_layout() {
        let mut narrow = Log2Hist::new(4);
        narrow.record(2); // slot 1
        narrow.record(1 << 10); // overflow of the narrow layout (slot 4)
        let mut wide = Log2Hist::new(8);
        wide.record(1 << 6); // slot 6

        let mut a = narrow.clone();
        a.merge(&wide);
        assert_eq!(a.finite(), 8);
        assert_eq!(a.buckets()[1], 1);
        assert_eq!(a.buckets()[6], 1);
        assert_eq!(a.buckets()[8], 1); // narrow overflow folded into wide overflow

        let mut b = wide.clone();
        b.merge(&narrow);
        assert_eq!(b, a);
    }

    #[test]
    fn quantile_le_reports_bucket_upper_bounds() {
        let mut h = Log2Hist::new(20);
        assert_eq!(h.quantile_le(0.5), None);
        for v in [1, 1, 1, 1000] {
            h.record(v);
        }
        assert_eq!(h.quantile_le(0.5), Some(1));
        assert_eq!(h.quantile_le(1.0), Some(1024));
        h.record(u64::MAX);
        assert_eq!(h.quantile_le(1.0), Some(u64::MAX));
    }
}
