//! Snapshot renderers: Prometheus text exposition and JSONL.
//!
//! Both renderers walk [`Metric::ALL`] in catalog order and emit nothing
//! but static names and decimal integers, so output for a given snapshot
//! is a pure function of its cell values — the byte-stability the
//! determinism tests rely on. By default only [`Class::Stable`] metrics
//! are rendered (identical between sequential and merged parallel runs);
//! pass `include_runtime = true` for the full operational view.

use std::fmt::Write as _;

use crate::metric::{Class, Kind, Metric};
use crate::registry::{bucket_le, Snapshot, BUCKETS};

fn included(m: Metric, include_runtime: bool) -> bool {
    include_runtime || m.info().class == Class::Stable
}

/// Render a snapshot in the Prometheus text exposition format
/// (`# HELP` / `# TYPE` comments, cumulative `_bucket{le=...}` cells,
/// `_sum`/`_count` for histograms).
// lint_root(determinism): exposition must be byte-identical across worker counts
pub fn prometheus(snap: &Snapshot, include_runtime: bool) -> String {
    let mut out = String::with_capacity(4096);
    for m in Metric::ALL {
        if !included(m, include_runtime) {
            continue;
        }
        let info = m.info();
        let _ = writeln!(out, "# HELP {} {}", info.name, info.help);
        match info.kind {
            Kind::Counter => {
                let _ = writeln!(out, "# TYPE {} counter", info.name);
                let _ = writeln!(out, "{} {}", info.name, snap.get(m));
            }
            Kind::Gauge => {
                let _ = writeln!(out, "# TYPE {} gauge", info.name);
                let _ = writeln!(out, "{} {}", info.name, snap.gauge(m));
            }
            Kind::Histogram => {
                let _ = writeln!(out, "# TYPE {} histogram", info.name);
                let h = snap.hist(m).copied().unwrap_or_default();
                let mut cumulative = 0u64;
                for (i, cell) in h.buckets.iter().enumerate() {
                    cumulative = cumulative.wrapping_add(*cell);
                    if i < BUCKETS {
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{}\"}} {cumulative}",
                            info.name,
                            bucket_le(i)
                        );
                    } else {
                        let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {cumulative}", info.name);
                    }
                }
                let _ = writeln!(out, "{}_sum {}", info.name, h.sum);
                let _ = writeln!(out, "{}_count {}", info.name, h.count);
            }
        }
    }
    out
}

/// Render a snapshot as one newline-terminated JSON line:
/// `{"seq":..,"ts_micros":..,"counters":{..},"gauges":{..},"histograms":{..}}`.
///
/// `seq` is the 0-based index of this line in its snapshot stream
/// ([`crate::SnapshotEmitter::emitted`]) so a consumer tailing the JSONL
/// file can detect dropped or reordered lines. `ts_micros` is the
/// packet-clock timestamp that triggered the snapshot (trace time, not
/// wall time — see [`crate::SnapshotEmitter`]).
// lint_root(determinism): exposition must be byte-identical across worker counts
pub fn jsonl(snap: &Snapshot, seq: u64, ts_micros: u64, include_runtime: bool) -> String {
    let mut out = String::with_capacity(2048);
    let _ = write!(
        out,
        "{{\"seq\":{seq},\"ts_micros\":{ts_micros},\"counters\":{{"
    );
    let mut first = true;
    for m in Metric::ALL {
        if m.info().kind != Kind::Counter || !included(m, include_runtime) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", m.info().name, snap.get(m));
    }
    let _ = write!(out, "}},\"gauges\":{{");
    let mut first = true;
    for m in Metric::ALL {
        if m.info().kind != Kind::Gauge || !included(m, include_runtime) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", m.info().name, snap.gauge(m));
    }
    let _ = write!(out, "}},\"histograms\":{{");
    let mut first = true;
    for (m, h) in snap.histograms() {
        if !included(m, include_runtime) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{{\"buckets\":[", m.info().name);
        for (i, cell) in h.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{cell}");
        }
        let _ = write!(out, "],\"sum\":{},\"count\":{}}}", h.sum, h.count);
    }
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter_add(Metric::IngestFrames, 42);
        r.gauge_add(Metric::FlowTableSize, 7);
        r.counter_add(Metric::NetParses, 99); // runtime-class
        r.observe(Metric::RingOccupancy, 2);
        r.observe(Metric::RingOccupancy, 2);
        r.snapshot()
    }

    #[test]
    fn prometheus_stable_only_by_default() {
        let text = prometheus(&sample(), false);
        assert!(text.contains("dnh_ingest_frames_total 42\n"));
        assert!(text.contains("# TYPE dnh_flow_table_size gauge"));
        assert!(text.contains("dnh_flow_table_size 7\n"));
        assert!(!text.contains("dnh_net_parses_total"));
        assert!(!text.contains("dnh_pipeline_ring_occupancy"));
    }

    #[test]
    fn prometheus_full_includes_runtime_and_histograms() {
        let text = prometheus(&sample(), true);
        assert!(text.contains("dnh_net_parses_total 99\n"));
        assert!(text.contains("dnh_pipeline_ring_occupancy_bucket{le=\"1\"} 0\n"));
        assert!(text.contains("dnh_pipeline_ring_occupancy_bucket{le=\"2\"} 2\n"));
        // Cumulative: every later bucket carries the 2 observations.
        assert!(text.contains("dnh_pipeline_ring_occupancy_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("dnh_pipeline_ring_occupancy_sum 4\n"));
        assert!(text.contains("dnh_pipeline_ring_occupancy_count 2\n"));
    }

    #[test]
    fn jsonl_is_one_line_and_stable() {
        let a = jsonl(&sample(), 3, 1_000_000, false);
        let b = jsonl(&sample(), 3, 1_000_000, false);
        assert_eq!(a, b);
        // Exactly one line, terminated for appending to a JSONL stream.
        assert_eq!(a.matches('\n').count(), 1);
        assert!(a.starts_with("{\"seq\":3,\"ts_micros\":1000000,\"counters\":{"));
        assert!(a.contains("\"dnh_ingest_frames_total\":42"));
        assert!(
            a.contains("\"gauges\":{\"dnh_resolver_clist_occupancy\":0,\"dnh_flow_table_size\":7}")
        );
        assert!(a.ends_with("\"histograms\":{}}\n"));
        let full = jsonl(&sample(), 0, 5, true);
        assert!(full.contains("\"dnh_net_parses_total\":99"));
        assert!(full.contains("\"dnh_pipeline_ring_occupancy\":{\"buckets\":[0,2,0"));
    }
}
