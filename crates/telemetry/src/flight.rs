//! Per-thread ring-buffer flight recorders.
//!
//! Each pipeline thread (driver, dispatcher, worker) binds its own
//! [`FlightRecorder`]: a fixed-capacity ring of atomic cells sized by
//! [`TRACE_RING_CAP`]. Recording is single-writer and allocation-free —
//! one relaxed `fetch_add` on the head plus four relaxed stores — so the
//! record path costs a TLS load and a handful of nanoseconds, cheap
//! enough to leave compiled in (the bench's `trace_overhead` section
//! holds it under the same 3% budget as the metric layer). When the ring
//! wraps, the oldest records are overwritten and a dropped counter
//! advances; exports surface that count and the fault matrix asserts it
//! stays zero at the default capacity.
//!
//! Reading a recorder from its own thread, or after joining the writer
//! thread, is exact. The dump-on-fault path ([`install_fault_dump`])
//! reads *other* threads' rings mid-flight; individual cells are atomic
//! so the dump cannot tear a word, but a record whose four cells were
//! mid-write may mix neighbours — acceptable for a post-mortem artifact,
//! and why exports tolerate unknown event ids.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, Weak};
use std::time::Instant;

use crate::trace::TraceEvent;

/// Records each flight recorder holds before drop-oldest kicks in.
/// 128Ki records × 32 bytes = 4 MiB per bound thread — large enough that
/// the full fault matrix records zero drops (asserted in
/// `tests/fault_matrix.rs`), small enough to leave enabled under `--trace-out`.
pub const TRACE_RING_CAP: usize = 1 << 17;

/// `u64` cells per record: packed event id + frame seq, timestamp, a, b.
const CELLS_PER_RECORD: usize = 4;

/// Bits of the meta cell reserved for the frame sequence number.
const SEQ_BITS: u32 = 48;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

/// Which pipeline role a recorder belongs to — one Chrome-trace lane each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LaneKind {
    /// The thread driving ingest (sequential sniffer or push-mode caller).
    Driver,
    /// A routing dispatcher (holds the `RouterState` token while routing).
    Dispatcher,
    /// A worker shard draining inbound rings.
    Worker,
}

impl LaneKind {
    /// Lane name stem used by exports (`driver`, `dispatcher`, `worker`).
    pub const fn name(self) -> &'static str {
        match self {
            LaneKind::Driver => "driver",
            LaneKind::Dispatcher => "dispatcher",
            LaneKind::Worker => "worker",
        }
    }
}

/// One decoded flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The cataloged event.
    pub event: TraceEvent,
    /// Frame sequence number at the record site (0 when not applicable).
    pub seq: u64,
    /// Packet microseconds (Stable events) or wall microseconds since the
    /// [`TraceSet`] epoch (Runtime events).
    pub ts: u64,
    /// First argument; meaning per the catalog's [`ArgKind`](crate::ArgKind).
    pub a: u64,
    /// Second argument.
    pub b: u64,
}

/// A single-writer ring of trace records owned by one pipeline thread.
pub struct FlightRecorder {
    kind: LaneKind,
    index: u16,
    head: AtomicU64,
    dropped: AtomicU64,
    cells: Box<[AtomicU64]>,
}

impl FlightRecorder {
    fn new(kind: LaneKind, index: u16) -> Self {
        let mut cells = Vec::new();
        cells.resize_with(TRACE_RING_CAP * CELLS_PER_RECORD, || AtomicU64::new(0));
        FlightRecorder {
            kind,
            index,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cells: cells.into_boxed_slice(),
        }
    }

    /// Lane identity: role + index within that role.
    pub fn lane(&self) -> (LaneKind, u16) {
        (self.kind, self.index)
    }

    /// Append one record, overwriting the oldest when full. Allocation-,
    /// lock- and format-free; relaxed atomics only.
    #[inline]
    pub fn note_event(&self, event: TraceEvent, seq: u64, ts: u64, a: u64, b: u64) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        if idx >= TRACE_RING_CAP as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let base = (idx as usize % TRACE_RING_CAP) * CELLS_PER_RECORD;
        let meta = ((event as u64) << SEQ_BITS) | (seq & SEQ_MASK);
        // One bounds check for the whole record, not four.
        if let Some(cells) = self.cells.get(base..base + CELLS_PER_RECORD) {
            for (cell, v) in cells.iter().zip([meta, ts, a, b]) {
                cell.store(v, Ordering::Relaxed);
            }
        }
    }

    /// Records overwritten before they could be exported.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Decode the ring's surviving records, oldest first. Records whose
    /// event id is unknown (torn mid-flight read) are skipped.
    pub fn records(&self) -> Vec<TraceRecord> {
        let head = self.head.load(Ordering::Relaxed);
        let kept = head.min(TRACE_RING_CAP as u64);
        let mut out = Vec::with_capacity(kept as usize);
        for i in (head - kept)..head {
            let base = (i as usize % TRACE_RING_CAP) * CELLS_PER_RECORD;
            let cell = |off: usize| {
                self.cells
                    .get(base + off)
                    .map(|c| c.load(Ordering::Relaxed))
                    .unwrap_or(0)
            };
            let meta = cell(0);
            let id = (meta >> SEQ_BITS) as u16;
            if let Some(event) = TraceEvent::from_id(id) {
                out.push(TraceRecord {
                    event,
                    seq: meta & SEQ_MASK,
                    ts: cell(1),
                    a: cell(2),
                    b: cell(3),
                });
            }
        }
        out
    }
}

/// Everything recorded by one lane, decoded for export.
pub struct LaneSnapshot {
    /// Lane role.
    pub kind: LaneKind,
    /// Index within the role (dispatcher 0, worker 3, ...).
    pub index: u16,
    /// Records overwritten in this lane before export.
    pub dropped: u64,
    /// Surviving records, oldest first.
    pub records: Vec<TraceRecord>,
}

/// The set of flight recorders for one traced run: hands out per-thread
/// recorders, owns the wall-clock epoch Runtime events are stamped
/// against, and aggregates lanes for export.
pub struct TraceSet {
    epoch: Instant,
    recorders: Mutex<Vec<Arc<FlightRecorder>>>,
}

impl TraceSet {
    /// Start a traced run; the wall-clock epoch is now.
    pub fn new() -> Arc<TraceSet> {
        Arc::new(TraceSet {
            epoch: Instant::now(),
            recorders: Mutex::new(Vec::new()),
        })
    }

    /// Create and register the recorder for one lane. Cold path (thread
    /// start): takes the registry lock and allocates the ring.
    pub fn recorder(&self, kind: LaneKind, index: u16) -> Arc<FlightRecorder> {
        let rec = Arc::new(FlightRecorder::new(kind, index));
        if let Ok(mut all) = self.recorders.lock() {
            all.push(rec.clone());
        }
        rec
    }

    /// Wall microseconds since the set's epoch (Runtime event timestamps).
    #[inline]
    pub fn wall_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Total records overwritten across all lanes — feeds the
    /// `TraceEventsDropped` Runtime metric.
    pub fn dropped_total(&self) -> u64 {
        match self.recorders.lock() {
            Ok(all) => all.iter().map(|r| r.dropped()).sum(),
            Err(_) => 0,
        }
    }

    /// Decode every lane, ordered by (role, index, registration order).
    pub fn lanes(&self) -> Vec<LaneSnapshot> {
        let mut out: Vec<LaneSnapshot> = match self.recorders.lock() {
            Ok(all) => all
                .iter()
                .map(|r| {
                    let (kind, index) = r.lane();
                    LaneSnapshot {
                        kind,
                        index,
                        dropped: r.dropped(),
                        records: r.records(),
                    }
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        out.sort_by_key(|l| (l.kind, l.index));
        out
    }
}

struct TraceBinding {
    set: Arc<TraceSet>,
    recorder: Arc<FlightRecorder>,
}

thread_local! {
    static TRACE: RefCell<Option<TraceBinding>> = const { RefCell::new(None) };
}

/// Restores the previously bound recorder (if any) when dropped.
/// Deliberately `!Send`: a binding belongs to one thread.
#[must_use = "dropping the guard immediately unbinds the flight recorder"]
pub struct TraceBindGuard {
    prev: Option<TraceBinding>,
    restore: bool,
    _thread_bound: PhantomData<*const ()>,
}

impl Drop for TraceBindGuard {
    fn drop(&mut self) {
        if self.restore {
            let prev = self.prev.take();
            let _ = TRACE.try_with(|c| {
                if let Ok(mut slot) = c.try_borrow_mut() {
                    *slot = prev;
                }
            });
        }
    }
}

/// Bind a fresh flight recorder for lane `(kind, index)` of `set` as the
/// current thread's trace sink until the guard drops.
pub fn trace_bind(set: &Arc<TraceSet>, kind: LaneKind, index: u16) -> TraceBindGuard {
    let binding = TraceBinding {
        set: set.clone(),
        recorder: set.recorder(kind, index),
    };
    let prev = TRACE
        .try_with(|c| match c.try_borrow_mut() {
            Ok(mut slot) => Some(slot.replace(binding)),
            Err(_) => None,
        })
        .ok()
        .flatten();
    match prev {
        Some(prev) => TraceBindGuard {
            prev,
            restore: true,
            _thread_bound: PhantomData,
        },
        // TLS unavailable (thread teardown): nothing installed.
        None => TraceBindGuard {
            prev: None,
            restore: false,
            _thread_bound: PhantomData,
        },
    }
}

/// Whether the current thread has a flight recorder bound.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE
        .try_with(|c| c.try_borrow().map(|slot| slot.is_some()).unwrap_or(false))
        .unwrap_or(false)
}

/// The [`TraceSet`] bound on this thread, if any — how the pipeline
/// propagates tracing to the threads it spawns (each binds its own lane).
pub fn trace_set() -> Option<Arc<TraceSet>> {
    TRACE
        .try_with(|c| {
            c.try_borrow()
                .ok()
                .and_then(|slot| slot.as_ref().map(|b| b.set.clone()))
        })
        .ok()
        .flatten()
}

#[inline]
fn with_binding(f: impl FnOnce(&TraceBinding)) {
    let _ = TRACE.try_with(|c| {
        if let Ok(slot) = c.try_borrow() {
            if let Some(b) = slot.as_ref() {
                f(b);
            }
        }
    });
}

/// Record a Stable-class event with an explicit (packet) timestamp on the
/// bound recorder; no-op when unbound. Use through [`tm_trace!`](crate::tm_trace).
#[inline]
pub fn trace_note(event: TraceEvent, seq: u64, ts: u64, a: u64, b: u64) {
    with_binding(|b_| b_.recorder.note_event(event, seq, ts, a, b));
}

/// Record a Runtime-class event stamped with wall microseconds since the
/// bound set's epoch; no-op when unbound. Use through
/// [`tm_trace_wall!`](crate::tm_trace_wall).
#[inline]
pub fn trace_note_wall(event: TraceEvent, seq: u64, a: u64, b: u64) {
    with_binding(|bind| {
        let ts = bind.set.wall_micros();
        bind.recorder.note_event(event, seq, ts, a, b);
    });
}

struct FaultDump {
    path: PathBuf,
    set: Weak<TraceSet>,
}

static FAULT_DUMP: Mutex<Option<FaultDump>> = Mutex::new(None);
static FAULT_HOOK: Once = Once::new();

/// Arm dump-on-fault: if the process panics while `set` is alive, its
/// flight recorders are flushed to `path` as a `*.trace.jsonl`
/// post-mortem artifact (the previous panic hook still runs). Re-arming
/// replaces the target; the hook itself installs once per process.
pub fn install_fault_dump(path: PathBuf, set: &Arc<TraceSet>) {
    if let Ok(mut slot) = FAULT_DUMP.lock() {
        *slot = Some(FaultDump {
            path,
            set: Arc::downgrade(set),
        });
    }
    FAULT_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            fault_dump_now();
            prev(info);
        }));
    });
}

/// Flush the armed dump target immediately (fault-matrix anomaly path).
/// Returns the path written, or `None` if nothing is armed.
pub fn fault_dump_now() -> Option<PathBuf> {
    let (path, set) = match FAULT_DUMP.lock() {
        Ok(slot) => {
            let d = slot.as_ref()?;
            (d.path.clone(), d.set.upgrade()?)
        }
        Err(_) => return None,
    };
    let body = crate::trace_export::trace_jsonl(&set);
    match std::fs::write(&path, body) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_decode_roundtrip() {
        let set = TraceSet::new();
        let rec = set.recorder(LaneKind::Worker, 3);
        rec.note_event(TraceEvent::DnsResponse, 7, 1_000_000, 0xabc, 2);
        rec.note_event(TraceEvent::FlowOpen, 8, 1_000_001, 0xdef, 443);
        let records = rec.records();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0],
            TraceRecord {
                event: TraceEvent::DnsResponse,
                seq: 7,
                ts: 1_000_000,
                a: 0xabc,
                b: 2,
            }
        );
        assert_eq!(records[1].event, TraceEvent::FlowOpen);
        assert_eq!(rec.dropped(), 0);
        assert_eq!(set.dropped_total(), 0);
    }

    #[test]
    fn ring_wrap_drops_oldest_and_counts() {
        let set = TraceSet::new();
        let rec = set.recorder(LaneKind::Driver, 0);
        let n = TRACE_RING_CAP as u64 + 10;
        for i in 0..n {
            rec.note_event(TraceEvent::FrameParse, i, i, 0, 0);
        }
        assert_eq!(rec.dropped(), 10);
        let records = rec.records();
        assert_eq!(records.len(), TRACE_RING_CAP);
        // Oldest surviving record is the 11th ever written.
        assert_eq!(records.first().map(|r| r.seq), Some(10));
        assert_eq!(records.last().map(|r| r.seq), Some(n - 1));
        assert_eq!(set.dropped_total(), 10);
    }

    #[test]
    fn unbound_trace_notes_are_noops() {
        assert!(!trace_enabled());
        trace_note(TraceEvent::FlowOpen, 1, 2, 3, 4);
        trace_note_wall(TraceEvent::WorkerDrain, 0, 1, 2);
        assert!(trace_set().is_none());
    }

    #[test]
    fn bind_routes_notes_and_nests() {
        let set = TraceSet::new();
        {
            let _g = trace_bind(&set, LaneKind::Driver, 0);
            assert!(trace_enabled());
            trace_note(TraceEvent::FlowOpen, 1, 10, 0xaa, 80);
            {
                let inner = TraceSet::new();
                let _g2 = trace_bind(&inner, LaneKind::Worker, 1);
                trace_note(TraceEvent::FlowFinish, 2, 20, 0xbb, 9);
                assert_eq!(inner.lanes().len(), 1);
            }
            // Inner guard dropped: back on the outer set.
            trace_note_wall(TraceEvent::TokenAcquire, 3, 0, 0);
        }
        assert!(!trace_enabled());
        let lanes = set.lanes();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].records.len(), 2);
        assert_eq!(lanes[0].records[0].event, TraceEvent::FlowOpen);
        assert_eq!(lanes[0].records[1].event, TraceEvent::TokenAcquire);
    }

    #[test]
    fn lanes_sort_by_role_and_index() {
        let set = TraceSet::new();
        set.recorder(LaneKind::Worker, 1);
        set.recorder(LaneKind::Dispatcher, 0);
        set.recorder(LaneKind::Worker, 0);
        set.recorder(LaneKind::Driver, 0);
        let order: Vec<(LaneKind, u16)> = set.lanes().iter().map(|l| (l.kind, l.index)).collect();
        assert_eq!(
            order,
            vec![
                (LaneKind::Driver, 0),
                (LaneKind::Dispatcher, 0),
                (LaneKind::Worker, 0),
                (LaneKind::Worker, 1),
            ]
        );
    }
}
