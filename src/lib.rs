//! Workspace-level glue: run a synthetic trace profile end-to-end through
//! the DN-Hunter sniffer and hand the report to analytics, tests and
//! examples. This is the programmatic equivalent of "capture at the PoP,
//! then analyze".

use dnhunter::{RealTimeSniffer, SnifferConfig, SnifferReport};
use dnhunter_simnet::{Trace, TraceGenerator, TraceProfile};

/// Outcome of one end-to-end run.
pub struct TraceRun {
    pub profile: TraceProfile,
    pub report: SnifferReport,
    pub ptr_zone: dnhunter_simnet::PtrZone,
    pub gen_stats: dnhunter_simnet::generator::GenStats,
}

/// Generate the trace for `profile` and replay it through a fresh sniffer.
/// `live` enables the appspot.com model (18-day deployment experiments).
pub fn run_profile(profile: TraceProfile, live: bool) -> TraceRun {
    let generator = TraceGenerator::new(profile.clone(), live);
    let trace = generator.generate();
    run_trace(profile, trace)
}

/// Replay an already-generated trace through a fresh sniffer.
pub fn run_trace(profile: TraceProfile, trace: Trace) -> TraceRun {
    let mut sniffer = RealTimeSniffer::new(SnifferConfig {
        warmup_micros: profile.warmup_micros,
        ..SnifferConfig::default()
    });
    for rec in &trace.records {
        sniffer.process_record(rec);
    }
    TraceRun {
        profile,
        report: sniffer.finish(),
        ptr_zone: trace.ptr_zone,
        gen_stats: trace.stats,
    }
}

/// Scale a profile and run it — the common pattern for fast tests and
/// examples (`scale` multiplies the client population).
pub fn run_scaled(mut profile: TraceProfile, scale: f64, live: bool) -> TraceRun {
    profile = profile.scaled(scale);
    run_profile(profile, live)
}
