//! Sliding-window equivalence: `WindowedAnalytics` must emit, for every
//! window position `[t0, t1)`, output byte-identical to running a fresh
//! `StreamingAnalytics` over the trace sliced to `[t0, t1)` — on every
//! simnet profile, at any worker count — and its per-window aggregates
//! must match the offline flow database sliced the same way. See
//! DESIGN.md "Windowed analytics and retraction".
//!
//! `FAULT_MATRIX_FULL=1` (the nightly pipeline) raises the trace scales
//! and checks *every* window position; the PR gate strides the sweep.

use std::any::Any;

use dnhunter::{
    FlowSink, ParallelSniffer, RealTimeSniffer, SnifferConfig, SnifferReport, StreamingAnalytics,
    TaggedFlow, WindowConfig, WindowSpan, WindowedAnalytics,
};
use dnhunter_dns::DomainName;
use dnhunter_net::PcapRecord;
use dnhunter_simnet::{profiles, TraceGenerator};

/// 30-minute windows stepping every 10 minutes: every emitted window
/// overlaps its neighbours, so retraction is exercised at each step.
const WINDOW_MICROS: u64 = 30 * 60 * 1_000_000;
const SLIDE_MICROS: u64 = 10 * 60 * 1_000_000;

fn full_sweep() -> bool {
    std::env::var_os("FAULT_MATRIX_FULL").is_some()
}

/// Nightly runs the same assertions on larger traces.
fn scaled(base: f64) -> f64 {
    if full_sweep() {
        base * 4.0
    } else {
        base
    }
}

fn window_cfg() -> WindowConfig {
    WindowConfig::new(WINDOW_MICROS, SLIDE_MICROS)
}

/// One engine→sink event, recorded so window slices can be replayed into
/// fresh reference sinks.
enum SinkEvent {
    Answered(u64),
    FirstDelay(u64, u64),
    AnyDelay(u64, u64),
    Flow(Box<TaggedFlow>),
}

impl SinkEvent {
    /// The timestamp the windowed sink routes this event by (flows travel
    /// on their start time).
    fn route_ts(&self) -> u64 {
        match self {
            SinkEvent::Answered(ts) | SinkEvent::FirstDelay(ts, _) | SinkEvent::AnyDelay(ts, _) => {
                *ts
            }
            SinkEvent::Flow(f) => f.first_ts,
        }
    }
}

/// A sink that records the verbatim event stream the engine produces.
#[derive(Default)]
struct RecordingSink {
    events: Vec<SinkEvent>,
}

impl FlowSink for RecordingSink {
    fn on_trace_start(&mut self, _ts: u64) {}
    fn on_answered_response(&mut self, ts: u64) {
        self.events.push(SinkEvent::Answered(ts));
    }
    fn on_first_flow_delay(&mut self, ts: u64, delay_micros: u64) {
        self.events.push(SinkEvent::FirstDelay(ts, delay_micros));
    }
    fn on_any_flow_delay(&mut self, ts: u64, delay_micros: u64) {
        self.events.push(SinkEvent::AnyDelay(ts, delay_micros));
    }
    fn on_flow_finished(&mut self, flow: &TaggedFlow) {
        self.events.push(SinkEvent::Flow(Box::new(flow.clone())));
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }
}

/// Sequential run that records the exact event stream fed to sinks.
fn record_events(records: &[PcapRecord]) -> (SnifferReport, Vec<SinkEvent>) {
    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    sniffer.set_sink(Box::new(RecordingSink::default()));
    for rec in records {
        sniffer.process_record(rec);
    }
    let (report, sinks) = sniffer.finish_with_sinks();
    let recorder = sinks
        .into_iter()
        .next()
        .expect("recording sink returned")
        .as_any_box()
        .downcast::<RecordingSink>()
        .expect("sink type");
    (report, recorder.events)
}

/// Sequential run with a windowed sink installed.
fn run_windowed_sequential(records: &[PcapRecord], cfg: WindowConfig) -> WindowedAnalytics {
    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    sniffer.set_sink(Box::new(WindowedAnalytics::new(cfg)));
    for rec in records {
        sniffer.process_record(rec);
    }
    let (_, sinks) = sniffer.finish_with_sinks();
    WindowedAnalytics::fold(sinks).expect("sequential windowed sink returned")
}

/// Parallel run, one windowed partial per worker, folded deterministically.
fn run_windowed_parallel(
    records: &[PcapRecord],
    cfg: &WindowConfig,
    workers: usize,
) -> WindowedAnalytics {
    let mut sniffer = ParallelSniffer::with_sinks(SnifferConfig::default(), workers, &mut |_| {
        Box::new(WindowedAnalytics::new(cfg.clone())) as Box<dyn FlowSink>
    });
    for rec in records {
        sniffer.process_record(rec);
    }
    let (_, sinks) = sniffer.finish_with_sinks();
    assert_eq!(sinks.len(), workers, "one windowed partial per worker");
    WindowedAnalytics::fold(sinks).expect("worker sinks returned")
}

/// The ground truth for one window: a fresh sink over the recorded event
/// stream sliced to `[span.start, span.end)`.
fn replay_slice(cfg: &WindowConfig, events: &[SinkEvent], span: WindowSpan) -> StreamingAnalytics {
    let mut sink = StreamingAnalytics::new(cfg.bucket_sink_config());
    sink.on_trace_start(span.start);
    for ev in events {
        let ts = ev.route_ts();
        if ts < span.start || ts >= span.end {
            continue;
        }
        match ev {
            SinkEvent::Answered(ts) => sink.on_answered_response(*ts),
            SinkEvent::FirstDelay(ts, d) => sink.on_first_flow_delay(*ts, *d),
            SinkEvent::AnyDelay(ts, d) => sink.on_any_flow_delay(*ts, *d),
            SinkEvent::Flow(f) => sink.on_flow_finished(f),
        }
    }
    sink
}

/// The second-level domain with the most labeled flows in a view (ties go
/// to the lexicographically first name — deterministic either way).
fn top_sld(view: &StreamingAnalytics) -> Option<(DomainName, u64)> {
    let mut best: Option<(DomainName, u64)> = None;
    for (sld, servers) in view.sld_servers() {
        let weight: u64 = servers.values().sum();
        if best.as_ref().is_none_or(|(_, w)| weight > *w) {
            best = Some((sld.clone(), weight));
        }
    }
    best
}

#[test]
fn windowed_matches_a_fresh_sink_over_every_slice_on_every_profile() {
    let mut profiles_under_test = profiles::all_paper_profiles();
    profiles_under_test.push(profiles::shifting_mix().scaled(3.0));
    for profile in profiles_under_test {
        let name = profile.name.clone();
        let trace = TraceGenerator::new(profile.scaled(scaled(0.04)), false).generate();
        let (report, events) = record_events(&trace.records);
        assert!(report.database.len() > 50, "{name}: trace too small");

        let cfg = window_cfg();
        let windowed = run_windowed_sequential(&trace.records, cfg.clone());
        assert_eq!(
            windowed.dropped_bucket_events(),
            0,
            "{name}: bucket cap engaged — windows are no longer exact"
        );

        // PR gate strides the sweep; nightly checks every position.
        let stride = if full_sweep() { 1 } else { 3 };
        let mut positions = 0u64;
        let mut checked = 0u64;
        windowed.for_each_window(|span, view| {
            assert_eq!(span.seq, positions, "{name}: seq not monotonic");
            positions += 1;
            assert_eq!(span.end % SLIDE_MICROS, 0, "{name}: {span:?} off-grid");
            assert!(
                span.end - span.start == cfg.window_micros || span.start == 0,
                "{name}: {span:?} has a bad span"
            );
            if span.seq % stride != 0 {
                return;
            }
            checked += 1;

            // Byte-identical to a fresh sink over the slice.
            let reference = replay_slice(&cfg, &events, span);
            assert!(
                view.data_eq(&reference),
                "{name}: window {span:?} state diverged from the sliced run"
            );
            assert_eq!(
                view.render(),
                reference.render(),
                "{name}: window {span:?} render diverged from the sliced run"
            );

            // And consistent with the offline flow database sliced the
            // same way (flows travel on their start timestamp).
            let slice: Vec<&TaggedFlow> = report
                .database
                .flows()
                .iter()
                .filter(|f| f.first_ts >= span.start && f.first_ts < span.end)
                .collect();
            assert_eq!(
                view.flows(),
                slice.len() as u64,
                "{name}: window {span:?} flow count vs offline slice"
            );
            let offline_fqdns: std::collections::BTreeSet<&DomainName> =
                slice.iter().filter_map(|f| f.fqdn.as_ref()).collect();
            assert_eq!(
                view.fqdn_servers().len(),
                offline_fqdns.len(),
                "{name}: window {span:?} unique FQDNs vs offline slice"
            );
        });
        assert!(
            positions > 3,
            "{name}: sweep visited only {positions} windows"
        );
        println!("{name}: {checked}/{positions} window positions verified against sliced runs");
    }
}

#[test]
fn windowed_render_is_byte_identical_at_any_worker_count() {
    let profile = profiles::eu1_adsl1().scaled(scaled(0.1));
    let trace = TraceGenerator::new(profile, false).generate();
    let cfg = window_cfg();

    let sequential = run_windowed_sequential(&trace.records, cfg.clone());
    let reference = sequential.render();
    let header = reference.lines().next().expect("header line");
    assert!(header.starts_with("{\"stream\":\"dn-hunter-windowed\""));
    assert!(header.contains("\"dropped_bucket_events\":0"), "{header}");
    assert!(
        reference.lines().count() > 3,
        "render produced no window lines:\n{reference}"
    );

    for workers in [1usize, 2, 8] {
        let parallel = run_windowed_parallel(&trace.records, &cfg, workers);
        assert_eq!(parallel.dropped_bucket_events(), 0);
        assert_eq!(
            parallel.render(),
            reference,
            "{workers}-worker windowed output diverged from sequential"
        );
    }
}

#[test]
fn shifting_mix_windows_diverge_from_the_global_aggregate() {
    // The rotating-content-mix profile exists so that sliding windows have
    // something to show: its per-window top content must change across
    // epochs and differ from the since-start aggregate. A stationary
    // profile cannot prove retraction matters; this one does.
    let profile = profiles::shifting_mix().scaled(scaled(0.25));
    let trace = TraceGenerator::new(profile, false).generate();
    // Window = one 2 h mix epoch, stepping hourly.
    let cfg = WindowConfig::new(2 * 3600 * 1_000_000, 3600 * 1_000_000);
    let windowed = run_windowed_sequential(&trace.records, cfg);
    assert_eq!(windowed.dropped_bucket_events(), 0);

    let global_top = top_sld(&windowed.totals()).expect("global aggregate has labeled flows");
    let mut window_tops: Vec<DomainName> = Vec::new();
    windowed.for_each_window(|_, view| {
        // Thin leading/trailing windows are noise; only count windows with
        // real traffic.
        if view.labeled_flows() >= 20 {
            if let Some((sld, _)) = top_sld(view) {
                window_tops.push(sld);
            }
        }
    });
    assert!(
        window_tops.len() >= 3,
        "only {} populated windows",
        window_tops.len()
    );
    let distinct: std::collections::BTreeSet<&DomainName> = window_tops.iter().collect();
    assert!(
        distinct.len() >= 2,
        "content mix never rotated: every window's top SLD is {:?}",
        window_tops.first()
    );
    assert!(
        window_tops.iter().any(|sld| *sld != global_top.0),
        "every window agrees with the global top SLD {global_top:?} — windows add nothing"
    );
}
