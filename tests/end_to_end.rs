//! End-to-end integration: synthetic trace → sniffer → labeled flows.
//! Asserts the *shape* properties the paper reports.

use dn_hunter_repro::run_scaled;
use dnhunter_flow::AppProtocol;
use dnhunter_simnet::profiles;

#[test]
fn ftth_trace_has_high_hit_ratio_and_labeled_flows() {
    let run = run_scaled(profiles::eu1_ftth(), 0.25, false);
    let report = &run.report;
    assert!(
        report.database.len() > 200,
        "flows: {}",
        report.database.len()
    );

    // Per-protocol hit ratios (Tab. 2 shape): HTTP and TLS high, P2P ~0.
    let mut stats: std::collections::HashMap<AppProtocol, (u64, u64)> = Default::default();
    for f in report.database.flows() {
        if f.in_warmup {
            continue;
        }
        let e = stats.entry(f.protocol).or_default();
        e.0 += 1;
        if f.is_tagged() {
            e.1 += 1;
        }
    }
    let ratio = |p: AppProtocol| {
        let (n, h) = stats.get(&p).copied().unwrap_or((0, 0));
        if n == 0 {
            -1.0
        } else {
            h as f64 / n as f64
        }
    };
    let http = ratio(AppProtocol::Http);
    let tls = ratio(AppProtocol::Tls);
    let p2p = ratio(AppProtocol::P2p);
    assert!(http > 0.80, "HTTP hit ratio {http}");
    assert!(tls > 0.70, "TLS hit ratio {tls}");
    assert!(
        (0.0..0.25).contains(&p2p) || p2p == -1.0,
        "P2P hit ratio {p2p}"
    );

    // Useless DNS (Tab. 9 shape): a substantial fraction, not a corner case.
    let useless = report.delays.useless_fraction();
    assert!(
        (0.25..0.70).contains(&useless),
        "useless DNS fraction {useless}"
    );

    // First-flow delay (Fig. 12 shape): most flows follow their response
    // within a second.
    let mut delays = report.delays.first_flow_delays.clone();
    assert!(!delays.is_empty());
    delays.sort_unstable();
    let p80 = delays[delays.len() * 8 / 10];
    assert!(p80 < 2_000_000, "p80 first-flow delay {p80}µs");
}

/// Tab. 2 compares hit ratios per protocol class; do the same here.
fn protocol_hit_ratio(run: &dn_hunter_repro::TraceRun, proto: AppProtocol) -> f64 {
    let (mut n, mut h) = (0u64, 0u64);
    for f in run.report.database.flows() {
        if f.in_warmup || f.protocol != proto {
            continue;
        }
        n += 1;
        h += u64::from(f.is_tagged());
    }
    if n == 0 {
        return -1.0;
    }
    h as f64 / n as f64
}

#[test]
fn mobile_trace_has_lower_hit_ratio_than_fixed_line() {
    let mobile = run_scaled(profiles::us_3g(), 0.25, false);
    let fixed = run_scaled(profiles::eu2_adsl(), 0.15, false);
    let hm = protocol_hit_ratio(&mobile, AppProtocol::Http);
    let hf = protocol_hit_ratio(&fixed, AppProtocol::Http);
    assert!(
        hm < hf - 0.05,
        "mobile HTTP {hm} should be clearly below fixed HTTP {hf}"
    );
    // And less useless DNS on mobile (Tab. 9: 30% vs ~47%).
    let um = mobile.report.delays.useless_fraction();
    let uf = fixed.report.delays.useless_fraction();
    assert!(um < uf, "useless mobile {um} vs fixed {uf}");
}

#[test]
fn encrypted_flows_carry_fqdn_labels() {
    let run = run_scaled(profiles::eu1_adsl2(), 0.2, false);
    let tls_labeled = run
        .report
        .database
        .flows()
        .iter()
        .filter(|f| f.protocol == AppProtocol::Tls && f.is_tagged())
        .count();
    assert!(tls_labeled > 20, "labeled TLS flows: {tls_labeled}");
    // Some of those have certificate CNs that differ from the label —
    // the weakness of cert inspection (Tab. 4).
    let mismatched = run
        .report
        .database
        .flows()
        .iter()
        .filter(|f| {
            matches!((&f.tls, &f.fqdn), (Some(tls), Some(fqdn))
                if tls.certificate_cn.as_deref().is_some_and(|cn| cn != fqdn.to_string()))
        })
        .count();
    assert!(mismatched > 0, "expected some cert/label mismatches");
}

#[test]
fn dns_responses_show_multi_address_answers() {
    let run = run_scaled(profiles::eu1_adsl2(), 0.2, false);
    let multi = run
        .report
        .answers_per_response
        .iter()
        .filter(|&&n| n > 1)
        .count();
    let frac = multi as f64 / run.report.answers_per_response.len().max(1) as f64;
    // §6: about 40% of responses return more than one address.
    assert!((0.15..0.65).contains(&frac), "multi-answer fraction {frac}");
    let max = run
        .report
        .answers_per_response
        .iter()
        .max()
        .copied()
        .unwrap_or(0);
    assert!(max >= 10, "expected some long answer lists, max {max}");
}

#[test]
fn truncated_responses_retry_over_tcp_and_still_tag() {
    use dnhunter_net::{Packet, TransportHeader};
    use dnhunter_simnet::TraceGenerator;

    let profile = profiles::eu2_adsl().scaled(0.06);
    let trace = TraceGenerator::new(profile.clone(), false).generate();
    // The trace must contain DNS-over-TCP segments (long google answer
    // lists exceed the UDP limit and set the TC bit).
    let mut tcp53 = 0;
    let mut truncated_udp = 0;
    for r in &trace.records {
        let Ok(pkt) = Packet::parse(&r.frame) else {
            continue;
        };
        match &pkt.transport {
            TransportHeader::Tcp(h) if h.src_port == 53 || h.dst_port == 53 => tcp53 += 1,
            TransportHeader::Udp(u) if u.src_port == 53 => {
                if let Ok(msg) = dnhunter_dns::codec::decode(&pkt.payload) {
                    truncated_udp += u32::from(msg.header.truncated);
                }
            }
            _ => {}
        }
    }
    assert!(tcp53 > 10, "expected DNS-over-TCP segments, got {tcp53}");
    assert!(truncated_udp > 0, "expected TC-bit responses");

    // And the sniffer still labels google flows (whose resolutions came
    // over TCP at least sometimes).
    let run = dn_hunter_repro::run_trace(profile, trace);
    let google: Vec<_> = run
        .report
        .database
        .by_second_level(&"google.com".parse().unwrap())
        .collect();
    assert!(!google.is_empty());
    let tagged = google.iter().filter(|f| f.is_tagged()).count();
    assert!(
        tagged * 10 >= google.len() * 7,
        "google flows tagged {tagged}/{}",
        google.len()
    );
}

#[test]
fn dual_stack_clients_get_v6_flows_tagged() {
    use dnhunter_simnet::TraceGenerator;

    let mut profile = profiles::eu1_ftth().scaled(0.3);
    profile.ipv6_client_fraction = 0.5; // exaggerate for test signal
    let trace = TraceGenerator::new(profile.clone(), false).generate();
    assert!(
        trace.stats.ipv6_flows > 5,
        "v6 flows: {}",
        trace.stats.ipv6_flows
    );

    let run = dn_hunter_repro::run_trace(profile, trace);
    let v6: Vec<_> = run
        .report
        .database
        .flows()
        .iter()
        .filter(|f| f.key.client.is_ipv6())
        .collect();
    assert!(!v6.is_empty(), "sniffer should reconstruct v6 flows");
    let tagged = v6.iter().filter(|f| f.is_tagged()).count();
    // AAAA responses over v6 feed the same resolver: v6 flows are labelled.
    assert!(
        tagged * 10 >= v6.len() * 8,
        "v6 tagged {tagged}/{}",
        v6.len()
    );
    // Labels point at google content.
    assert!(v6
        .iter()
        .filter_map(|f| f.second_level.as_ref())
        .any(|sld| {
            let s = sld.to_string();
            s.contains("google")
                || s.contains("youtube")
                || s.contains("blogspot")
                || s.contains("ytimg")
                || s.contains("appspot")
        }));
}

#[test]
fn multilabel_mode_surfaces_alternative_labels() {
    use dnhunter::{RealTimeSniffer, SnifferConfig};
    use dnhunter_resolver::ResolverConfig;
    use dnhunter_simnet::TraceGenerator;

    let profile = profiles::eu1_adsl2().scaled(0.15);
    let trace = TraceGenerator::new(profile.clone(), false).generate();
    let mut sniffer = RealTimeSniffer::new(SnifferConfig {
        warmup_micros: profile.warmup_micros,
        resolver: ResolverConfig {
            labels_per_server: 4,
            ..ResolverConfig::default()
        },
        ..SnifferConfig::default()
    });
    for r in &trace.records {
        sniffer.process_record(r);
    }
    let report = sniffer.finish();
    // Shared estates (EC2, Akamai) make several names live on one server;
    // the §6 extension surfaces them.
    let with_alts = report
        .database
        .flows()
        .iter()
        .filter(|f| !f.alt_labels.is_empty())
        .count();
    assert!(with_alts > 10, "flows with alternative labels: {with_alts}");
    // The alternatives never duplicate the primary label.
    for f in report.database.flows() {
        if let Some(primary) = &f.fqdn {
            assert!(
                !f.alt_labels.contains(primary),
                "primary duplicated for {primary}"
            );
        }
    }
}
