//! Daemon-mode equivalence: replaying the same pcap bytes through the
//! poll/backpressure event loop must render byte-identical rotated output
//! whether the source is a file or a dribbling byte stream (the FIFO/socket
//! regime: short reads, mid-record stalls, `WouldBlock`), at 1, 2, and 8
//! workers, on every simnet profile. Rotation cadence, horizons, and the
//! emitted window lines are functions of the record stream alone — never of
//! source pacing or shard count. See DESIGN.md §13.

use std::io::{Cursor, Read};
use std::sync::Arc;

use dnhunter::{
    DaemonSniffer, FlowSink, ParallelSniffer, RealTimeSniffer, Rotation, SnifferConfig,
    WindowConfig, WindowedAnalytics,
};
use dnhunter_net::{PcapFileSource, PcapRecord, PcapStreamSource, PcapWriter};
use dnhunter_simnet::{profiles, TraceGenerator};
use dnhunter_telemetry as telemetry;
use telemetry::Metric;

const WINDOW_MICROS: u64 = 30 * 60 * 1_000_000;
const SLIDE_MICROS: u64 = 10 * 60 * 1_000_000;
const ROTATE_MICROS: u64 = 10 * 60 * 1_000_000;

/// Nightly (`FAULT_MATRIX_FULL=1`) multiplies the trace scale by 4 and
/// widens the worker/source grid; the PR gate keeps the runs quick.
fn full() -> bool {
    std::env::var_os("FAULT_MATRIX_FULL").is_some()
}

fn scaled(base: f64) -> f64 {
    if full() {
        base * 4.0
    } else {
        base
    }
}

fn pcap_bytes(records: &[PcapRecord]) -> Vec<u8> {
    let mut writer = PcapWriter::new(Vec::new()).expect("header writes");
    for rec in records {
        writer.write_record(rec).expect("record writes");
    }
    writer.into_inner().expect("flushes")
}

/// A hostile byte source: short reads sized to split pcap records across
/// poll boundaries, with periodic `WouldBlock` stalls — what a FIFO or
/// non-blocking socket hands the daemon.
struct Dribble {
    data: Vec<u8>,
    pos: usize,
    tick: u64,
}

impl Read for Dribble {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.tick += 1;
        if self.tick.is_multiple_of(13) {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        // 997 is coprime to every pcap record size in play: the cut point
        // walks through header/payload boundaries as the stream advances.
        let n = buf.len().min(997).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn window_cfg() -> WindowConfig {
    WindowConfig::new(WINDOW_MICROS, SLIDE_MICROS)
}

fn make_sniffer(workers: usize) -> DaemonSniffer {
    let config = SnifferConfig::default();
    if workers > 1 {
        DaemonSniffer::Par(Box::new(ParallelSniffer::with_sinks(
            config,
            workers,
            &mut |_| Box::new(WindowedAnalytics::new(window_cfg())) as Box<dyn FlowSink>,
        )))
    } else {
        let mut s = RealTimeSniffer::new(config);
        s.set_sink(Box::new(WindowedAnalytics::new(window_cfg())));
        DaemonSniffer::Seq(Box::new(s))
    }
}

/// Run the daemon loop over `bytes` and return the rotated JSONL plus the
/// telemetry snapshot. `stream` selects the FIFO-style dribbling source.
fn run_rotated(bytes: &[u8], workers: usize, stream: bool) -> (String, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let mut sniffer = make_sniffer(workers);
    let mut rotation = Rotation::new(ROTATE_MICROS, window_cfg());
    let records = if stream {
        let mut source = PcapStreamSource::new(Dribble {
            data: bytes.to_vec(),
            pos: 0,
            tick: 0,
        });
        dnhunter::run_frame_daemon(&mut source, &mut sniffer, Some(&mut rotation), |_| {})
    } else {
        let mut source = PcapFileSource::new(Cursor::new(bytes)).expect("valid pcap");
        dnhunter::run_frame_daemon(&mut source, &mut sniffer, Some(&mut rotation), |_| {})
    }
    .expect("daemon loop completes");
    assert!(records > 0, "daemon ingested nothing");
    let (_, sinks) = sniffer.finish_with_sinks();
    let rotations = rotation.rotations;
    assert!(rotations > 0, "no rotation fired over a multi-hour trace");
    let out = rotation.emitter.finish(rotations, sinks);
    (out, registry.snapshot())
}

#[test]
fn daemon_stream_replay_matches_batch_on_every_profile() {
    for profile in profiles::all_paper_profiles() {
        let name = profile.name.clone();
        let trace = TraceGenerator::new(profile.scaled(scaled(0.006)), false).generate();
        let bytes = pcap_bytes(&trace.records);

        let (reference, refsnap) = run_rotated(&bytes, 1, false);
        assert!(
            reference.lines().count() > 2,
            "{name}: rotated output has no window lines"
        );
        assert!(
            reference.ends_with("\"dropped_bucket_events\":0}\n"),
            "{name}: rotation dropped bucket events:\n{}",
            reference.lines().last().unwrap_or("")
        );
        assert!(refsnap.get(Metric::DaemonRotations) > 0);
        assert!(refsnap.get(Metric::WindowBucketsRetired) > 0);
        assert_eq!(refsnap.get(Metric::WindowRetractUnderflow), 0, "{name}");
        let reference_prom = telemetry::prometheus(&refsnap, false);

        // (1, file) is the reference itself; every other grid cell must
        // reproduce it byte for byte.
        let grid: &[(usize, bool)] = if full() {
            &[(1, true), (2, false), (2, true), (8, false), (8, true)]
        } else {
            &[(1, true), (2, true), (8, false)]
        };
        for &(workers, stream) in grid {
            {
                let kind = if stream { "stream" } else { "file" };
                let (out, snap) = run_rotated(&bytes, workers, stream);
                assert_eq!(
                    out, reference,
                    "{name}: {workers}-worker {kind} rotated output diverged"
                );
                assert_eq!(
                    telemetry::prometheus(&snap, false),
                    reference_prom,
                    "{name}: {workers}-worker {kind} stable metrics diverged"
                );
            }
        }
    }
}

#[test]
fn rotation_cadence_does_not_change_which_windows_exist() {
    // Different rotation cadences retire buckets at different instants, but
    // the set of emitted windows and their line content must be identical:
    // the emitter replicates the batch sweep regardless of when state
    // rotates out of the live sinks.
    let trace = TraceGenerator::new(
        profiles::profile_by_name("EU1-FTTH")
            .unwrap()
            .scaled(scaled(0.006)),
        false,
    )
    .generate();
    let bytes = pcap_bytes(&trace.records);

    let strip_header = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|l| l.contains("\"window_start\""))
            .map(str::to_owned)
            .collect()
    };

    let run_at = |rotate_micros: u64| -> Vec<String> {
        let mut sniffer = make_sniffer(1);
        let mut rotation = Rotation::new(rotate_micros, window_cfg());
        let mut source = PcapFileSource::new(Cursor::new(&bytes)).expect("valid pcap");
        dnhunter::run_frame_daemon(&mut source, &mut sniffer, Some(&mut rotation), |_| {})
            .expect("daemon loop completes");
        let (_, sinks) = sniffer.finish_with_sinks();
        let rotations = rotation.rotations;
        strip_header(&rotation.emitter.finish(rotations, sinks))
    };

    // Cadences from one slide up to effectively-never (one giant interval):
    // the *set* of emitted window positions must not depend on the
    // retirement schedule. (Window contents can differ across cadences —
    // rotation deliberately evicts cross-window DNS correlation state — so
    // this pins the sweep's shape, not the summaries.)
    let reference = run_at(SLIDE_MICROS);
    assert!(!reference.is_empty());
    for cadence in [ROTATE_MICROS * 3, u64::MAX / 2] {
        let lines = run_at(cadence);
        assert_eq!(
            lines.len(),
            reference.len(),
            "cadence {cadence}: window count diverged"
        );
    }
}
