//! Golden `--explain` chains: for every paper profile, the provenance of
//! its busiest FQDN renders byte-for-byte the same as the checked-in
//! chain in `tests/golden/explain_chains.txt`. Stable trace events are a
//! pure function of the (seeded) input trace, so any drift here means a
//! semantic change to the tagging pipeline or the trace catalog — both
//! worth a deliberate golden refresh:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test provenance_golden
//! ```

use std::sync::Arc;

use dnhunter::{RealTimeSniffer, SnifferConfig, SnifferReport};
use dnhunter_simnet::{profiles, TraceGenerator};
use dnhunter_telemetry as telemetry;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("explain_chains.txt")
}

/// The busiest FQDN, ties broken by name (same pick as the grid test).
fn busiest_fqdn(report: &SnifferReport) -> String {
    report
        .database
        .fqdn_flow_counts()
        .map(|(k, v)| (k.to_string(), v))
        .max_by(|(fa, na), (fb, nb)| na.cmp(nb).then_with(|| fb.cmp(fa)))
        .map(|(f, _)| f)
        .expect("profile produced labeled flows")
}

#[test]
fn explain_chains_match_golden_file() {
    let mut rendered = String::new();
    for profile in profiles::all_paper_profiles() {
        let name = profile.name.clone();
        let trace = TraceGenerator::new(profile.scaled(0.02), false).generate();
        let registry = Arc::new(telemetry::Registry::new());
        let _guard = telemetry::bind(registry.clone());
        let trace_set = telemetry::TraceSet::new();
        let _trace_guard = telemetry::trace_bind(&trace_set, telemetry::LaneKind::Driver, 0);
        let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
        for rec in &trace.records {
            sniffer.process_record(rec);
        }
        let report = sniffer.finish();
        assert_eq!(
            dnhunter::note_trace_drops(&trace_set),
            0,
            "{name}: trace ring wrapped"
        );
        let target = dnhunter::parse_explain_target(&busiest_fqdn(&report))
            .expect("busiest FQDN parses as an explain target");
        rendered.push_str(&format!("==== {name} ====\n"));
        rendered.push_str(&telemetry::explain(&trace_set, &target));
        rendered.push('\n');
    }

    let path = golden_path();
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "explain chains drifted from {}; if intentional, refresh with GOLDEN_UPDATE=1",
        path.display()
    );
}
