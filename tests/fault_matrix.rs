//! The fault matrix: every fault class × intensity cell must be survived
//! (no panic), *counted* (each class moves its dedicated stable telemetry
//! counter), and *deterministic* (the merged parallel report stays
//! byte-identical to the sequential one even on hostile, lossy input).
//! A separate test pins graceful degradation: the tagging hit ratio falls
//! monotonically as the DNS-response drop rate rises — the mechanism the
//! paper blames for the US-3G trace's ~75% hit ratio (§4.1, Tab. 3) —
//! and never rises. See DESIGN.md §10.
//!
//! `FAULT_MATRIX_FULL=1` (the nightly pipeline) raises the trace scales;
//! the PR gate runs the same assertions on smaller traces.

use std::sync::Arc;

use dnhunter::{
    run_records_with_sinks, FlowSink, ParallelSniffer, RealTimeSniffer, SnifferConfig,
    SnifferReport, StreamingAnalytics, StreamingConfig, WindowConfig, WindowedAnalytics,
};
use dnhunter_net::PcapRecord;
use dnhunter_simnet::{profiles, FaultPlan, TraceGenerator};
use dnhunter_telemetry as telemetry;
use telemetry::Metric;

/// Nightly (`FAULT_MATRIX_FULL=1`) multiplies every trace scale by 4.
fn scaled(base: f64) -> f64 {
    if std::env::var_os("FAULT_MATRIX_FULL").is_some() {
        base * 4.0
    } else {
        base
    }
}

/// Canonical serialization of everything a report contains (the
/// `pipeline_determinism` digest): equal digests mean equal reports,
/// field for field.
fn digest(report: &SnifferReport) -> String {
    let mut out = String::new();
    let mut push = |part: Result<String, serde_json::Error>| {
        out.push_str(&part.expect("report part serializes"));
        out.push('\n');
    };
    push(serde_json::to_string(report.database.flows()));
    push(serde_json::to_string(&report.sniffer_stats));
    push(serde_json::to_string(&report.resolver_stats));
    push(serde_json::to_string(&report.delays));
    push(serde_json::to_string(&report.dns_response_times));
    push(serde_json::to_string(&report.answers_per_response));
    push(serde_json::to_string(&report.trace_start));
    push(serde_json::to_string(&report.trace_end));
    push(serde_json::to_string(&report.warmup_micros));
    out
}

/// Run the sequential sniffer under a fresh telemetry registry *and* a
/// fresh flight recorder: every matrix cell also proves that, at the
/// default `TRACE_RING_CAP`, no fault class records fast enough to wrap a
/// ring — the dropped counter (and its metric) must stay zero.
fn run_sequential(records: &[PcapRecord]) -> (SnifferReport, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let trace_set = telemetry::TraceSet::new();
    let _trace_guard = telemetry::trace_bind(&trace_set, telemetry::LaneKind::Driver, 0);
    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    for rec in records {
        sniffer.process_record(rec);
    }
    let report = sniffer.finish();
    assert_eq!(
        dnhunter::note_trace_drops(&trace_set),
        0,
        "sequential trace ring wrapped at default capacity"
    );
    let snap = registry.snapshot();
    assert_eq!(snap.get(Metric::TraceEventsDropped), 0);
    (report, snap)
}

/// Run the parallel sniffer under a fresh telemetry registry and flight
/// recorder (one lane per worker; see [`run_sequential`] on the zero-drop
/// guarantee).
fn run_parallel(records: &[PcapRecord], workers: usize) -> (SnifferReport, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let trace_set = telemetry::TraceSet::new();
    let _trace_guard = telemetry::trace_bind(&trace_set, telemetry::LaneKind::Driver, 0);
    let mut sniffer = ParallelSniffer::new(SnifferConfig::default(), workers);
    for rec in records {
        sniffer.process_record(rec);
    }
    let report = sniffer.finish();
    assert_eq!(
        dnhunter::note_trace_drops(&trace_set),
        0,
        "{workers}-worker trace rings wrapped at default capacity"
    );
    let snap = registry.snapshot();
    assert_eq!(snap.get(Metric::TraceEventsDropped), 0);
    (report, snap)
}

/// One fault class of the matrix: a name, a plan builder parameterised by
/// intensity, and the dedicated stable counters that must move.
struct FaultClass {
    name: &'static str,
    plan: fn(f64) -> FaultPlan,
    /// Counters this class must increment (all of them).
    counters: &'static [Metric],
}

const CLASSES: &[FaultClass] = &[
    FaultClass {
        name: "drop",
        plan: |rate| FaultPlan {
            drop_rate: rate,
            ..FaultPlan::default()
        },
        // A dropped mid-flow segment leaves a hole the next segment's
        // sequence number exposes.
        counters: &[Metric::TcpSeqGap],
    },
    FaultClass {
        name: "dns-response-drop",
        plan: |rate| FaultPlan {
            dns_response_drop_rate: rate,
            ..FaultPlan::default()
        },
        // Absence is not frame-observable; this class is asserted via the
        // monotone hit-ratio test below instead of a counter.
        counters: &[],
    },
    FaultClass {
        name: "duplicate",
        plan: |rate| FaultPlan {
            duplicate_rate: rate,
            ..FaultPlan::default()
        },
        counters: &[Metric::TcpSeqRewind],
    },
    FaultClass {
        name: "reorder",
        plan: |rate| FaultPlan {
            reorder_rate: rate,
            ..FaultPlan::default()
        },
        // A swap shows up as a gap (early segment) then a rewind (the
        // late one).
        counters: &[Metric::TcpSeqGap, Metric::TcpSeqRewind],
    },
    FaultClass {
        name: "truncate",
        plan: |rate| FaultPlan {
            truncate_rate: rate,
            ..FaultPlan::default()
        },
        counters: &[Metric::NetFramesTruncated],
    },
    FaultClass {
        name: "corrupt",
        plan: |rate| FaultPlan {
            corrupt_rate: rate,
            ..FaultPlan::default()
        },
        counters: &[Metric::NetChecksumErrors],
    },
    FaultClass {
        name: "midstream-start",
        plan: |rate| FaultPlan {
            // Both faces of a mid-stream start: a wall-clock cut off the
            // front of the capture (intensity = fraction of an hour), and
            // per-flow SYN stripping so data segments arrive orphaned.
            midstream_cut_micros: (rate * 3_600_000_000.0) as u64,
            syn_strip_rate: rate,
            ..FaultPlan::default()
        },
        counters: &[Metric::FlowMidstreamStarts],
    },
    FaultClass {
        name: "malicious-dns",
        plan: |rate| FaultPlan {
            malicious_rate: rate,
            ..FaultPlan::default()
        },
        counters: &[Metric::DnsDecodeErrors],
    },
];

#[test]
fn every_fault_cell_is_counted_and_deterministic() {
    let profile = profiles::eu1_adsl1().scaled(scaled(0.05));
    let trace = TraceGenerator::new(profile, false).generate();
    assert!(trace.records.len() > 1_000, "trace too small");

    for class in CLASSES {
        for intensity in [0.08, 0.3] {
            let plan = (class.plan)(intensity);
            let (records, stats) = plan.apply(&trace.records);
            assert!(
                stats.total() > 0,
                "{} @ {intensity}: plan inflicted nothing",
                class.name
            );

            // Survive + count, sequentially.
            let (report, snap) = run_sequential(&records);
            for &metric in class.counters {
                assert!(
                    snap.get(metric) > 0,
                    "{} @ {intensity}: {} never moved",
                    class.name,
                    metric.info().name
                );
            }
            // Whatever happened, the pipeline still ingested every frame
            // it was given and the report is internally consistent.
            assert_eq!(report.sniffer_stats.frames, records.len() as u64);
            assert!(report.sniffer_stats.tag_attempts >= report.sniffer_stats.tag_hits);

            // Same digest and same stable exposition for any worker count.
            let reference_digest = digest(&report);
            let reference_prom = telemetry::prometheus(&snap, false);
            for workers in [1usize, 2, 8] {
                let (preport, psnap) = run_parallel(&records, workers);
                assert_eq!(
                    digest(&preport),
                    reference_digest,
                    "{} @ {intensity}: {workers}-worker report diverged",
                    class.name
                );
                assert_eq!(
                    telemetry::prometheus(&psnap, false),
                    reference_prom,
                    "{} @ {intensity}: {workers}-worker stable metrics diverged",
                    class.name
                );
            }
        }
    }
}

#[test]
fn combined_fault_storm_is_survived_on_every_profile() {
    // All classes at once, on a small slice of every paper profile: the
    // pure no-panic sweep of the matrix.
    for profile in profiles::all_paper_profiles() {
        let name = profile.name.clone();
        let trace = TraceGenerator::new(profile.scaled(scaled(0.02)), false).generate();
        let plan = FaultPlan {
            drop_rate: 0.05,
            dns_response_drop_rate: 0.2,
            duplicate_rate: 0.05,
            reorder_rate: 0.05,
            truncate_rate: 0.03,
            corrupt_rate: 0.03,
            midstream_cut_micros: 600_000_000,
            malicious_rate: 0.02,
            ..FaultPlan::default()
        };
        let (records, stats) = plan.apply(&trace.records);
        assert!(stats.total() > 0, "{name}: storm inflicted nothing");
        let (report, snap) = run_sequential(&records);
        assert_eq!(report.sniffer_stats.frames, records.len() as u64);
        // The storm must be visible across the whole taxonomy at once.
        for metric in [
            Metric::NetFramesTruncated,
            Metric::NetChecksumErrors,
            Metric::TcpSeqGap,
            Metric::TcpSeqRewind,
            Metric::FlowMidstreamStarts,
            Metric::DnsDecodeErrors,
        ] {
            assert!(
                snap.get(metric) > 0,
                "{name}: {} never moved under the storm",
                metric.info().name
            );
        }
        // And the faulted stream still tags flows — degraded, not dead.
        assert!(report.sniffer_stats.tag_hits > 0, "{name}: tagging died");
    }
}

#[test]
fn hit_ratio_degrades_monotonically_with_dns_loss() {
    let profile = profiles::eu1_adsl1().scaled(scaled(0.15));
    let trace = TraceGenerator::new(profile, false).generate();

    let mut ratios = Vec::new();
    let mut attempts = Vec::new();
    for rate in [0.0, 0.35, 0.7, 0.95] {
        let plan = FaultPlan {
            dns_response_drop_rate: rate,
            ..FaultPlan::default()
        };
        let (records, _) = plan.apply(&trace.records);
        let (report, _) = run_sequential(&records);
        let s = &report.sniffer_stats;
        assert!(s.tag_attempts > 0, "rate {rate}: no tag attempts");
        ratios.push(s.tag_hits as f64 / s.tag_attempts as f64);
        attempts.push(s.tag_attempts);
    }
    // Dropping responses removes bindings, never flows: the denominator
    // is untouched while the numerator can only shrink.
    assert!(
        attempts.windows(2).all(|w| w[0] == w[1]),
        "tag attempts moved with DNS loss: {attempts:?}"
    );
    // Nested fault sets (same seed) make degradation *exactly* monotone,
    // not just statistically so.
    assert!(
        ratios.windows(2).all(|w| w[0] >= w[1]),
        "hit ratio rose under rising DNS loss: {ratios:?}"
    );
    // The paper's 3G-vs-ADSL gap (Tab. 3): heavy response loss costs well
    // over ten points of hit ratio.
    assert!(
        ratios[0] - ratios[3] > 0.1,
        "expected a >10pt drop, got {ratios:?}"
    );
    println!("hit ratio vs dns-response drop rate: {ratios:?}");
}

#[test]
fn streaming_analytics_degrade_monotonically_with_dns_loss() {
    // The streaming sink under the same nested DNS-response-drop fault
    // sets: it must survive every rate (panic-free), its label-dependent
    // counters can only shrink as more responses disappear, its flow count
    // must not move (drops remove bindings, never flows), and the 2-worker
    // fold must stay byte-identical to the sequential render throughout.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.1));
    let trace = TraceGenerator::new(profile, false).generate();
    let cfg = StreamingConfig {
        snapshot_interval_micros: 60 * 1_000_000,
        ..StreamingConfig::default()
    };

    let mut flows = Vec::new();
    let mut labeled = Vec::new();
    let mut answered = Vec::new();
    for rate in [0.0, 0.35, 0.7, 0.95] {
        let plan = FaultPlan {
            dns_response_drop_rate: rate,
            ..FaultPlan::default()
        };
        let (records, _) = plan.apply(&trace.records);

        let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
        sniffer.set_sink(Box::new(StreamingAnalytics::new(cfg.clone())));
        for rec in &records {
            sniffer.process_record(rec);
        }
        let (_, sinks) = sniffer.finish_with_sinks();
        let streaming = StreamingAnalytics::fold(sinks).expect("sequential sink returned");

        let mut parallel = ParallelSniffer::with_sinks(SnifferConfig::default(), 2, &mut |_| {
            Box::new(StreamingAnalytics::new(cfg.clone())) as Box<dyn FlowSink>
        });
        for rec in &records {
            parallel.process_record(rec);
        }
        let (_, psinks) = parallel.finish_with_sinks();
        let pstreaming = StreamingAnalytics::fold(psinks).expect("worker sinks returned");
        assert_eq!(
            pstreaming.render(),
            streaming.render(),
            "rate {rate}: 2-worker streaming output diverged"
        );

        flows.push(streaming.flows());
        labeled.push(streaming.labeled_flows());
        answered.push(streaming.answered_responses());
    }
    assert!(
        flows.windows(2).all(|w| w[0] == w[1]),
        "streaming flow count moved with DNS loss: {flows:?}"
    );
    assert!(
        labeled.windows(2).all(|w| w[0] >= w[1]),
        "streaming labeled flows rose under rising DNS loss: {labeled:?}"
    );
    assert!(
        answered.windows(2).all(|w| w[0] >= w[1]),
        "streaming answered responses rose under rising DNS loss: {answered:?}"
    );
    assert!(
        labeled[0] > labeled[3],
        "heavy DNS loss left labeled flows untouched: {labeled:?}"
    );
    println!("streaming labeled flows vs dns-response drop rate: {labeled:?}");
}

// --------------------------------------------------------------- windowed

/// The windowed cells run 30-minute windows stepping every 10 minutes, so
/// every render sweeps through merge *and* retraction at each position.
fn window_cfg() -> WindowConfig {
    WindowConfig::new(30 * 60 * 1_000_000, 10 * 60 * 1_000_000)
}

/// Sequential windowed run under a fresh registry. The render happens
/// *inside* the registry binding: retraction underflows are counted during
/// the window sweep, and the returned snapshot must show zero.
fn run_windowed_sequential(
    records: &[PcapRecord],
) -> (WindowedAnalytics, String, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    sniffer.set_sink(Box::new(WindowedAnalytics::new(window_cfg())));
    for rec in records {
        sniffer.process_record(rec);
    }
    let (_, sinks) = sniffer.finish_with_sinks();
    let windowed = WindowedAnalytics::fold(sinks).expect("sequential windowed sink returned");
    let render = windowed.render();
    (windowed, render, registry.snapshot())
}

/// Windowed run through the sharded pipeline (`workers` × `dispatchers`),
/// under a fresh registry, returning the folded render and the snapshot.
fn run_windowed_sharded(
    records: &[PcapRecord],
    workers: usize,
    dispatchers: usize,
) -> (WindowedAnalytics, String, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let (_, _, sinks) = run_records_with_sinks(
        &SnifferConfig::default(),
        workers,
        dispatchers,
        records,
        &mut |_| Box::new(WindowedAnalytics::new(window_cfg())) as Box<dyn FlowSink>,
    );
    assert_eq!(sinks.len(), workers, "one windowed partial per worker");
    let windowed = WindowedAnalytics::fold(sinks).expect("worker sinks returned");
    let render = windowed.render();
    (windowed, render, registry.snapshot())
}

#[test]
fn windowed_fault_cells_survive_and_retract_cleanly() {
    // Every fault class × intensity with windowing enabled: the sweep must
    // survive, never underflow a retraction (the counter is an invariant
    // breach detector, pinned to zero), never hit the bucket cap, and the
    // sharded pipeline must reproduce the sequential render byte for byte.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.04));
    let trace = TraceGenerator::new(profile, false).generate();

    for class in CLASSES {
        for intensity in [0.08, 0.3] {
            let plan = (class.plan)(intensity);
            let (records, stats) = plan.apply(&trace.records);
            assert!(
                stats.total() > 0,
                "{} @ {intensity}: plan inflicted nothing",
                class.name
            );

            let (windowed, render, snap) = run_windowed_sequential(&records);
            assert_eq!(
                snap.get(Metric::WindowRetractUnderflow),
                0,
                "{} @ {intensity}: a retraction underflowed",
                class.name
            );
            assert_eq!(
                windowed.dropped_bucket_events(),
                0,
                "{} @ {intensity}: bucket cap engaged",
                class.name
            );
            assert!(
                render.lines().count() > 1,
                "{} @ {intensity}: no window lines emitted",
                class.name
            );

            let (shard, srender, ssnap) = run_windowed_sharded(&records, 2, 2);
            assert_eq!(
                srender, render,
                "{} @ {intensity}: 2-worker/2-dispatcher windowed output diverged",
                class.name
            );
            assert_eq!(ssnap.get(Metric::WindowRetractUnderflow), 0);
            assert_eq!(shard.dropped_bucket_events(), 0);
        }
    }
}

#[test]
fn windowed_storm_renders_identically_at_any_worker_and_dispatcher_count() {
    // The full storm, swept across the worker × dispatcher grid the ISSUE
    // names: 1/2/8 workers × 1/2 dispatchers, all byte-identical.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.05));
    let trace = TraceGenerator::new(profile, false).generate();
    let plan = FaultPlan {
        drop_rate: 0.05,
        dns_response_drop_rate: 0.2,
        duplicate_rate: 0.05,
        reorder_rate: 0.05,
        truncate_rate: 0.03,
        corrupt_rate: 0.03,
        midstream_cut_micros: 600_000_000,
        malicious_rate: 0.02,
        ..FaultPlan::default()
    };
    let (records, stats) = plan.apply(&trace.records);
    assert!(stats.total() > 0, "storm inflicted nothing");

    let (_, reference, snap) = run_windowed_sequential(&records);
    assert_eq!(snap.get(Metric::WindowRetractUnderflow), 0);
    for workers in [1usize, 2, 8] {
        for dispatchers in [1usize, 2] {
            let (windowed, render, snap) = run_windowed_sharded(&records, workers, dispatchers);
            assert_eq!(
                render, reference,
                "{workers}w × {dispatchers}d windowed storm output diverged"
            );
            assert_eq!(
                snap.get(Metric::WindowRetractUnderflow),
                0,
                "{workers}w × {dispatchers}d: a retraction underflowed"
            );
            assert_eq!(windowed.dropped_bucket_events(), 0);
        }
    }
}

#[test]
fn windowed_storm_is_survived_on_every_profile() {
    // The no-panic sweep of the matrix with windowing enabled, on a slice
    // of every paper profile plus the rotating-mix stressor.
    let mut all = profiles::all_paper_profiles();
    all.push(profiles::shifting_mix());
    for profile in all {
        let name = profile.name.clone();
        let trace = TraceGenerator::new(profile.scaled(scaled(0.02)), false).generate();
        let plan = FaultPlan {
            drop_rate: 0.05,
            dns_response_drop_rate: 0.2,
            duplicate_rate: 0.05,
            reorder_rate: 0.05,
            truncate_rate: 0.03,
            corrupt_rate: 0.03,
            midstream_cut_micros: 600_000_000,
            malicious_rate: 0.02,
            ..FaultPlan::default()
        };
        let (records, stats) = plan.apply(&trace.records);
        assert!(stats.total() > 0, "{name}: storm inflicted nothing");
        let (windowed, render, snap) = run_windowed_sequential(&records);
        assert_eq!(
            snap.get(Metric::WindowRetractUnderflow),
            0,
            "{name}: a retraction underflowed under the storm"
        );
        assert_eq!(windowed.dropped_bucket_events(), 0, "{name}");
        assert!(render.lines().count() > 1, "{name}: no window lines");
        // Degraded, not dead: the windowed totals still contain labels.
        assert!(
            windowed.totals().labeled_flows() > 0,
            "{name}: windowed tagging died under the storm"
        );
    }
}

#[test]
fn windowed_hit_ratio_degrades_monotonically_with_dns_loss() {
    // The windowed aggregate under nested DNS-response-drop fault sets:
    // same monotone-degradation law the flat sink obeys, read off
    // `totals()` — and retraction stays clean at every loss rate.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.08));
    let trace = TraceGenerator::new(profile, false).generate();

    let mut flows = Vec::new();
    let mut labeled = Vec::new();
    for rate in [0.0, 0.35, 0.7, 0.95] {
        let plan = FaultPlan {
            dns_response_drop_rate: rate,
            ..FaultPlan::default()
        };
        let (records, _) = plan.apply(&trace.records);
        let (windowed, _, snap) = run_windowed_sequential(&records);
        assert_eq!(
            snap.get(Metric::WindowRetractUnderflow),
            0,
            "rate {rate}: a retraction underflowed"
        );
        let totals = windowed.totals();
        flows.push(totals.flows());
        labeled.push(totals.labeled_flows());
    }
    // Dropping responses removes labels, never flows.
    assert!(
        flows.windows(2).all(|w| w[0] == w[1]),
        "windowed flow count moved with DNS loss: {flows:?}"
    );
    assert!(
        labeled.windows(2).all(|w| w[0] >= w[1]),
        "windowed labeled flows rose under rising DNS loss: {labeled:?}"
    );
    assert!(
        labeled[0] > labeled[3],
        "heavy DNS loss left windowed labels untouched: {labeled:?}"
    );
    println!("windowed labeled flows vs dns-response drop rate: {labeled:?}");
}
