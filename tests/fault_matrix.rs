//! The fault matrix: every fault class × intensity cell must be survived
//! (no panic), *counted* (each class moves its dedicated stable telemetry
//! counter), and *deterministic* (the merged parallel report stays
//! byte-identical to the sequential one even on hostile, lossy input).
//! A separate test pins graceful degradation: the tagging hit ratio falls
//! monotonically as the DNS-response drop rate rises — the mechanism the
//! paper blames for the US-3G trace's ~75% hit ratio (§4.1, Tab. 3) —
//! and never rises. See DESIGN.md §10.
//!
//! `FAULT_MATRIX_FULL=1` (the nightly pipeline) raises the trace scales;
//! the PR gate runs the same assertions on smaller traces.

use std::io::Cursor;
use std::sync::Arc;

use dnhunter::{
    run_records_with_sinks, DaemonSniffer, FlowSink, FlowrecConfig, ParallelSniffer,
    RealTimeSniffer, Rotation, SnifferConfig, SnifferReport, StreamingAnalytics, StreamingConfig,
    WindowConfig, WindowedAnalytics,
};
use dnhunter_net::flowrec::encode_stream;
use dnhunter_net::{FlowRecReader, PcapFileSource, PcapRecord, PcapWriter};
use dnhunter_simnet::{flowexport, profiles, FaultPlan, TraceGenerator};
use dnhunter_telemetry as telemetry;
use telemetry::Metric;

/// Nightly (`FAULT_MATRIX_FULL=1`) multiplies every trace scale by 4.
fn scaled(base: f64) -> f64 {
    if std::env::var_os("FAULT_MATRIX_FULL").is_some() {
        base * 4.0
    } else {
        base
    }
}

/// Canonical serialization of everything a report contains (the
/// `pipeline_determinism` digest): equal digests mean equal reports,
/// field for field.
fn digest(report: &SnifferReport) -> String {
    let mut out = String::new();
    let mut push = |part: Result<String, serde_json::Error>| {
        out.push_str(&part.expect("report part serializes"));
        out.push('\n');
    };
    push(serde_json::to_string(report.database.flows()));
    push(serde_json::to_string(&report.sniffer_stats));
    push(serde_json::to_string(&report.resolver_stats));
    push(serde_json::to_string(&report.delays));
    push(serde_json::to_string(&report.dns_response_times));
    push(serde_json::to_string(&report.answers_per_response));
    push(serde_json::to_string(&report.trace_start));
    push(serde_json::to_string(&report.trace_end));
    push(serde_json::to_string(&report.warmup_micros));
    out
}

/// Run the sequential sniffer under a fresh telemetry registry *and* a
/// fresh flight recorder: every matrix cell also proves that, at the
/// default `TRACE_RING_CAP`, no fault class records fast enough to wrap a
/// ring — the dropped counter (and its metric) must stay zero.
fn run_sequential(records: &[PcapRecord]) -> (SnifferReport, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let trace_set = telemetry::TraceSet::new();
    let _trace_guard = telemetry::trace_bind(&trace_set, telemetry::LaneKind::Driver, 0);
    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    for rec in records {
        sniffer.process_record(rec);
    }
    let report = sniffer.finish();
    assert_eq!(
        dnhunter::note_trace_drops(&trace_set),
        0,
        "sequential trace ring wrapped at default capacity"
    );
    let snap = registry.snapshot();
    assert_eq!(snap.get(Metric::TraceEventsDropped), 0);
    (report, snap)
}

/// Run the parallel sniffer under a fresh telemetry registry and flight
/// recorder (one lane per worker; see [`run_sequential`] on the zero-drop
/// guarantee).
fn run_parallel(records: &[PcapRecord], workers: usize) -> (SnifferReport, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let trace_set = telemetry::TraceSet::new();
    let _trace_guard = telemetry::trace_bind(&trace_set, telemetry::LaneKind::Driver, 0);
    let mut sniffer = ParallelSniffer::new(SnifferConfig::default(), workers);
    for rec in records {
        sniffer.process_record(rec);
    }
    let report = sniffer.finish();
    assert_eq!(
        dnhunter::note_trace_drops(&trace_set),
        0,
        "{workers}-worker trace rings wrapped at default capacity"
    );
    let snap = registry.snapshot();
    assert_eq!(snap.get(Metric::TraceEventsDropped), 0);
    (report, snap)
}

/// One fault class of the matrix: a name, a plan builder parameterised by
/// intensity, and the dedicated stable counters that must move.
struct FaultClass {
    name: &'static str,
    plan: fn(f64) -> FaultPlan,
    /// Counters this class must increment (all of them).
    counters: &'static [Metric],
}

const CLASSES: &[FaultClass] = &[
    FaultClass {
        name: "drop",
        plan: |rate| FaultPlan {
            drop_rate: rate,
            ..FaultPlan::default()
        },
        // A dropped mid-flow segment leaves a hole the next segment's
        // sequence number exposes.
        counters: &[Metric::TcpSeqGap],
    },
    FaultClass {
        name: "dns-response-drop",
        plan: |rate| FaultPlan {
            dns_response_drop_rate: rate,
            ..FaultPlan::default()
        },
        // Absence is not frame-observable; this class is asserted via the
        // monotone hit-ratio test below instead of a counter.
        counters: &[],
    },
    FaultClass {
        name: "duplicate",
        plan: |rate| FaultPlan {
            duplicate_rate: rate,
            ..FaultPlan::default()
        },
        counters: &[Metric::TcpSeqRewind],
    },
    FaultClass {
        name: "reorder",
        plan: |rate| FaultPlan {
            reorder_rate: rate,
            ..FaultPlan::default()
        },
        // A swap shows up as a gap (early segment) then a rewind (the
        // late one).
        counters: &[Metric::TcpSeqGap, Metric::TcpSeqRewind],
    },
    FaultClass {
        name: "truncate",
        plan: |rate| FaultPlan {
            truncate_rate: rate,
            ..FaultPlan::default()
        },
        counters: &[Metric::NetFramesTruncated],
    },
    FaultClass {
        name: "corrupt",
        plan: |rate| FaultPlan {
            corrupt_rate: rate,
            ..FaultPlan::default()
        },
        counters: &[Metric::NetChecksumErrors],
    },
    FaultClass {
        name: "midstream-start",
        plan: |rate| FaultPlan {
            // Both faces of a mid-stream start: a wall-clock cut off the
            // front of the capture (intensity = fraction of an hour), and
            // per-flow SYN stripping so data segments arrive orphaned.
            midstream_cut_micros: (rate * 3_600_000_000.0) as u64,
            syn_strip_rate: rate,
            ..FaultPlan::default()
        },
        counters: &[Metric::FlowMidstreamStarts],
    },
    FaultClass {
        name: "malicious-dns",
        plan: |rate| FaultPlan {
            malicious_rate: rate,
            ..FaultPlan::default()
        },
        counters: &[Metric::DnsDecodeErrors],
    },
];

#[test]
fn every_fault_cell_is_counted_and_deterministic() {
    let profile = profiles::eu1_adsl1().scaled(scaled(0.05));
    let trace = TraceGenerator::new(profile, false).generate();
    assert!(trace.records.len() > 1_000, "trace too small");

    for class in CLASSES {
        for intensity in [0.08, 0.3] {
            let plan = (class.plan)(intensity);
            let (records, stats) = plan.apply(&trace.records);
            assert!(
                stats.total() > 0,
                "{} @ {intensity}: plan inflicted nothing",
                class.name
            );

            // Survive + count, sequentially.
            let (report, snap) = run_sequential(&records);
            for &metric in class.counters {
                assert!(
                    snap.get(metric) > 0,
                    "{} @ {intensity}: {} never moved",
                    class.name,
                    metric.info().name
                );
            }
            // Whatever happened, the pipeline still ingested every frame
            // it was given and the report is internally consistent.
            assert_eq!(report.sniffer_stats.frames, records.len() as u64);
            assert!(report.sniffer_stats.tag_attempts >= report.sniffer_stats.tag_hits);

            // Same digest and same stable exposition for any worker count.
            let reference_digest = digest(&report);
            let reference_prom = telemetry::prometheus(&snap, false);
            for workers in [1usize, 2, 8] {
                let (preport, psnap) = run_parallel(&records, workers);
                assert_eq!(
                    digest(&preport),
                    reference_digest,
                    "{} @ {intensity}: {workers}-worker report diverged",
                    class.name
                );
                assert_eq!(
                    telemetry::prometheus(&psnap, false),
                    reference_prom,
                    "{} @ {intensity}: {workers}-worker stable metrics diverged",
                    class.name
                );
            }
        }
    }
}

#[test]
fn combined_fault_storm_is_survived_on_every_profile() {
    // All classes at once, on a small slice of every paper profile: the
    // pure no-panic sweep of the matrix.
    for profile in profiles::all_paper_profiles() {
        let name = profile.name.clone();
        let trace = TraceGenerator::new(profile.scaled(scaled(0.02)), false).generate();
        let plan = FaultPlan {
            drop_rate: 0.05,
            dns_response_drop_rate: 0.2,
            duplicate_rate: 0.05,
            reorder_rate: 0.05,
            truncate_rate: 0.03,
            corrupt_rate: 0.03,
            midstream_cut_micros: 600_000_000,
            malicious_rate: 0.02,
            ..FaultPlan::default()
        };
        let (records, stats) = plan.apply(&trace.records);
        assert!(stats.total() > 0, "{name}: storm inflicted nothing");
        let (report, snap) = run_sequential(&records);
        assert_eq!(report.sniffer_stats.frames, records.len() as u64);
        // The storm must be visible across the whole taxonomy at once.
        for metric in [
            Metric::NetFramesTruncated,
            Metric::NetChecksumErrors,
            Metric::TcpSeqGap,
            Metric::TcpSeqRewind,
            Metric::FlowMidstreamStarts,
            Metric::DnsDecodeErrors,
        ] {
            assert!(
                snap.get(metric) > 0,
                "{name}: {} never moved under the storm",
                metric.info().name
            );
        }
        // And the faulted stream still tags flows — degraded, not dead.
        assert!(report.sniffer_stats.tag_hits > 0, "{name}: tagging died");
    }
}

#[test]
fn hit_ratio_degrades_monotonically_with_dns_loss() {
    let profile = profiles::eu1_adsl1().scaled(scaled(0.15));
    let trace = TraceGenerator::new(profile, false).generate();

    let mut ratios = Vec::new();
    let mut attempts = Vec::new();
    for rate in [0.0, 0.35, 0.7, 0.95] {
        let plan = FaultPlan {
            dns_response_drop_rate: rate,
            ..FaultPlan::default()
        };
        let (records, _) = plan.apply(&trace.records);
        let (report, _) = run_sequential(&records);
        let s = &report.sniffer_stats;
        assert!(s.tag_attempts > 0, "rate {rate}: no tag attempts");
        ratios.push(s.tag_hits as f64 / s.tag_attempts as f64);
        attempts.push(s.tag_attempts);
    }
    // Dropping responses removes bindings, never flows: the denominator
    // is untouched while the numerator can only shrink.
    assert!(
        attempts.windows(2).all(|w| w[0] == w[1]),
        "tag attempts moved with DNS loss: {attempts:?}"
    );
    // Nested fault sets (same seed) make degradation *exactly* monotone,
    // not just statistically so.
    assert!(
        ratios.windows(2).all(|w| w[0] >= w[1]),
        "hit ratio rose under rising DNS loss: {ratios:?}"
    );
    // The paper's 3G-vs-ADSL gap (Tab. 3): heavy response loss costs well
    // over ten points of hit ratio.
    assert!(
        ratios[0] - ratios[3] > 0.1,
        "expected a >10pt drop, got {ratios:?}"
    );
    println!("hit ratio vs dns-response drop rate: {ratios:?}");
}

#[test]
fn streaming_analytics_degrade_monotonically_with_dns_loss() {
    // The streaming sink under the same nested DNS-response-drop fault
    // sets: it must survive every rate (panic-free), its label-dependent
    // counters can only shrink as more responses disappear, its flow count
    // must not move (drops remove bindings, never flows), and the 2-worker
    // fold must stay byte-identical to the sequential render throughout.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.1));
    let trace = TraceGenerator::new(profile, false).generate();
    let cfg = StreamingConfig {
        snapshot_interval_micros: 60 * 1_000_000,
        ..StreamingConfig::default()
    };

    let mut flows = Vec::new();
    let mut labeled = Vec::new();
    let mut answered = Vec::new();
    for rate in [0.0, 0.35, 0.7, 0.95] {
        let plan = FaultPlan {
            dns_response_drop_rate: rate,
            ..FaultPlan::default()
        };
        let (records, _) = plan.apply(&trace.records);

        let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
        sniffer.set_sink(Box::new(StreamingAnalytics::new(cfg.clone())));
        for rec in &records {
            sniffer.process_record(rec);
        }
        let (_, sinks) = sniffer.finish_with_sinks();
        let streaming = StreamingAnalytics::fold(sinks).expect("sequential sink returned");

        let mut parallel = ParallelSniffer::with_sinks(SnifferConfig::default(), 2, &mut |_| {
            Box::new(StreamingAnalytics::new(cfg.clone())) as Box<dyn FlowSink>
        });
        for rec in &records {
            parallel.process_record(rec);
        }
        let (_, psinks) = parallel.finish_with_sinks();
        let pstreaming = StreamingAnalytics::fold(psinks).expect("worker sinks returned");
        assert_eq!(
            pstreaming.render(),
            streaming.render(),
            "rate {rate}: 2-worker streaming output diverged"
        );

        flows.push(streaming.flows());
        labeled.push(streaming.labeled_flows());
        answered.push(streaming.answered_responses());
    }
    assert!(
        flows.windows(2).all(|w| w[0] == w[1]),
        "streaming flow count moved with DNS loss: {flows:?}"
    );
    assert!(
        labeled.windows(2).all(|w| w[0] >= w[1]),
        "streaming labeled flows rose under rising DNS loss: {labeled:?}"
    );
    assert!(
        answered.windows(2).all(|w| w[0] >= w[1]),
        "streaming answered responses rose under rising DNS loss: {answered:?}"
    );
    assert!(
        labeled[0] > labeled[3],
        "heavy DNS loss left labeled flows untouched: {labeled:?}"
    );
    println!("streaming labeled flows vs dns-response drop rate: {labeled:?}");
}

// --------------------------------------------------------------- windowed

/// The windowed cells run 30-minute windows stepping every 10 minutes, so
/// every render sweeps through merge *and* retraction at each position.
fn window_cfg() -> WindowConfig {
    WindowConfig::new(30 * 60 * 1_000_000, 10 * 60 * 1_000_000)
}

/// Sequential windowed run under a fresh registry. The render happens
/// *inside* the registry binding: retraction underflows are counted during
/// the window sweep, and the returned snapshot must show zero.
fn run_windowed_sequential(
    records: &[PcapRecord],
) -> (WindowedAnalytics, String, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    sniffer.set_sink(Box::new(WindowedAnalytics::new(window_cfg())));
    for rec in records {
        sniffer.process_record(rec);
    }
    let (_, sinks) = sniffer.finish_with_sinks();
    let windowed = WindowedAnalytics::fold(sinks).expect("sequential windowed sink returned");
    let render = windowed.render();
    (windowed, render, registry.snapshot())
}

/// Windowed run through the sharded pipeline (`workers` × `dispatchers`),
/// under a fresh registry, returning the folded render and the snapshot.
fn run_windowed_sharded(
    records: &[PcapRecord],
    workers: usize,
    dispatchers: usize,
) -> (WindowedAnalytics, String, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let (_, _, sinks) = run_records_with_sinks(
        &SnifferConfig::default(),
        workers,
        dispatchers,
        records,
        &mut |_| Box::new(WindowedAnalytics::new(window_cfg())) as Box<dyn FlowSink>,
    );
    assert_eq!(sinks.len(), workers, "one windowed partial per worker");
    let windowed = WindowedAnalytics::fold(sinks).expect("worker sinks returned");
    let render = windowed.render();
    (windowed, render, registry.snapshot())
}

#[test]
fn windowed_fault_cells_survive_and_retract_cleanly() {
    // Every fault class × intensity with windowing enabled: the sweep must
    // survive, never underflow a retraction (the counter is an invariant
    // breach detector, pinned to zero), never hit the bucket cap, and the
    // sharded pipeline must reproduce the sequential render byte for byte.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.04));
    let trace = TraceGenerator::new(profile, false).generate();

    for class in CLASSES {
        for intensity in [0.08, 0.3] {
            let plan = (class.plan)(intensity);
            let (records, stats) = plan.apply(&trace.records);
            assert!(
                stats.total() > 0,
                "{} @ {intensity}: plan inflicted nothing",
                class.name
            );

            let (windowed, render, snap) = run_windowed_sequential(&records);
            assert_eq!(
                snap.get(Metric::WindowRetractUnderflow),
                0,
                "{} @ {intensity}: a retraction underflowed",
                class.name
            );
            assert_eq!(
                windowed.dropped_bucket_events(),
                0,
                "{} @ {intensity}: bucket cap engaged",
                class.name
            );
            assert!(
                render.lines().count() > 1,
                "{} @ {intensity}: no window lines emitted",
                class.name
            );

            let (shard, srender, ssnap) = run_windowed_sharded(&records, 2, 2);
            assert_eq!(
                srender, render,
                "{} @ {intensity}: 2-worker/2-dispatcher windowed output diverged",
                class.name
            );
            assert_eq!(ssnap.get(Metric::WindowRetractUnderflow), 0);
            assert_eq!(shard.dropped_bucket_events(), 0);
        }
    }
}

#[test]
fn windowed_storm_renders_identically_at_any_worker_and_dispatcher_count() {
    // The full storm, swept across the worker × dispatcher grid the ISSUE
    // names: 1/2/8 workers × 1/2 dispatchers, all byte-identical.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.05));
    let trace = TraceGenerator::new(profile, false).generate();
    let plan = FaultPlan {
        drop_rate: 0.05,
        dns_response_drop_rate: 0.2,
        duplicate_rate: 0.05,
        reorder_rate: 0.05,
        truncate_rate: 0.03,
        corrupt_rate: 0.03,
        midstream_cut_micros: 600_000_000,
        malicious_rate: 0.02,
        ..FaultPlan::default()
    };
    let (records, stats) = plan.apply(&trace.records);
    assert!(stats.total() > 0, "storm inflicted nothing");

    let (_, reference, snap) = run_windowed_sequential(&records);
    assert_eq!(snap.get(Metric::WindowRetractUnderflow), 0);
    for workers in [1usize, 2, 8] {
        for dispatchers in [1usize, 2] {
            let (windowed, render, snap) = run_windowed_sharded(&records, workers, dispatchers);
            assert_eq!(
                render, reference,
                "{workers}w × {dispatchers}d windowed storm output diverged"
            );
            assert_eq!(
                snap.get(Metric::WindowRetractUnderflow),
                0,
                "{workers}w × {dispatchers}d: a retraction underflowed"
            );
            assert_eq!(windowed.dropped_bucket_events(), 0);
        }
    }
}

#[test]
fn windowed_storm_is_survived_on_every_profile() {
    // The no-panic sweep of the matrix with windowing enabled, on a slice
    // of every paper profile plus the rotating-mix stressor.
    let mut all = profiles::all_paper_profiles();
    all.push(profiles::shifting_mix());
    for profile in all {
        let name = profile.name.clone();
        let trace = TraceGenerator::new(profile.scaled(scaled(0.02)), false).generate();
        let plan = FaultPlan {
            drop_rate: 0.05,
            dns_response_drop_rate: 0.2,
            duplicate_rate: 0.05,
            reorder_rate: 0.05,
            truncate_rate: 0.03,
            corrupt_rate: 0.03,
            midstream_cut_micros: 600_000_000,
            malicious_rate: 0.02,
            ..FaultPlan::default()
        };
        let (records, stats) = plan.apply(&trace.records);
        assert!(stats.total() > 0, "{name}: storm inflicted nothing");
        let (windowed, render, snap) = run_windowed_sequential(&records);
        assert_eq!(
            snap.get(Metric::WindowRetractUnderflow),
            0,
            "{name}: a retraction underflowed under the storm"
        );
        assert_eq!(windowed.dropped_bucket_events(), 0, "{name}");
        assert!(render.lines().count() > 1, "{name}: no window lines");
        // Degraded, not dead: the windowed totals still contain labels.
        assert!(
            windowed.totals().labeled_flows() > 0,
            "{name}: windowed tagging died under the storm"
        );
    }
}

// --------------------------------------------------------------- rotation

/// Run the faulted records through the daemon loop with rotation enabled,
/// returning the rotated JSONL and the snapshot. Retire-and-emit replaces
/// the bucket-cap overflow drop, so `dropped_bucket_events` must be zero in
/// every cell regardless of fault class.
fn run_rotated(records: &[PcapRecord], workers: usize) -> (String, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let mut writer = PcapWriter::new(Vec::new()).expect("header writes");
    for rec in records {
        writer.write_record(rec).expect("record writes");
    }
    let bytes = writer.into_inner().expect("flushes");

    let mut sniffer = if workers > 1 {
        DaemonSniffer::Par(Box::new(ParallelSniffer::with_sinks(
            SnifferConfig::default(),
            workers,
            &mut |_| Box::new(WindowedAnalytics::new(window_cfg())) as Box<dyn FlowSink>,
        )))
    } else {
        let mut s = RealTimeSniffer::new(SnifferConfig::default());
        s.set_sink(Box::new(WindowedAnalytics::new(window_cfg())));
        DaemonSniffer::Seq(Box::new(s))
    };
    let mut rotation = Rotation::new(10 * 60 * 1_000_000, window_cfg());
    let mut source = PcapFileSource::new(Cursor::new(&bytes)).expect("valid pcap");
    dnhunter::run_frame_daemon(&mut source, &mut sniffer, Some(&mut rotation), |_| {})
        .expect("daemon loop survives the fault cell");
    let (_, sinks) = sniffer.finish_with_sinks();
    let rotations = rotation.rotations;
    assert!(rotations > 0, "no rotation fired in a fault cell");
    (
        rotation.emitter.finish(rotations, sinks),
        registry.snapshot(),
    )
}

#[test]
fn rotated_fault_cells_retire_and_emit_without_drops() {
    // Every fault class × intensity through the rotating daemon: rotation
    // must retire-and-emit (never engage the bucket-cap drop), retraction
    // must stay clean, and the 2-worker rotated output must reproduce the
    // sequential one byte for byte even on hostile input.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.04));
    let trace = TraceGenerator::new(profile, false).generate();

    for class in CLASSES {
        for intensity in [0.08, 0.3] {
            let plan = (class.plan)(intensity);
            let (records, stats) = plan.apply(&trace.records);
            assert!(
                stats.total() > 0,
                "{} @ {intensity}: plan inflicted nothing",
                class.name
            );

            let (out, snap) = run_rotated(&records, 1);
            assert!(
                out.ends_with("\"dropped_bucket_events\":0}\n"),
                "{} @ {intensity}: rotation dropped bucket events:\n{}",
                class.name,
                out.lines().last().unwrap_or("")
            );
            assert_eq!(
                snap.get(Metric::WindowRetractUnderflow),
                0,
                "{} @ {intensity}: a retraction underflowed under rotation",
                class.name
            );
            assert!(snap.get(Metric::DaemonRotations) > 0);
            assert!(snap.get(Metric::WindowBucketsRetired) > 0);

            let (pout, psnap) = run_rotated(&records, 2);
            assert_eq!(
                pout, out,
                "{} @ {intensity}: 2-worker rotated output diverged",
                class.name
            );
            assert_eq!(psnap.get(Metric::WindowRetractUnderflow), 0);
        }
    }
}

// --------------------------------------------------------------- flowrec

/// Run an encoded DNFR stream through the flow-record daemon, returning
/// the stats, the report, and the snapshot.
fn run_flowrec(
    bytes: &[u8],
    cfg: &FlowrecConfig,
) -> (dnhunter::FlowrecStats, SnifferReport, telemetry::Snapshot) {
    let registry = Arc::new(telemetry::Registry::new());
    let _guard = telemetry::bind(registry.clone());
    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    let mut reader = FlowRecReader::new(Cursor::new(bytes)).expect("valid header");
    let stats = dnhunter::run_flowrec_daemon(&mut reader, &mut sniffer, cfg, None)
        .expect("flow-record stream ingests");
    (stats, sniffer.finish(), registry.snapshot())
}

#[test]
fn flowrec_skew_and_reorder_cells_are_counted_and_survived() {
    // The flow-record regime under seeded export skew/reorder (the
    // flowexport jitter model): DNS must still tag flows through the
    // reorder buffer, a too-tight skew bound shows up on the late-records
    // counter, capacity pressure shows up on the skew-overflow counter, and
    // nothing ever panics.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.04));
    let trace = TraceGenerator::new(profile, false).generate();
    let stream = flowexport::export_stream(&trace.records, 7, 53);
    assert!(stream.len() > 500, "export stream too small");
    let bytes = encode_stream(&stream);

    // Generous skew, generous capacity: clean correlation, zero faults.
    let roomy = FlowrecConfig::default();
    let (stats, report, snap) = run_flowrec(&bytes, &roomy);
    assert_eq!(stats.skew_overflow, 0, "clean stream counted skew overflow");
    assert_eq!(stats.late_records, 0, "clean stream counted late records");
    assert_eq!(
        stats.dns_records + stats.flow_records,
        stream.len() as u64,
        "records lost in the reorder buffer"
    );
    assert!(
        report.sniffer_stats.tag_hits > 0,
        "flow-record regime tagged nothing"
    );
    assert_eq!(snap.get(Metric::FlowrecSkewOverflow), 0);

    // Skew bound tighter than the export jitter: late releases, counted,
    // still ingested in full.
    let tight = FlowrecConfig {
        skew_micros: 50_000,
        ..FlowrecConfig::default()
    };
    let (stats, report, snap) = run_flowrec(&bytes, &tight);
    assert!(
        stats.late_records > 0,
        "sub-jitter skew bound never saw a late record"
    );
    assert!(snap.get(Metric::FlowrecLateRecords) > 0);
    assert_eq!(stats.dns_records + stats.flow_records, stream.len() as u64);
    assert!(report.sniffer_stats.tag_hits > 0, "tagging died under skew");

    // Capacity pressure: forced early releases, counted as skew overflow.
    let cramped = FlowrecConfig {
        capacity: 8,
        ..FlowrecConfig::default()
    };
    let (stats, _, snap) = run_flowrec(&bytes, &cramped);
    assert!(
        stats.skew_overflow > 0,
        "8-slot reorder buffer never overflowed"
    );
    assert!(snap.get(Metric::FlowrecSkewOverflow) > 0);
    assert_eq!(stats.dns_records + stats.flow_records, stream.len() as u64);
}

#[test]
fn flowrec_decode_faults_error_cleanly_mid_stream() {
    // Truncation and corruption of the export stream surface as counted
    // errors after a clean partial ingest — never as panics.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.02));
    let trace = TraceGenerator::new(profile, false).generate();
    let stream = flowexport::export_stream(&trace.records, 7, 53);
    let bytes = encode_stream(&stream);

    for (name, mutate) in [
        ("truncate", {
            fn cut(b: &[u8]) -> Vec<u8> {
                b[..b.len() * 2 / 3 + 3].to_vec()
            }
            cut as fn(&[u8]) -> Vec<u8>
        }),
        ("corrupt", {
            fn flip(b: &[u8]) -> Vec<u8> {
                let mut v = b.to_vec();
                let mid = v.len() / 2;
                // A long 0xff run is guaranteed to cross a record boundary,
                // where it reads as an invalid type or oversize length.
                let end = (mid + 4096).min(v.len());
                for byte in &mut v[mid..end] {
                    *byte = 0xff;
                }
                v
            }
            flip as fn(&[u8]) -> Vec<u8>
        }),
    ] {
        let registry = Arc::new(telemetry::Registry::new());
        let _guard = telemetry::bind(registry.clone());
        let mangled = mutate(&bytes);
        let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
        let mut reader = FlowRecReader::new(Cursor::new(&mangled)).expect("header intact");
        let result = dnhunter::run_flowrec_daemon(
            &mut reader,
            &mut sniffer,
            &FlowrecConfig::default(),
            None,
        );
        assert!(result.is_err(), "{name}: mangled stream decoded cleanly");
        assert!(
            registry.snapshot().get(Metric::FlowrecDecodeErrors) > 0,
            "{name}: decode error was not counted"
        );
        // The sniffer survives the partial ingest and still finishes.
        let _ = sniffer.finish();
    }
}

#[test]
fn windowed_hit_ratio_degrades_monotonically_with_dns_loss() {
    // The windowed aggregate under nested DNS-response-drop fault sets:
    // same monotone-degradation law the flat sink obeys, read off
    // `totals()` — and retraction stays clean at every loss rate.
    let profile = profiles::eu1_adsl1().scaled(scaled(0.08));
    let trace = TraceGenerator::new(profile, false).generate();

    let mut flows = Vec::new();
    let mut labeled = Vec::new();
    for rate in [0.0, 0.35, 0.7, 0.95] {
        let plan = FaultPlan {
            dns_response_drop_rate: rate,
            ..FaultPlan::default()
        };
        let (records, _) = plan.apply(&trace.records);
        let (windowed, _, snap) = run_windowed_sequential(&records);
        assert_eq!(
            snap.get(Metric::WindowRetractUnderflow),
            0,
            "rate {rate}: a retraction underflowed"
        );
        let totals = windowed.totals();
        flows.push(totals.flows());
        labeled.push(totals.labeled_flows());
    }
    // Dropping responses removes labels, never flows.
    assert!(
        flows.windows(2).all(|w| w[0] == w[1]),
        "windowed flow count moved with DNS loss: {flows:?}"
    );
    assert!(
        labeled.windows(2).all(|w| w[0] >= w[1]),
        "windowed labeled flows rose under rising DNS loss: {labeled:?}"
    );
    assert!(
        labeled[0] > labeled[3],
        "heavy DNS loss left windowed labels untouched: {labeled:?}"
    );
    println!("windowed labeled flows vs dns-response drop rate: {labeled:?}");
}
