//! The 18-day live-deployment experiments (§5.6) end-to-end at small scale.

use dn_hunter_repro::run_scaled;
use dnhunter_analytics::appspot::appspot_report;
use dnhunter_analytics::growth::growth_curves;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_simnet::profiles;

#[test]
fn live_trace_reproduces_the_appspot_story() {
    let run = run_scaled(profiles::live_profile(), 0.12, true);
    let suffixes = SuffixSet::builtin();
    let origin = run.report.trace_start.unwrap_or(0);
    let four_hours = 4 * 3600 * 1_000_000;
    let report = appspot_report(&run.report.database, &suffixes, origin, four_hours);

    // Trackers exist and behave like Tab. 8: more flows than the general
    // apps, far fewer bytes, relatively upload-heavy.
    assert!(
        report.trackers.services >= 10,
        "trackers: {}",
        report.trackers.services
    );
    assert!(
        report.general.services >= 20,
        "apps: {}",
        report.general.services
    );
    assert!(
        report.trackers.flows > report.general.flows,
        "tracker flows {} vs general {}",
        report.trackers.flows,
        report.general.flows
    );
    assert!(report.general.bytes_s2c > report.trackers.bytes_s2c);
    let t_ratio = report.trackers.bytes_c2s as f64 / report.trackers.bytes_s2c.max(1) as f64;
    let g_ratio = report.general.bytes_c2s as f64 / report.general.bytes_s2c.max(1) as f64;
    assert!(
        t_ratio > g_ratio * 3.0,
        "upload ratios {t_ratio} vs {g_ratio}"
    );

    // Fig. 10: the tag cloud names the tracker families.
    let tokens: Vec<&str> = report.tag_cloud.iter().map(|(t, _)| t.as_str()).collect();
    assert!(tokens
        .iter()
        .any(|t| *t == "tracker" || *t == "rlskingbt" || *t == "swarm"));

    // Fig. 11: a meaningful tracker population with multi-bin activity.
    assert!(report.tracker_timeline.len() >= 10);
    let busiest = report
        .tracker_timeline
        .iter()
        .map(|(_, bins)| bins.len())
        .max()
        .unwrap_or(0);
    assert!(busiest > 20, "busiest tracker active in {busiest} bins");

    // Fig. 6: FQDNs keep growing; organizations saturate.
    let day = 24 * 3600 * 1_000_000u64;
    let g = growth_curves(&run.report.database, origin, day);
    let (fq, sld, _ip) = g.totals();
    assert!(fq > 300, "unique FQDNs {fq}");
    assert!(sld < 100, "unique 2nd-level {sld}");
    let fq_tail = dnhunter_analytics::growth::GrowthCurves::tail_growth(&g.unique_fqdns, 3);
    let sld_tail =
        dnhunter_analytics::growth::GrowthCurves::tail_growth(&g.unique_second_levels, 3);
    assert!(fq_tail > 10, "FQDNs should still be growing: +{fq_tail}");
    assert!(
        sld_tail <= 2,
        "organizations should have saturated: +{sld_tail}"
    );
}
