//! Calibration harness: prints Tab. 2 / Tab. 9-style numbers for scaled
//! profiles. Run explicitly with:
//! `cargo test --test calibration -- --ignored --nocapture`

use std::collections::HashMap;

use dn_hunter_repro::run_scaled;
use dnhunter_flow::AppProtocol;
use dnhunter_simnet::profiles;

fn per_protocol(run: &dn_hunter_repro::TraceRun) -> HashMap<AppProtocol, (u64, u64)> {
    let mut stats: HashMap<AppProtocol, (u64, u64)> = HashMap::new();
    for f in run.report.database.flows() {
        if f.in_warmup {
            continue;
        }
        let e = stats.entry(f.protocol).or_default();
        e.0 += 1;
        if f.is_tagged() {
            e.1 += 1;
        }
    }
    stats
}

#[test]
#[ignore = "calibration printout, run on demand"]
fn print_hit_ratios_all_profiles() {
    for profile in profiles::all_paper_profiles() {
        let name = profile.name.clone();
        let run = run_scaled(profile, 0.25, false);
        let stats = per_protocol(&run);
        println!("=== {name} ===");
        println!(
            "  flows={} dns_resp={} useless={:.0}%",
            run.report.database.len(),
            run.report.sniffer_stats.dns_responses,
            run.report.delays.useless_fraction() * 100.0
        );
        let mut keys: Vec<_> = stats.keys().copied().collect();
        keys.sort_by_key(|k| k.label());
        for k in keys {
            let (n, h) = stats[&k];
            println!(
                "  {:<6} {:>6} flows  hit {:>5.1}%",
                k.label(),
                n,
                100.0 * h as f64 / n as f64
            );
        }
    }
}

#[test]
#[ignore = "degree diagnostics, run on demand"]
fn print_degree_breakdown() {
    use std::collections::{HashMap, HashSet};
    let run = run_scaled(profiles::eu2_adsl(), 0.25, false);
    let mut fqdn_ips: HashMap<String, HashSet<std::net::IpAddr>> = HashMap::new();
    for f in run.report.database.flows() {
        if let Some(fq) = &f.fqdn {
            fqdn_ips
                .entry(fq.to_string())
                .or_default()
                .insert(f.key.server);
        }
    }
    let mut per_sld: HashMap<String, (u32, u32)> = HashMap::new(); // (single, multi)
    for (fq, ips) in &fqdn_ips {
        let sld = fq.rsplit('.').take(2).collect::<Vec<_>>().join(".");
        let e = per_sld.entry(sld).or_default();
        if ips.len() == 1 {
            e.0 += 1
        } else {
            e.1 += 1
        }
    }
    let mut v: Vec<_> = per_sld.into_iter().collect();
    v.sort_by_key(|(_, (s, m))| std::cmp::Reverse(s + m));
    println!("total distinct fqdns: {}", fqdn_ips.len());
    for (sld, (s, m)) in v.into_iter().take(20) {
        println!("{sld:>22}  single={s:<5} multi={m}");
    }
}
