//! The offline analyzer over a real end-to-end run: Algorithms 2–4 and the
//! baseline comparisons, on sniffer output rather than hand-built rows.

use dn_hunter_repro::run_scaled;
use dnhunter_analytics::confusion::{answer_list_report, confusion_report};
use dnhunter_analytics::content::top_domains_on_org;
use dnhunter_analytics::degree::degree_report;
use dnhunter_analytics::spatial::{hosting_breakdown, spatial_discovery};
use dnhunter_analytics::tags::extract_tags;
use dnhunter_analytics::tree::domain_tree;
use dnhunter_baselines::{certificate_comparison, reverse_lookup_comparison};
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_orgdb::builtin_registry;
use dnhunter_simnet::profiles;

#[test]
fn spatial_and_content_discovery_agree_with_the_catalog() {
    // Amazon's expected share of zynga flows is ~0.54, so the >0.5
    // assertion needs enough flows for the share to concentrate.
    let run = run_scaled(profiles::us_3g(), 0.75, false);
    let db = &run.report.database;
    let suffixes = SuffixSet::builtin();
    let orgdb = builtin_registry();

    // Algorithm 2 on a Zynga FQDN finds the whole organization.
    let spatial = spatial_discovery(db, &"cityville.zynga.com".parse().unwrap(), &suffixes);
    assert_eq!(spatial.second_level.to_string(), "zynga.com");
    assert!(!spatial.org_servers.is_empty());

    // The Fig. 8 tree splits Zynga across Amazon / Akamai / self.
    let tree = domain_tree(db, &"zynga.com".parse().unwrap(), &orgdb, &suffixes);
    assert!(tree.total_flows > 10, "zynga flows: {}", tree.total_flows);
    let amazon = tree.groups.iter().find(|g| g.org == "amazon");
    assert!(amazon.is_some(), "zynga should be served by amazon");
    assert!(
        amazon.unwrap().flow_share > 0.5,
        "amazon should dominate zynga flows"
    );

    // Algorithm 3: Amazon's top tenants include cloudfront.
    let top = top_domains_on_org(db, &orgdb, "amazon", 10, &suffixes);
    assert!(top.iter().any(|(d, _)| d.to_string() == "cloudfront.net"));
    // And zynga appears among EC2 tenants too.
    assert!(top.iter().any(|(d, _)| d.to_string() == "zynga.com"));
}

#[test]
fn fig9_hosting_matrix_shape() {
    let us = run_scaled(profiles::us_3g(), 0.25, false);
    let eu = run_scaled(profiles::eu1_adsl2(), 0.25, false);
    let orgdb = builtin_registry();
    let twitter = "twitter.com".parse().unwrap();
    let akamai_share = |run: &dn_hunter_repro::TraceRun| {
        hosting_breakdown(&run.report.database, &twitter, &orgdb)
            .iter()
            .find(|s| s.host == "akamai")
            .map(|s| s.flow_share)
            .unwrap_or(0.0)
    };
    // Twitter leans on Akamai in Europe far more than in the US (Fig. 9).
    assert!(
        akamai_share(&eu) > akamai_share(&us),
        "EU akamai share {} should exceed US {}",
        akamai_share(&eu),
        akamai_share(&us)
    );
}

#[test]
fn service_tags_identify_the_mystery_tracker_port() {
    // Tracker announces are rare (a few % of clients are P2P users), so
    // small scales can leave port 1337 with no visibly-resolved flows.
    let run = run_scaled(profiles::us_3g(), 0.75, false);
    let suffixes = SuffixSet::builtin();
    let tags = extract_tags(&run.report.database, 1337, 4, &suffixes);
    // The paper's showcase: port 1337 yields "exodus"/"genesis".
    let tokens: Vec<&str> = tags.iter().map(|t| t.token.as_str()).collect();
    assert!(
        tokens.contains(&"exodus") || tokens.contains(&"genesis"),
        "got {tokens:?}"
    );
}

#[test]
fn baselines_underperform_dn_hunter() {
    let run = run_scaled(profiles::eu1_adsl2(), 0.25, false);
    let suffixes = SuffixSet::builtin();

    // Reverse lookup: full matches must be a small minority (Tab. 3).
    let rev = reverse_lookup_comparison(&run.report.database, &run.ptr_zone, &suffixes, 500, 7);
    let f = rev.fractions();
    assert!(f[0] < 0.35, "exact reverse matches too common: {}", f[0]);
    assert!(
        f[2] + f[3] > 0.4,
        "different+no-answer should dominate: {} + {}",
        f[2],
        f[3]
    );

    // Certificate inspection: exact CN matches a small minority (Tab. 4).
    let cert = certificate_comparison(&run.report.database, &suffixes);
    let cf = cert.fractions();
    assert!(cert.total() > 30);
    assert!(cf[0] < 0.4, "exact CN matches too common: {}", cf[0]);
    assert!(cf[3] > 0.05, "some sessions resume without certificates");
}

#[test]
fn section6_statistics_hold() {
    let run = run_scaled(profiles::eu1_adsl2(), 0.25, false);
    let suffixes = SuffixSet::builtin();

    let answers = answer_list_report(&run.report.answers_per_response);
    assert!(answers.responses > 100);
    assert!(
        (0.4..0.85).contains(&answers.fraction_single),
        "single-answer fraction {}",
        answers.fraction_single
    );
    assert!(answers.max >= 10, "some long answer lists expected");

    let conf = confusion_report(&run.report.database, &run.report.resolver_stats, &suffixes);
    // Excluding redirections, confusion is small (paper: < 4%).
    assert!(
        conf.ambiguous_excluding_redirects < 0.10,
        "cross-org confusion {}",
        conf.ambiguous_excluding_redirects
    );

    let deg = degree_report(&run.report.database);
    // Fig. 3's 82% single-IP figure is measured on EU2-ADSL (one CDN remap
    // window); EU1-ADSL2 crosses a remap boundary, so the bar is lower here.
    assert!(
        deg.single_ip_fqdn_fraction > 0.45,
        "most FQDNs map to one address: {}",
        deg.single_ip_fqdn_fraction
    );
    assert!(deg.max_fqdns_per_ip >= 5, "shared estates serve many names");
}
