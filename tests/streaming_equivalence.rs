//! Streaming-vs-offline equivalence: the one-pass `StreamingAnalytics`
//! sink must reproduce the offline analytics modules' answers exactly —
//! on every paper profile, at any worker count (byte-identical rendered
//! output), and under fault-injected traffic. See DESIGN.md §11.
//!
//! `FAULT_MATRIX_FULL=1` (the nightly pipeline) raises the trace scales.

use dnhunter::{
    FlowSink, ParallelSniffer, RealTimeSniffer, SnifferConfig, SnifferReport, StreamingAnalytics,
    StreamingConfig,
};
use dnhunter_analytics::streaming::check_equivalence;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_net::PcapRecord;
use dnhunter_orgdb::builtin_registry;
use dnhunter_simnet::{profiles, FaultPlan, TraceGenerator};

/// Nightly (`FAULT_MATRIX_FULL=1`) runs the same assertions on larger
/// traces; the PR gate keeps them quick.
fn scaled(base: f64) -> f64 {
    if std::env::var_os("FAULT_MATRIX_FULL").is_some() {
        base * 4.0
    } else {
        base
    }
}

fn stream_cfg() -> StreamingConfig {
    StreamingConfig {
        // Small bins so growth reconstruction crosses many bin boundaries.
        snapshot_interval_micros: 60 * 1_000_000,
        ..StreamingConfig::default()
    }
}

/// Sequential run with a streaming sink installed.
fn run_sequential(records: &[PcapRecord]) -> (SnifferReport, StreamingAnalytics) {
    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    sniffer.set_sink(Box::new(StreamingAnalytics::new(stream_cfg())));
    for rec in records {
        sniffer.process_record(rec);
    }
    let (report, sinks) = sniffer.finish_with_sinks();
    let streaming = StreamingAnalytics::fold(sinks).expect("sequential sink returned");
    (report, streaming)
}

/// Parallel run, one partial sink per worker, folded deterministically.
fn run_parallel(records: &[PcapRecord], workers: usize) -> (SnifferReport, StreamingAnalytics) {
    let mut sniffer = ParallelSniffer::with_sinks(SnifferConfig::default(), workers, &mut |_| {
        Box::new(StreamingAnalytics::new(stream_cfg())) as Box<dyn FlowSink>
    });
    for rec in records {
        sniffer.process_record(rec);
    }
    let (report, sinks) = sniffer.finish_with_sinks();
    assert_eq!(sinks.len(), workers, "one partial sink per worker");
    let streaming = StreamingAnalytics::fold(sinks).expect("worker sinks returned");
    (report, streaming)
}

#[test]
fn streaming_matches_offline_on_every_profile() {
    let orgdb = builtin_registry();
    let suffixes = SuffixSet::builtin();
    for profile in profiles::all_paper_profiles() {
        let name = profile.name.clone();
        let trace = TraceGenerator::new(profile.scaled(scaled(0.04)), false).generate();
        let (report, streaming) = run_sequential(&trace.records);
        assert!(report.database.len() > 50, "{name}: trace too small");
        let errs = check_equivalence(&streaming, &report, &orgdb, &suffixes);
        assert!(
            errs.is_empty(),
            "{name}: streaming diverged from offline analytics:\n  {}",
            errs.join("\n  ")
        );
        println!(
            "{name}: {} flows, {} labeled — streaming == offline",
            streaming.flows(),
            streaming.labeled_flows()
        );
    }
}

#[test]
fn streaming_render_is_byte_identical_at_any_worker_count() {
    let profile = profiles::eu1_adsl1().scaled(scaled(0.1));
    let trace = TraceGenerator::new(profile, false).generate();

    let (report, sequential) = run_sequential(&trace.records);
    let reference = sequential.render();
    assert!(
        reference.lines().count() > 2,
        "render produced no snapshots:\n{reference}"
    );

    let orgdb = builtin_registry();
    let suffixes = SuffixSet::builtin();
    for workers in [1usize, 2, 8] {
        let (preport, parallel) = run_parallel(&trace.records, workers);
        assert_eq!(
            parallel.render(),
            reference,
            "{workers}-worker streaming output diverged from sequential"
        );
        // The folded parallel state must also pass the full offline
        // equivalence, not merely agree with the sequential render.
        let errs = check_equivalence(&parallel, &preport, &orgdb, &suffixes);
        assert!(
            errs.is_empty(),
            "{workers}-worker fold diverged from offline:\n  {}",
            errs.join("\n  ")
        );
    }
    drop(report);
}

#[test]
fn streaming_matches_offline_on_a_fault_injected_trace() {
    // A hostile trace (every fault class at once) must not break the
    // streaming/offline agreement: both sides see the same surviving
    // frames, so their answers still coincide exactly.
    let profile = profiles::us_3g().scaled(scaled(0.05));
    let trace = TraceGenerator::new(profile, false).generate();
    let plan = FaultPlan {
        drop_rate: 0.05,
        dns_response_drop_rate: 0.2,
        duplicate_rate: 0.05,
        reorder_rate: 0.05,
        truncate_rate: 0.03,
        corrupt_rate: 0.03,
        midstream_cut_micros: 600_000_000,
        malicious_rate: 0.02,
        ..FaultPlan::default()
    };
    let (records, stats) = plan.apply(&trace.records);
    assert!(stats.total() > 0, "fault plan inflicted nothing");

    let (report, streaming) = run_sequential(&records);
    let errs = check_equivalence(
        &streaming,
        &report,
        &builtin_registry(),
        &SuffixSet::builtin(),
    );
    assert!(
        errs.is_empty(),
        "faulted trace: streaming diverged from offline:\n  {}",
        errs.join("\n  ")
    );

    // And the parallel fold still renders byte-identically on it.
    let (_, parallel) = run_parallel(&records, 2);
    assert_eq!(
        parallel.render(),
        streaming.render(),
        "2-worker streaming output diverged on the faulted trace"
    );
}
