//! The on-disk path: generate a trace, write it as a real pcap file, read
//! it back, and get the same labeled-flow database a live run produces.

use std::io::Cursor;

use dnhunter::{RealTimeSniffer, SnifferConfig};
use dnhunter_net::PcapReader;
use dnhunter_simnet::{profiles, TraceGenerator};

#[test]
fn pcap_file_replay_matches_live_replay() {
    let profile = profiles::eu1_ftth().scaled(0.08);
    let trace = TraceGenerator::new(profile.clone(), false).generate();

    // Live: feed records directly.
    let mut live = RealTimeSniffer::new(SnifferConfig::default());
    for r in &trace.records {
        live.process_record(r);
    }
    let live_report = live.finish();

    // Disk: serialize to pcap bytes, parse back, feed the sniffer.
    let bytes = trace.write_pcap(Vec::new()).expect("pcap writes");
    let mut from_disk = RealTimeSniffer::new(SnifferConfig::default());
    for rec in PcapReader::new(Cursor::new(bytes)).expect("pcap header") {
        from_disk.process_record(&rec.expect("record parses"));
    }
    let disk_report = from_disk.finish();

    assert_eq!(live_report.database.len(), disk_report.database.len());
    assert_eq!(
        live_report.sniffer_stats.dns_responses,
        disk_report.sniffer_stats.dns_responses
    );
    assert_eq!(
        live_report.database.distinct_fqdns(),
        disk_report.database.distinct_fqdns()
    );
    // Row-level equality of the labels.
    for (a, b) in live_report
        .database
        .flows()
        .iter()
        .zip(disk_report.database.flows())
    {
        assert_eq!(a.fqdn, b.fqdn);
        assert_eq!(a.key, b.key);
        assert_eq!(a.bytes_c2s, b.bytes_c2s);
    }
}

#[test]
fn anomaly_detector_stays_quiet_on_clean_traffic() {
    use dnhunter_analytics::anomaly::AnomalyDetector;
    use dnhunter_orgdb::builtin_registry;

    let run = dn_hunter_repro::run_scaled(profiles::eu1_ftth(), 0.1, false);
    let orgdb = builtin_registry();
    let mut det = AnomalyDetector::new(&orgdb, 3);
    let mut flagged = 0;
    let mut observed = 0;
    for f in run.report.database.flows() {
        if let Some(fqdn) = &f.fqdn {
            observed += 1;
            if det.observe(fqdn, f.key.server, f.first_ts).is_some() {
                flagged += 1;
            }
        }
    }
    assert!(observed > 300);
    // Legitimate multi-CDN churn may fire occasionally, but clean traffic
    // must stay far below 2% of observations.
    let rate = flagged as f64 / observed as f64;
    assert!(rate < 0.02, "false-positive rate {rate}");
}
