//! Golden windowed JSONL: the `--window`/`--slide` output format is a
//! contract (header line + one tagged line per window position), pinned
//! byte-for-byte against `tests/golden/windowed_snapshot.jsonl` on a
//! seeded trace. Any drift means the windowed renderer or the sweep
//! semantics changed — both worth a deliberate golden refresh:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test windowed_golden
//! ```

use dnhunter::{RealTimeSniffer, SnifferConfig, WindowConfig, WindowedAnalytics};
use dnhunter_simnet::{profiles, TraceGenerator};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("windowed_snapshot.jsonl")
}

#[test]
fn windowed_jsonl_matches_golden_file() {
    // The rotating-mix stressor at a fixed seed and scale: small enough to
    // keep the golden reviewable, long enough for several full windows.
    let profile = profiles::shifting_mix().scaled(0.15);
    let trace = TraceGenerator::new(profile, false).generate();
    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    sniffer.set_sink(Box::new(WindowedAnalytics::new(WindowConfig::new(
        2 * 3600 * 1_000_000,
        3600 * 1_000_000,
    ))));
    for rec in &trace.records {
        sniffer.process_record(rec);
    }
    let (_, sinks) = sniffer.finish_with_sinks();
    let windowed = WindowedAnalytics::fold(sinks).expect("sink returned");
    let rendered = windowed.render();

    // Structural contract, independent of the golden bytes.
    let mut lines = rendered.lines();
    let header = lines.next().expect("header line");
    assert!(header.starts_with("{\"stream\":\"dn-hunter-windowed\""));
    assert!(header.contains("\"window_micros\":7200000000"));
    assert!(header.contains("\"slide_micros\":3600000000"));
    assert!(header.contains("\"dropped_bucket_events\":0"));
    let mut seq = 0u64;
    for line in lines {
        assert!(line.starts_with("{\"window_start\":"), "{line}");
        assert!(line.contains(&format!("\"seq\":{seq},")), "{line}");
        assert!(line.contains("\"summary\":{"), "{line}");
        assert!(line.ends_with("}"), "{line}");
        seq += 1;
    }
    assert!(seq > 4, "only {seq} window lines");

    let path = golden_path();
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_UPDATE=1",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "windowed JSONL drifted from {}; if intentional, refresh with GOLDEN_UPDATE=1",
        path.display()
    );
}
