//! Encrypted traffic visibility: compare DN-Hunter's DNS labels with what
//! a certificate-inspecting DPI sees on the same TLS flows (paper §5.2.1).
//!
//! ```text
//! cargo run --release --example encrypted_traffic
//! ```

use dn_hunter_repro::run_scaled;
use dnhunter_baselines::certificate_comparison;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_flow::AppProtocol;
use dnhunter_simnet::profiles;

fn main() {
    let run = run_scaled(profiles::eu1_adsl2(), 0.15, false);
    let db = &run.report.database;
    let suffixes = SuffixSet::builtin();

    let tls: Vec<_> = db
        .flows()
        .iter()
        .filter(|f| f.protocol == AppProtocol::Tls)
        .collect();
    let labelled = tls.iter().filter(|f| f.is_tagged()).count();
    println!("TLS flows: {}   labelled by DNS: {}", tls.len(), labelled);

    // What would a DPI get from the certificates?
    let counts = certificate_comparison(db, &suffixes);
    let f = counts.fractions();
    println!("\ncertificate inspection on the same flows:");
    println!("  CN equals the FQDN      : {:>5.1}%", f[0] * 100.0);
    println!("  generic wildcard CN     : {:>5.1}%", f[1] * 100.0);
    println!("  totally different CN    : {:>5.1}%", f[2] * 100.0);
    println!("  no certificate at all   : {:>5.1}%", f[3] * 100.0);

    // Show a few flows where only the DNS label identifies the service.
    println!("\nflows where the certificate lies (or is absent):");
    let mut shown = 0;
    for flow in &tls {
        let (Some(fqdn), Some(tls_info)) = (&flow.fqdn, &flow.tls) else {
            continue;
        };
        let cn = tls_info.certificate_cn.as_deref();
        let misleading = match cn {
            None => true,
            Some(cn) => cn != fqdn.to_string() && !cn.starts_with("*."),
        };
        if misleading {
            println!(
                "  label={:<40} certificate={:?}",
                fqdn.to_string(),
                cn.unwrap_or("<none>")
            );
            shown += 1;
            if shown >= 8 {
                break;
            }
        }
    }
}
