//! Quickstart: build a tiny synthetic ISP trace, run the DN-Hunter sniffer
//! over it, and print what the labeled-flow database knows.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dn_hunter_repro::run_scaled;
use dnhunter_simnet::profiles;

fn main() {
    // A 0.1× EU1-FTTH trace: a few thousand flows, runs in seconds.
    let run = run_scaled(profiles::eu1_ftth(), 0.1, false);
    let report = &run.report;

    println!("trace          : {}", run.profile.name);
    println!("frames         : {}", report.sniffer_stats.frames);
    println!("dns responses  : {}", report.sniffer_stats.dns_responses);
    println!("flows          : {}", report.database.len());
    println!("distinct FQDNs : {}", report.database.distinct_fqdns());
    // Per-protocol hit ratios — the paper's Tab. 2 framing. (The overall
    // ratio would be dragged down by P2P peer flows, which never resolve.)
    let mut per_proto: std::collections::HashMap<&str, (u64, u64)> = Default::default();
    for f in report.database.flows() {
        if f.in_warmup {
            continue;
        }
        let e = per_proto.entry(f.protocol.label()).or_default();
        e.0 += 1;
        e.1 += u64::from(f.is_tagged());
    }
    for proto in ["http", "tls", "p2p"] {
        if let Some((n, h)) = per_proto.get(proto) {
            println!(
                "hit ratio {proto:<4} : {:.1}% of {n} flows",
                100.0 * *h as f64 / *n as f64
            );
        }
    }
    println!(
        "useless DNS    : {:.1}% of responses never followed by a flow",
        report.delays.useless_fraction() * 100.0
    );

    // Every flow carries the FQDN its client resolved — print a sample.
    println!("\nsample labelled flows:");
    for f in report
        .database
        .flows()
        .iter()
        .filter(|f| f.is_tagged())
        .take(8)
    {
        println!(
            "  {:<46} -> {:<16} {:>5} {:?}",
            f.fqdn.as_ref().expect("filtered on is_tagged").to_string(),
            f.key.server.to_string(),
            f.key.server_port,
            f.protocol
        );
    }

    // And the tag was known *before* the flow started:
    let early = report
        .database
        .flows()
        .iter()
        .filter(|f| f.tag_delay_micros.is_some())
        .count();
    println!(
        "\n{early} flows were identifiable at their first packet (the DNS response preceded them)"
    );
}
