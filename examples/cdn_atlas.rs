//! CDN atlas: spatial + content discovery (paper §4.1–4.2, Figs. 7–8,
//! Tab. 5). Who serves zynga.com? What does Amazon's cloud host?
//!
//! ```text
//! cargo run --release --example cdn_atlas
//! ```

use dn_hunter_repro::run_scaled;
use dnhunter_analytics::content::top_domains_on_org;
use dnhunter_analytics::spatial::spatial_discovery;
use dnhunter_analytics::tree::domain_tree;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_orgdb::builtin_registry;
use dnhunter_simnet::profiles;

fn main() {
    let run = run_scaled(profiles::us_3g(), 0.3, false);
    let db = &run.report.database;
    let suffixes = SuffixSet::builtin();
    let orgdb = builtin_registry();

    // Spatial discovery: which servers deliver Zynga content?
    let target = "farmville.facebook.zynga.com".parse().expect("valid name");
    let spatial = spatial_discovery(db, &target, &suffixes);
    println!(
        "spatial discovery for {} — organization {}",
        target, spatial.second_level
    );
    println!(
        "  {} distinct serverIPs in total",
        spatial.org_servers.len()
    );
    for (fqdn, servers) in spatial.fqdn_servers.iter().take(10) {
        println!("  {:<44} {} servers", fqdn.to_string(), servers.len());
    }

    // The Fig. 8-style domain tree with CDN grouping.
    let tree = domain_tree(db, &"zynga.com".parse().expect("valid"), &orgdb, &suffixes);
    println!("\n{}", tree.render());

    // Content discovery: what does Amazon EC2 host, from this viewpoint?
    println!("top domains on the Amazon cloud (US viewpoint):");
    for (domain, share) in top_domains_on_org(db, &orgdb, "amazon", 10, &suffixes) {
        println!("  {:<24} {:>5.1}%", domain.to_string(), share * 100.0);
    }
}
