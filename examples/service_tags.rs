//! Service-tag extraction (paper §4.3, Tables 6–7): discover what runs on
//! a layer-4 port with no a-priori signature, just from DNS labels.
//!
//! ```text
//! cargo run --release --example service_tags
//! ```

use dn_hunter_repro::run_scaled;
use dnhunter_analytics::tags::extract_tags;
use dnhunter_baselines::well_known_service;
use dnhunter_dns::suffix::SuffixSet;
use dnhunter_simnet::profiles;

fn main() {
    let suffixes = SuffixSet::builtin();

    // A fibre trace for the classic mail/chat ports …
    let ftth = run_scaled(profiles::eu1_ftth(), 0.3, false);
    println!("EU1-FTTH — well-known ports:");
    for port in [25u16, 110, 143, 995, 1863] {
        let tags = extract_tags(&ftth.report.database, port, 5, &suffixes);
        if tags.is_empty() {
            continue;
        }
        let kws: Vec<String> = tags
            .iter()
            .map(|t| format!("({:.0}){}", t.score, t.token))
            .collect();
        println!(
            "  port {:>5}: {:<58} GT: {}",
            port,
            kws.join(" "),
            well_known_service(port).unwrap_or("?")
        );
    }

    // … and a mobile trace for the mystery ports. Port 1337 is the paper's
    // showcase: the tokens alone identify a BitTorrent tracker.
    let mobile = run_scaled(profiles::us_3g(), 0.3, false);
    println!("\nUS-3G — non-standard ports:");
    for port in [1080u16, 1337, 5222, 5228, 6969, 12043] {
        let tags = extract_tags(&mobile.report.database, port, 4, &suffixes);
        if tags.is_empty() {
            continue;
        }
        let kws: Vec<String> = tags
            .iter()
            .map(|t| format!("({:.0}){}", t.score, t.token))
            .collect();
        println!(
            "  port {:>5}: {:<58} GT: {}",
            port,
            kws.join(" "),
            well_known_service(port).unwrap_or("?")
        );
    }
}
