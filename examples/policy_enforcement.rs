//! Policy enforcement at the first packet (paper §1's motivating
//! scenario): block Zynga, prioritize Dropbox — both encrypted, both on
//! Amazon EC2, indistinguishable by IP or DPI. Only the DNS label
//! separates them, and it is available before the flow's first byte.
//!
//! ```text
//! cargo run --release --example policy_enforcement
//! ```

use dnhunter::{PolicyAction, PolicyRule, RealTimeSniffer, RuleEnforcer, SnifferConfig};
use dnhunter_simnet::{profiles, TraceGenerator};

fn main() {
    // Generate a small US trace where Zynga and Dropbox both live on EC2.
    let profile = profiles::us_3g().scaled(0.3);
    let trace = TraceGenerator::new(profile, false).generate();

    let mut enforcer = RuleEnforcer::new(vec![
        PolicyRule::new("zynga.com", PolicyAction::Block).expect("valid rule"),
        PolicyRule::new("dropbox.com", PolicyAction::Prioritize(7)).expect("valid rule"),
        PolicyRule::new("youtube.com", PolicyAction::RateLimit(500_000)).expect("valid rule"),
    ]);

    let mut sniffer = RealTimeSniffer::new(SnifferConfig::default());
    for rec in &trace.records {
        sniffer.process_frame_with_policy(rec.timestamp_micros(), &rec.frame, Some(&mut enforcer));
    }
    let report = sniffer.finish();

    println!("flows seen        : {}", report.database.len());
    println!("blocked (zynga)   : {}", enforcer.blocked());
    println!("prioritized (dbx) : {}", enforcer.prioritized());

    let at_first_packet = enforcer
        .decisions()
        .iter()
        .filter(|d| d.action != PolicyAction::Allow && d.at_first_packet)
        .count();
    let total_actions = enforcer
        .decisions()
        .iter()
        .filter(|d| d.action != PolicyAction::Allow)
        .count();
    println!("actions decided at the flow's FIRST packet: {at_first_packet}/{total_actions}");

    println!("\nsample decisions:");
    for d in enforcer
        .decisions()
        .iter()
        .filter(|d| d.action != PolicyAction::Allow)
        .take(10)
    {
        println!(
            "  {:<9} {:<40} {} -> {}:{}",
            d.action.to_string(),
            d.fqdn.as_ref().map(|f| f.to_string()).unwrap_or_default(),
            d.key.client,
            d.key.server,
            d.key.server_port
        );
    }
}
